//! Spectral feature extraction for the rule frames.
//!
//! The rules of §6.1 are phrased over order-domain quantities (1× of the
//! motor, gear-mesh amplitude, bearing defect tones in the envelope
//! spectrum, ...). [`SpectralFeatures::extract`] reduces one multi-
//! channel vibration survey to that fixed feature set.

use mpros_chiller::vibration::AccelLocation;
use mpros_chiller::MachineTrain;
use mpros_core::Result;
use mpros_signal::features::WaveformStats;
use mpros_signal::spectrum::Spectrum;
use mpros_signal::window::Window;
use mpros_signal::DspContext;
use std::collections::HashMap;

/// One multi-channel vibration survey of a machine train.
#[derive(Debug, Clone)]
pub struct VibrationSurvey {
    /// The train's kinematic description (defect-frequency source).
    pub train: MachineTrain,
    /// Load fraction during acquisition (for rule sensitization).
    pub load: f64,
    /// Sample rate, Hz.
    pub sample_rate: f64,
    /// Acquired blocks per location (power-of-two lengths).
    pub blocks: Vec<(AccelLocation, Vec<f64>)>,
}

/// The extracted feature set one rule evaluation consumes.
#[derive(Debug, Clone, Default)]
pub struct SpectralFeatures {
    /// ½× of the motor shaft (looseness subharmonic), g.
    pub motor_half_x: f64,
    /// 1× of the motor shaft, g.
    pub motor_1x: f64,
    /// 2× of the motor shaft, g.
    pub motor_2x: f64,
    /// Largest of 3×–6× motor harmonics, g.
    pub motor_harmonics: f64,
    /// Pole-pass sidebands around motor 1× (max of the pair), g.
    pub pole_pass_sidebands: f64,
    /// Motor-bearing BPFO line in the envelope spectrum, g.
    pub motor_bpfo_envelope: f64,
    /// Compressor-bearing BPFI spectral line (direct, not enveloped:
    /// the high-speed shaft's defect tone is resolvable in the raw
    /// spectrum), g.
    pub comp_bpfi_line: f64,
    /// Gear-mesh fundamental at the gear case, g.
    pub gear_mesh: f64,
    /// Shaft-rate sidebands around the gear mesh (max of the pair), g.
    pub gear_sidebands: f64,
    /// Low-frequency (2–10 Hz) pulsation at the compressor, g.
    pub surge_band: f64,
    /// Waveform kurtosis per location (impulsiveness corroboration).
    pub kurtosis: HashMap<AccelLocation, f64>,
    /// Overall RMS per location, g.
    pub rms: HashMap<AccelLocation, f64>,
    /// Load during the survey (copied through for rule guards).
    pub load: f64,
}

/// Envelope demodulation band for bearing analysis around the motor's
/// structural resonance.
const MOTOR_ENV_BAND: (f64, f64) = (1_800.0, 3_000.0);

/// Reusable spectral workspaces for [`SpectralFeatures::extract_into`].
///
/// Holds the raw amplitude spectrum and the envelope spectrum of the
/// block under analysis; both retain their allocations across surveys so
/// steady-state extraction is allocation-free.
#[derive(Debug, Default)]
pub struct SurveyScratch {
    spec: Spectrum,
    env_spec: Spectrum,
}

impl SpectralFeatures {
    /// Extract the feature set from a survey. Locations absent from the
    /// survey contribute zero features.
    pub fn extract(survey: &VibrationSurvey) -> Result<SpectralFeatures> {
        let mut ctx = DspContext::new();
        let mut scratch = SurveyScratch::default();
        let mut f = SpectralFeatures::default();
        SpectralFeatures::extract_into(&mut ctx, survey, &mut scratch, &mut f)?;
        Ok(f)
    }

    /// [`SpectralFeatures::extract`] through a reusable [`DspContext`]
    /// and [`SurveyScratch`], overwriting `out` in place. Produces
    /// features bit-identical to [`SpectralFeatures::extract`] while
    /// performing zero steady-state heap allocations (per-location maps
    /// keep their capacity across calls).
    ///
    /// On error `out` may hold a partially updated feature set.
    pub fn extract_into(
        ctx: &mut DspContext,
        survey: &VibrationSurvey,
        scratch: &mut SurveyScratch,
        out: &mut SpectralFeatures,
    ) -> Result<()> {
        let f = out;
        f.motor_half_x = 0.0;
        f.motor_1x = 0.0;
        f.motor_2x = 0.0;
        f.motor_harmonics = 0.0;
        f.pole_pass_sidebands = 0.0;
        f.motor_bpfo_envelope = 0.0;
        f.comp_bpfi_line = 0.0;
        f.gear_mesh = 0.0;
        f.gear_sidebands = 0.0;
        f.surge_band = 0.0;
        f.kurtosis.clear();
        f.rms.clear();
        f.load = survey.load;
        let motor_hz = survey.train.motor_hz(survey.load);
        let comp_hz = survey.train.compressor_hz(survey.load);
        let gmf = survey.train.gear_mesh_hz(survey.load);
        let pole_pass = survey.train.pole_pass_hz(survey.load);

        for (loc, block) in &survey.blocks {
            ctx.spectrum_into(block, survey.sample_rate, Window::Hann, &mut scratch.spec)?;
            let spec = &scratch.spec;
            let stats = WaveformStats::of(block);
            f.kurtosis.insert(*loc, stats.kurtosis);
            f.rms.insert(*loc, stats.rms);
            match loc {
                AccelLocation::MotorDriveEnd | AccelLocation::MotorNonDriveEnd => {
                    // Keep the strongest motor-location reading.
                    f.motor_half_x = f.motor_half_x.max(spec.amplitude_at_order(motor_hz, 0.5));
                    f.motor_1x = f.motor_1x.max(spec.amplitude_at_order(motor_hz, 1.0));
                    f.motor_2x = f.motor_2x.max(spec.amplitude_at_order(motor_hz, 2.0));
                    for h in 3..=6 {
                        f.motor_harmonics = f
                            .motor_harmonics
                            .max(spec.amplitude_at_order(motor_hz, h as f64));
                    }
                    // Pole-pass sidebands sit ~1–2 Hz from a (possibly
                    // huge) 1× line; they are only readable when the
                    // spectral resolution separates them, otherwise the
                    // 1× skirt masquerades as a sideband.
                    if pole_pass > 2.5 * spec.resolution() {
                        let lo = spec.amplitude_near(motor_hz - pole_pass, pole_pass * 0.3);
                        let hi = spec.amplitude_near(motor_hz + pole_pass, pole_pass * 0.3);
                        f.pole_pass_sidebands = f.pole_pass_sidebands.max(lo.max(hi));
                    }
                    let bpfo = survey.train.motor_bearing.bpfo(motor_hz);
                    ctx.envelope_spectrum_into(
                        block,
                        survey.sample_rate,
                        MOTOR_ENV_BAND.0,
                        MOTOR_ENV_BAND.1,
                        Window::Hann,
                        &mut scratch.env_spec,
                    )?;
                    let line = scratch
                        .env_spec
                        .amplitude_near(bpfo, bpfo * 0.04 + scratch.env_spec.resolution());
                    f.motor_bpfo_envelope = f.motor_bpfo_envelope.max(line);
                }
                AccelLocation::GearCase => {
                    f.gear_mesh = spec.amplitude_near(gmf, gmf * 0.03);
                    let lo = spec.amplitude_near(gmf - motor_hz, motor_hz * 0.2);
                    let hi = spec.amplitude_near(gmf + motor_hz, motor_hz * 0.2);
                    f.gear_sidebands = lo.max(hi);
                }
                AccelLocation::CompressorBearing => {
                    let bpfi = survey.train.compressor_bearing.bpfi(comp_hz);
                    f.comp_bpfi_line = spec.amplitude_near(bpfi, 0.02 * bpfi + spec.resolution());
                    // Surge pulsation: strongest line in the 2–10 Hz band.
                    f.surge_band = spec
                        .amplitudes()
                        .iter()
                        .enumerate()
                        .filter(|(k, _)| {
                            let fr = spec.bin_frequency(*k);
                            (2.0..=10.0).contains(&fr)
                        })
                        .map(|(_, &a)| a)
                        .fold(0.0, f64::max);
                }
                AccelLocation::PumpBearing => {}
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpros_chiller::fault::{FaultProfile, FaultSeed, FaultState};
    use mpros_chiller::vibration::VibrationSynthesizer;
    use mpros_core::{MachineCondition, MachineId, SimDuration, SimTime};

    const FS: f64 = 16_384.0;
    const N: usize = 8192;

    pub(crate) fn survey_with(
        condition: Option<MachineCondition>,
        sev: f64,
        load: f64,
    ) -> VibrationSurvey {
        let train = MachineTrain::navy_chiller(MachineId::new(1));
        let synth = VibrationSynthesizer::new(train.clone(), 11);
        let mut faults = FaultState::healthy();
        if let Some(c) = condition {
            faults.seed(FaultSeed {
                condition: c,
                onset: SimTime::ZERO,
                time_to_failure: SimDuration::from_secs(1.0),
                profile: FaultProfile::Step(sev),
            });
        }
        let t0 = SimTime::from_secs(100.0);
        let blocks = AccelLocation::ALL
            .iter()
            .map(|&loc| (loc, synth.sample_block(loc, t0, N, FS, load, &faults)))
            .collect();
        VibrationSurvey {
            train,
            load,
            sample_rate: FS,
            blocks,
        }
    }

    #[test]
    fn healthy_features_are_small() {
        let f = SpectralFeatures::extract(&survey_with(None, 0.0, 0.9)).unwrap();
        assert!(f.motor_1x < 0.1, "1x {}", f.motor_1x);
        assert!(f.motor_2x < 0.05);
        assert!(f.gear_mesh < 0.08);
        assert!(
            f.motor_bpfo_envelope < 0.05,
            "bpfo {}",
            f.motor_bpfo_envelope
        );
        assert!(f.surge_band < 0.05);
        assert_eq!(f.load, 0.9);
    }

    #[test]
    fn imbalance_lifts_motor_1x_only() {
        let f = SpectralFeatures::extract(&survey_with(
            Some(MachineCondition::MotorImbalance),
            0.8,
            0.9,
        ))
        .unwrap();
        assert!(f.motor_1x > 0.35, "1x {}", f.motor_1x);
        assert!(f.motor_2x < 0.1);
    }

    #[test]
    fn misalignment_lifts_2x_above_1x() {
        let f = SpectralFeatures::extract(&survey_with(
            Some(MachineCondition::MotorMisalignment),
            0.8,
            0.9,
        ))
        .unwrap();
        assert!(f.motor_2x > 0.25, "2x {}", f.motor_2x);
        assert!(f.motor_2x > f.motor_1x);
    }

    #[test]
    fn compressor_bearing_defect_lifts_bpfi_line() {
        let f = SpectralFeatures::extract(&survey_with(
            Some(MachineCondition::CompressorBearingDefect),
            0.8,
            0.9,
        ))
        .unwrap();
        let healthy = SpectralFeatures::extract(&survey_with(None, 0.0, 0.9)).unwrap();
        assert!(
            f.comp_bpfi_line > 0.15,
            "BPFI line {} too weak",
            f.comp_bpfi_line
        );
        assert!(
            healthy.comp_bpfi_line < 0.05,
            "healthy BPFI {}",
            healthy.comp_bpfi_line
        );
    }

    #[test]
    fn bearing_defect_lifts_envelope_line_and_kurtosis() {
        let f = SpectralFeatures::extract(&survey_with(
            Some(MachineCondition::MotorBearingDefect),
            0.8,
            0.9,
        ))
        .unwrap();
        let healthy = SpectralFeatures::extract(&survey_with(None, 0.0, 0.9)).unwrap();
        assert!(
            f.motor_bpfo_envelope > 3.0 * healthy.motor_bpfo_envelope.max(0.01),
            "bpfo {} vs healthy {}",
            f.motor_bpfo_envelope,
            healthy.motor_bpfo_envelope
        );
        let k = f.kurtosis[&AccelLocation::MotorDriveEnd];
        assert!(k > 2.0, "kurtosis {k}");
    }

    #[test]
    fn gear_wear_lifts_mesh_and_sidebands() {
        let f = SpectralFeatures::extract(&survey_with(
            Some(MachineCondition::GearToothWear),
            0.8,
            0.9,
        ))
        .unwrap();
        assert!(f.gear_mesh > 0.2, "mesh {}", f.gear_mesh);
        assert!(f.gear_sidebands > 0.05, "sidebands {}", f.gear_sidebands);
    }

    #[test]
    fn surge_lifts_low_frequency_band() {
        let f = SpectralFeatures::extract(&survey_with(
            Some(MachineCondition::CompressorSurge),
            0.9,
            0.9,
        ))
        .unwrap();
        assert!(f.surge_band > 0.4, "surge {}", f.surge_band);
    }

    /// Rotor-bar sidebands need a long block: at the standard 0.5 s
    /// block (df = 2 Hz) the ±1.6 Hz pole-pass spacing is unresolvable
    /// and the feature must stay at zero; at a 2 s block it reads.
    #[test]
    fn rotor_bar_lifts_pole_pass_sidebands_at_fine_resolution() {
        let long_survey = |condition: Option<MachineCondition>| {
            let mut s = survey_with(condition, 0.9, 1.0);
            let train = s.train.clone();
            let synth = VibrationSynthesizer::new(train, 11);
            let mut faults = FaultState::healthy();
            if let Some(c) = condition {
                faults.seed(FaultSeed {
                    condition: c,
                    onset: SimTime::ZERO,
                    time_to_failure: SimDuration::from_secs(1.0),
                    profile: FaultProfile::Step(0.9),
                });
            }
            s.blocks = vec![(
                AccelLocation::MotorDriveEnd,
                synth.sample_block(
                    AccelLocation::MotorDriveEnd,
                    SimTime::from_secs(100.0),
                    32_768,
                    FS,
                    1.0,
                    &faults,
                ),
            )];
            s
        };
        let f = SpectralFeatures::extract(&long_survey(Some(MachineCondition::MotorRotorBarCrack)))
            .unwrap();
        let healthy = SpectralFeatures::extract(&long_survey(None)).unwrap();
        assert!(
            f.pole_pass_sidebands > healthy.pole_pass_sidebands + 0.05,
            "sidebands {} vs {}",
            f.pole_pass_sidebands,
            healthy.pole_pass_sidebands
        );
        // At the short block the feature is suppressed entirely.
        let short = SpectralFeatures::extract(&survey_with(
            Some(MachineCondition::MotorRotorBarCrack),
            0.9,
            1.0,
        ))
        .unwrap();
        assert_eq!(short.pole_pass_sidebands, 0.0, "unresolvable → no reading");
    }

    #[test]
    fn looseness_lifts_subharmonic_and_harmonics() {
        let f = SpectralFeatures::extract(&survey_with(
            Some(MachineCondition::BearingHousingLooseness),
            0.9,
            0.9,
        ))
        .unwrap();
        assert!(f.motor_half_x > 0.03, "half-x {}", f.motor_half_x);
        assert!(f.motor_harmonics > 0.04, "harmonics {}", f.motor_harmonics);
    }

    #[test]
    fn partial_surveys_are_tolerated() {
        let mut s = survey_with(Some(MachineCondition::MotorImbalance), 0.8, 0.9);
        s.blocks.retain(|(l, _)| *l == AccelLocation::GearCase);
        let f = SpectralFeatures::extract(&s).unwrap();
        assert_eq!(f.motor_1x, 0.0, "no motor channel, no motor feature");
    }
}

//! # mpros-dli
//!
//! The vibration-based expert system of §6.1: "all standard machinery
//! vibration FFT analysis and associated diagnostics in the Data
//! Concentrator are handled by the DLI expert system... The frame based
//! rules application method employed allows the spectral vibration
//! features to be analyzed in conjunction with process parameters such
//! as load or bearing temperatures to arrive at a more accurate and
//! knowledgeable machinery diagnosis."
//!
//! DLI's Expert Alert rule content is proprietary; this crate implements
//! the same *mechanism* — frame-based rules over shaft-order spectral
//! features, load sensitization (§6.1's bearing-looseness example),
//! numerical severity mapped to the Slight/Moderate/Serious/Extreme
//! gradient, and per-diagnosis believability factors backed by a
//! reversal-statistics database — with a chiller rule set re-derived
//! from public vibration-analysis practice.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod believability;
pub mod expert;
pub mod features;
pub mod rules;

pub use believability::BelievabilityDb;
pub use expert::{DliDiagnosis, DliExpertSystem};
pub use features::{SpectralFeatures, SurveyScratch, VibrationSurvey};
pub use rules::{chiller_rules, Rule};

//! The DC's embedded database (§5.8).
//!
//! "The data concentrator is a open architecture ODBC compliant
//! relational database designed to store all of the instrumentation
//! configuration information, machinery configuration information, test
//! schedules, resultant measurements, diagnostic results, and condition
//! reports." Built on the same relational store substrate as the OOSM
//! (`mpros_oosm::Store`), with the schema the quote enumerates.

use mpros_core::{MachineCondition, Result, SimTime};
use mpros_oosm::{Store, Value};

/// Summary of one acquired measurement block.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasurementRecord {
    /// Acquisition time.
    pub at: SimTime,
    /// Channel label (accelerometer location name).
    pub channel: String,
    /// Block RMS, g.
    pub rms: f64,
    /// Block peak, g.
    pub peak: f64,
}

/// One stored diagnostic result.
#[derive(Debug, Clone, PartialEq)]
pub struct DiagnosisRecord {
    /// Diagnosis time.
    pub at: SimTime,
    /// Knowledge source label.
    pub source: String,
    /// Condition (catalog index).
    pub condition: MachineCondition,
    /// Severity score.
    pub severity: f64,
    /// Belief.
    pub belief: f64,
}

/// The DC database.
#[derive(Debug)]
pub struct DcDatabase {
    store: Store,
    next_id: i64,
}

impl Default for DcDatabase {
    fn default() -> Self {
        Self::new()
    }
}

impl DcDatabase {
    /// Create the schema.
    pub fn new() -> Self {
        let mut store = Store::new();
        store
            .create_table("measurements", &["id", "time", "channel", "rms", "peak"])
            .expect("fresh store");
        store
            .create_table(
                "diagnoses",
                &["id", "time", "source", "condition", "severity", "belief"],
            )
            .expect("fresh store");
        store
            .create_table("schedule_log", &["id", "time", "task"])
            .expect("fresh store");
        DcDatabase { store, next_id: 0 }
    }

    fn next_id(&mut self) -> i64 {
        self.next_id += 1;
        self.next_id
    }

    /// Record a measurement summary.
    pub fn record_measurement(&mut self, rec: &MeasurementRecord) -> Result<()> {
        let id = self.next_id();
        self.store.insert(
            "measurements",
            vec![
                Value::Int(id),
                Value::Float(rec.at.as_secs()),
                Value::Text(rec.channel.clone()),
                Value::Float(rec.rms),
                Value::Float(rec.peak),
            ],
        )?;
        Ok(())
    }

    /// Record a diagnostic result.
    pub fn record_diagnosis(&mut self, rec: &DiagnosisRecord) -> Result<()> {
        let id = self.next_id();
        self.store.insert(
            "diagnoses",
            vec![
                Value::Int(id),
                Value::Float(rec.at.as_secs()),
                Value::Text(rec.source.clone()),
                Value::Int(rec.condition.index() as i64),
                Value::Float(rec.severity),
                Value::Float(rec.belief),
            ],
        )?;
        Ok(())
    }

    /// Log a scheduler task run.
    pub fn log_task(&mut self, at: SimTime, task: &str) -> Result<()> {
        let id = self.next_id();
        self.store.insert(
            "schedule_log",
            vec![
                Value::Int(id),
                Value::Float(at.as_secs()),
                Value::Text(task.into()),
            ],
        )?;
        Ok(())
    }

    /// Number of stored measurement summaries.
    pub fn measurement_count(&self) -> usize {
        self.store.row_count("measurements").expect("schema exists")
    }

    /// Number of stored diagnoses.
    pub fn diagnosis_count(&self) -> usize {
        self.store.row_count("diagnoses").expect("schema exists")
    }

    /// Number of logged task runs.
    pub fn task_log_count(&self) -> usize {
        self.store.row_count("schedule_log").expect("schema exists")
    }

    /// Diagnoses recorded at or after `since`, in insertion order.
    pub fn diagnoses_since(&self, since: SimTime) -> Vec<DiagnosisRecord> {
        self.store
            .select("diagnoses", |r| {
                r[1].as_float().is_some_and(|t| t >= since.as_secs())
            })
            .expect("schema exists")
            .iter()
            .filter_map(|r| {
                Some(DiagnosisRecord {
                    at: SimTime::from_secs(r[1].as_float()?),
                    source: r[2].as_text()?.to_string(),
                    condition: MachineCondition::from_index(r[3].as_int()? as usize)?,
                    severity: r[4].as_float()?,
                    belief: r[5].as_float()?,
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_exists_and_counts_start_zero() {
        let db = DcDatabase::new();
        assert_eq!(db.measurement_count(), 0);
        assert_eq!(db.diagnosis_count(), 0);
        assert_eq!(db.task_log_count(), 0);
    }

    #[test]
    fn records_roundtrip() {
        let mut db = DcDatabase::new();
        db.record_measurement(&MeasurementRecord {
            at: SimTime::from_secs(1.0),
            channel: "motor DE".into(),
            rms: 0.12,
            peak: 0.4,
        })
        .unwrap();
        db.record_diagnosis(&DiagnosisRecord {
            at: SimTime::from_secs(2.0),
            source: "dli".into(),
            condition: MachineCondition::MotorImbalance,
            severity: 0.5,
            belief: 0.8,
        })
        .unwrap();
        db.log_task(SimTime::from_secs(3.0), "VibrationSurvey")
            .unwrap();
        assert_eq!(db.measurement_count(), 1);
        assert_eq!(db.diagnosis_count(), 1);
        assert_eq!(db.task_log_count(), 1);
        let d = &db.diagnoses_since(SimTime::ZERO)[0];
        assert_eq!(d.condition, MachineCondition::MotorImbalance);
        assert_eq!(d.source, "dli");
    }

    #[test]
    fn diagnoses_since_filters_by_time() {
        let mut db = DcDatabase::new();
        for t in [1.0, 5.0, 9.0] {
            db.record_diagnosis(&DiagnosisRecord {
                at: SimTime::from_secs(t),
                source: "dli".into(),
                condition: MachineCondition::GearToothWear,
                severity: 0.3,
                belief: 0.5,
            })
            .unwrap();
        }
        assert_eq!(db.diagnoses_since(SimTime::from_secs(4.0)).len(), 2);
        assert_eq!(db.diagnoses_since(SimTime::from_secs(10.0)).len(), 0);
    }
}

//! The Data Concentrator.
//!
//! Hosts the four §1.1 algorithm suites on top of the acquisition chain,
//! scheduler and embedded database, and emits §7.2 condition reports:
//! "The data is processed and then sent to an expert system DLL which
//! applies stored rules for each equipment type and derives the
//! diagnoses" (§5.8). Report emission is throttled per (source,
//! condition): a diagnosis is re-reported when its severity moves
//! materially or a refresh interval elapses, so the PDME's evidence
//! stream stays approximately independent.

use crate::db::{DcDatabase, DiagnosisRecord, MeasurementRecord};
use crate::hw::{AcquisitionChain, HwConfig};
use crate::scheduler::{Scheduler, Task};
use mpros_chiller::process::ProcessSnapshot;
use mpros_chiller::vibration::AccelLocation;
use mpros_chiller::ChillerPlant;
use mpros_core::{
    Belief, ConditionReport, DcId, IdAllocator, KnowledgeSourceId, MachineCondition, MachineId,
    ReportId, Result, Severity, SimDuration, SimTime,
};
use mpros_core::{PrognosticPoint, PrognosticVector};
use mpros_dli::{DliExpertSystem, SpectralFeatures, SurveyScratch, VibrationSurvey};
use mpros_fuzzy::FuzzyDiagnostics;
use mpros_network::NetMessage;
use mpros_sbfr::builtin::{spike_machine, stiction_machine};
use mpros_sbfr::Interpreter;
use mpros_signal::features::WaveformStats;
use mpros_signal::trend::TrendTracker;
use mpros_signal::{DspContext, DspStats};
use mpros_telemetry::trace::dc_trace_seed;
use mpros_telemetry::{
    Counter, HopKind, Instrumented, Stage, Telemetry, TraceHop, TraceId, WallTimer,
};
use mpros_wnn::WnnClassifier;
use std::collections::{HashMap, VecDeque};
use std::sync::Arc;

/// Configuration of one Data Concentrator. Construct via
/// [`DcConfig::new`] and the `with_*` builders; the struct is
/// `#[non_exhaustive]` so future fault/robustness knobs are not
/// breaking changes.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct DcConfig {
    /// This DC's id.
    pub id: DcId,
    /// The machine train it instruments.
    pub machine: MachineId,
    /// Acquisition hardware.
    pub hw: HwConfig,
    /// Vibration-survey period.
    pub survey_period: SimDuration,
    /// Process-sample (and SBFR cycle) period.
    pub process_period: SimDuration,
    /// Run fuzzy analysis every this many process samples.
    pub fuzzy_every: usize,
    /// Process snapshots retained for the fuzzy window.
    pub fuzzy_window: usize,
    /// Minimum time between repeated reports of the same (source,
    /// condition) unless severity moves more than `rereport_delta`.
    pub min_report_gap: SimDuration,
    /// Severity change that forces immediate re-reporting.
    pub rereport_delta: f64,
    /// Seed the DC derives per-report [`TraceId`]s from. The scenario
    /// driver sets it to `dc_trace_seed(master, dc, epoch)` — the same
    /// value it hands the network — so the DC's `DcEmit` root hops land
    /// on the same traces as the transport's hops.
    pub trace_seed: u64,
}

impl DcConfig {
    /// Production-shaped defaults: surveys every 10 minutes, process
    /// samples at 4 Hz, fuzzy every 20 samples, 30-minute re-report gap.
    pub fn new(id: DcId, machine: MachineId) -> Self {
        DcConfig {
            id,
            machine,
            hw: HwConfig::standard(),
            survey_period: SimDuration::from_minutes(10.0),
            process_period: SimDuration::from_secs(0.25),
            fuzzy_every: 20,
            fuzzy_window: 40,
            min_report_gap: SimDuration::from_minutes(30.0),
            rereport_delta: 0.15,
            trace_seed: dc_trace_seed(0, id.raw(), 0),
        }
    }

    /// Set the acquisition hardware.
    pub fn with_hw(mut self, hw: HwConfig) -> Self {
        self.hw = hw;
        self
    }

    /// Set the vibration-survey period.
    pub fn with_survey_period(mut self, d: SimDuration) -> Self {
        self.survey_period = d;
        self
    }

    /// Set the process-sample (and SBFR cycle) period.
    pub fn with_process_period(mut self, d: SimDuration) -> Self {
        self.process_period = d;
        self
    }

    /// Set how many process samples elapse between fuzzy runs.
    pub fn with_fuzzy_every(mut self, n: usize) -> Self {
        self.fuzzy_every = n;
        self
    }

    /// Set the process-snapshot window for the fuzzy suite.
    pub fn with_fuzzy_window(mut self, n: usize) -> Self {
        self.fuzzy_window = n;
        self
    }

    /// Set the re-report throttle gap.
    pub fn with_min_report_gap(mut self, d: SimDuration) -> Self {
        self.min_report_gap = d;
        self
    }

    /// Set the severity delta that forces immediate re-reporting.
    pub fn with_rereport_delta(mut self, delta: f64) -> Self {
        self.rereport_delta = delta;
        self
    }

    /// Set the per-report trace-id seed (see [`DcConfig::trace_seed`]).
    pub fn with_trace_seed(mut self, seed: u64) -> Self {
        self.trace_seed = seed;
        self
    }
}

/// Knowledge-source slots within a DC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Source {
    Dli,
    Sbfr,
    Wnn,
    Fuzzy,
}

impl Source {
    fn label(self) -> &'static str {
        match self {
            Source::Dli => "dli",
            Source::Sbfr => "sbfr",
            Source::Wnn => "wnn",
            Source::Fuzzy => "fuzzy",
        }
    }

    fn ks_id(self, dc: DcId) -> KnowledgeSourceId {
        let offset = match self {
            Source::Dli => 1,
            Source::Sbfr => 2,
            Source::Wnn => 3,
            Source::Fuzzy => 4,
        };
        KnowledgeSourceId::new(dc.raw() * 10 + offset)
    }
}

/// The Data Concentrator.
pub struct DataConcentrator {
    config: DcConfig,
    chain: AcquisitionChain,
    scheduler: Scheduler,
    db: DcDatabase,
    dli: DliExpertSystem,
    fuzzy: FuzzyDiagnostics,
    sbfr: Interpreter,
    wnn: Option<WnnClassifier>,
    process_window: VecDeque<ProcessSnapshot>,
    process_samples: usize,
    ids: IdAllocator,
    last_emitted: HashMap<(&'static str, MachineCondition), (SimTime, f64, f64)>,
    /// Severity history per (source, condition) — the "trend data,
    /// histories" input to next-generation prognostics (§1, §5.1).
    severity_trends: HashMap<(&'static str, MachineCondition), TrendTracker>,
    suspect_channels: Vec<AccelLocation>,
    /// Reusable DSP execution context — cached FFT plans, window tables
    /// and the scratch arena shared by every vibration suite on this DC.
    ctx: DspContext,
    /// Survey workspace reused across surveys: the blocks keep their
    /// allocations between acquisitions, and the kinematic train is
    /// captured from the plant at first use.
    survey: Option<VibrationSurvey>,
    /// Block allocations recovered when channels are quarantined; the
    /// next survey's top-up hands them back before acquisition.
    spare_blocks: Vec<Vec<f64>>,
    /// Reused DLI feature set and its spectral workspaces.
    features: SpectralFeatures,
    survey_scratch: SurveyScratch,
    /// Reused WNN feature buffer.
    wnn_features: Vec<f64>,
    /// DSP totals already published to telemetry (delta basis).
    dsp_published: DspStats,
    telemetry: Telemetry,
    /// Journal component label, e.g. `dc1`.
    component: String,
    m_surveys: Arc<Counter>,
    m_process_samples: Arc<Counter>,
    m_sbfr_cycles: Arc<Counter>,
    m_reports_emitted: Arc<Counter>,
    m_dsp_plans: Arc<Counter>,
    m_dsp_reuses: Arc<Counter>,
    m_dsp_bytes: Arc<Counter>,
}

impl DataConcentrator {
    /// Build a DC: validates the hardware config, loads the Fig. 3 SBFR
    /// pair, and schedules the periodic tasks from t = 0.
    pub fn new(config: DcConfig) -> Result<Self> {
        let chain = AcquisitionChain::new(config.hw.clone())?;
        let mut scheduler = Scheduler::new();
        scheduler.schedule_periodic(Task::VibrationSurvey, config.survey_period, SimTime::ZERO);
        scheduler.schedule_periodic(Task::ProcessSample, config.process_period, SimTime::ZERO);
        scheduler.schedule_periodic(Task::SbfrCycle, config.process_period, SimTime::ZERO);
        let mut sbfr = Interpreter::new();
        sbfr.add_program(&spike_machine(0))?;
        sbfr.add_program(&stiction_machine(1, 0))?;
        let telemetry = Telemetry::new();
        let component = format!("dc{}", config.id.raw());
        let m_surveys = telemetry.counter("dc", "surveys");
        let m_process_samples = telemetry.counter("dc", "process_samples");
        let m_sbfr_cycles = telemetry.counter("dc", "sbfr_cycles");
        let m_reports_emitted = telemetry.counter("dc", "reports_emitted");
        let m_dsp_plans = telemetry.counter("dsp", "plans_cached");
        let m_dsp_reuses = telemetry.counter("dsp", "scratch_reuses");
        let m_dsp_bytes = telemetry.counter("dsp", "bytes_avoided");
        Ok(DataConcentrator {
            telemetry,
            component,
            m_surveys,
            m_process_samples,
            m_sbfr_cycles,
            m_reports_emitted,
            m_dsp_plans,
            m_dsp_reuses,
            m_dsp_bytes,
            ids: IdAllocator::starting_at(config.id.raw() * 1_000_000),
            config,
            chain,
            scheduler,
            db: DcDatabase::new(),
            dli: DliExpertSystem::new(),
            fuzzy: FuzzyDiagnostics::new(),
            sbfr,
            wnn: None,
            process_window: VecDeque::new(),
            process_samples: 0,
            last_emitted: HashMap::new(),
            severity_trends: HashMap::new(),
            suspect_channels: Vec::new(),
            ctx: DspContext::new(),
            survey: None,
            spare_blocks: Vec::new(),
            features: SpectralFeatures::default(),
            survey_scratch: SurveyScratch::default(),
            wnn_features: Vec::new(),
            dsp_published: DspStats::default(),
        })
    }

    /// This DC's id.
    pub fn id(&self) -> DcId {
        self.config.id
    }

    /// The Fig. 3 SBFR machine set every fresh DC loads, as
    /// `(slot, encoded image)` pairs — what a supervisor re-downloads
    /// into a DC after a restart wiped its volatile program store
    /// (§6.3).
    pub fn default_sbfr_images() -> Result<Vec<(u32, Vec<u8>)>> {
        Ok(vec![
            (0, spike_machine(0).encode()?),
            (1, stiction_machine(1, 0).encode()?),
        ])
    }

    /// Attach a trained WNN classifier (optional knowledge source).
    pub fn attach_wnn(&mut self, classifier: WnnClassifier) {
        self.wnn = Some(classifier);
    }

    /// Access the DLI expert system (e.g. to toggle load sensitization
    /// for the ablation experiment).
    pub fn dli_mut(&mut self) -> &mut DliExpertSystem {
        &mut self.dli
    }

    /// The embedded database.
    pub fn db(&self) -> &DcDatabase {
        &self.db
    }

    /// The acquisition chain (alarm states, thresholds).
    pub fn chain(&self) -> &AcquisitionChain {
        &self.chain
    }

    /// Mutable acquisition-chain access (threshold programming, sensor
    /// fault injection in robustness campaigns).
    pub fn chain_mut(&mut self) -> &mut AcquisitionChain {
        &mut self.chain
    }

    /// Channels whose last survey looked electrically dead (flatline) —
    /// the §4.9 self-diagnosis that keeps a broken transducer from
    /// silently blinding an algorithm.
    pub fn suspect_channels(&self) -> &[mpros_chiller::vibration::AccelLocation] {
        &self.suspect_channels
    }

    /// Handle a remote command (§5.8: "the PDME or any other client can
    /// command the scheduler to conduct another test").
    pub fn handle_command(&mut self, msg: &NetMessage) -> Result<()> {
        match msg {
            NetMessage::RunTest { dc, .. } if *dc == self.config.id => {
                self.scheduler.request(Task::VibrationSurvey);
                Ok(())
            }
            NetMessage::DownloadSbfr { dc, slot, image } if *dc == self.config.id => {
                self.sbfr.replace_machine(*slot as usize, image)
            }
            _ => Ok(()), // not addressed to this DC
        }
    }

    /// One whole scheduling step as a self-contained unit of work:
    /// apply the step's delivered commands in arrival order, then run
    /// everything due at `now`. This is the closure the scatter-gather
    /// engine fans out per DC — it touches nothing but `self` and the
    /// read-only plant, so concurrent `step`s on *different* DCs cannot
    /// observe each other.
    pub fn step(
        &mut self,
        plant: &ChillerPlant,
        now: SimTime,
        commands: &[NetMessage],
    ) -> Result<Vec<ConditionReport>> {
        for cmd in commands {
            self.handle_command(cmd)?;
        }
        self.tick(plant, now)
    }

    /// Run everything due at `now` against the instrumented plant;
    /// returns the condition reports to forward to the PDME.
    pub fn tick(&mut self, plant: &ChillerPlant, now: SimTime) -> Result<Vec<ConditionReport>> {
        let mut reports = Vec::new();
        for task in self.scheduler.due(now) {
            self.db.log_task(now, task_name(task))?;
            match task {
                Task::VibrationSurvey => self.run_survey(plant, now, &mut reports)?,
                Task::ProcessSample => self.run_process_sample(plant, now, &mut reports)?,
                Task::SbfrCycle => self.run_sbfr_cycle(plant, now, &mut reports),
            }
        }
        for r in &reports {
            let timer = WallTimer::start();
            self.db.record_diagnosis(&DiagnosisRecord {
                at: now,
                source: source_of(r, self.config.id),
                condition: r.condition,
                severity: r.severity.value(),
                belief: r.belief.value(),
            })?;
            self.m_reports_emitted.inc();
            // The trace root: this report's journey starts here. The
            // wall cost of emission is in the hop; the network and PDME
            // add their hops under the same (purely derived) trace id.
            let mut hop = TraceHop::new(
                TraceId::for_report(self.config.trace_seed, r.id.raw()),
                HopKind::DcEmit,
                0,
                None,
                self.component.clone(),
                r.timestamp.as_secs(),
                now.as_secs(),
                format!("{} {:?}", source_of(r, self.config.id), r.condition),
            );
            hop.wall_ns = timer.elapsed().as_nanos() as u64;
            self.telemetry.record_hop(hop);
            self.telemetry
                .record_span_wall(Stage::Emit, timer.elapsed());
        }
        Ok(reports)
    }

    fn run_survey(
        &mut self,
        plant: &ChillerPlant,
        now: SimTime,
        reports: &mut Vec<ConditionReport>,
    ) -> Result<()> {
        let load = plant.load_at(now);
        // The survey workspace persists across surveys so every block
        // keeps its allocation; quarantined channels donate their buffers
        // to `spare_blocks` and the top-up below hands them back before
        // acquisition, so steady state allocates nothing.
        let mut survey = self.survey.take().unwrap_or_else(|| VibrationSurvey {
            train: plant.train().clone(),
            load,
            sample_rate: self.config.hw.sample_rate,
            blocks: Vec::new(),
        });
        survey.load = load;
        while survey.blocks.len() < self.config.hw.channels.len() {
            let spare = self.spare_blocks.pop().unwrap_or_default();
            survey.blocks.push((AccelLocation::MotorDriveEnd, spare));
        }
        let timer = WallTimer::start();
        self.chain.survey_into(plant, now, &mut survey.blocks);
        self.m_surveys.inc();
        self.telemetry
            .record_span_wall(Stage::Acquire, timer.elapsed());
        // Channel self-check: an electrically dead block means a failed
        // transducer, not a silent machine — exclude it from analysis so
        // the rules reason only over live channels. Live blocks are
        // compacted in place (order preserved); dead blocks return their
        // allocations to the spare pool.
        self.suspect_channels.clear();
        let blocks = &mut survey.blocks;
        let mut live = 0usize;
        for read in 0..blocks.len() {
            let loc = blocks[read].0;
            let stats = WaveformStats::of(&blocks[read].1);
            self.db.record_measurement(&MeasurementRecord {
                at: now,
                channel: format!("{loc:?}"),
                rms: stats.rms,
                peak: stats.peak,
            })?;
            if stats.rms < 1e-6 {
                self.suspect_channels.push(loc);
                self.db.log_task(now, "suspect_channel")?;
                self.telemetry.event_at(
                    now,
                    &self.component,
                    "quarantine",
                    format!("channel {loc:?} flatlined (rms {:.1e})", stats.rms),
                );
                self.spare_blocks.push(std::mem::take(&mut blocks[read].1));
            } else {
                blocks.swap(live, read);
                live += 1;
            }
        }
        blocks.truncate(live);
        // DLI: shared feature extraction, rule evaluation.
        let timer = WallTimer::start();
        SpectralFeatures::extract_into(
            &mut self.ctx,
            &survey,
            &mut self.survey_scratch,
            &mut self.features,
        )?;
        self.telemetry.record_span_wall(Stage::Fft, timer.elapsed());
        let timer = WallTimer::start();
        let diagnoses = self.dli.diagnose(&self.features);
        self.telemetry.record_span_wall(Stage::Dli, timer.elapsed());
        for d in diagnoses {
            self.record_severity(Source::Dli, d.condition, d.severity.value(), now);
            if self.should_emit(
                Source::Dli,
                d.condition,
                d.severity.value(),
                d.belief.value(),
                now,
            ) {
                let mut report = d.to_report(
                    self.ids.next_id::<ReportId>(),
                    self.config.id,
                    Source::Dli.ks_id(self.config.id),
                    self.config.machine,
                    now,
                );
                self.refine_prognostic(Source::Dli, d.condition, &mut report);
                reports.push(report);
            }
        }
        // WNN, when attached: the classifier truncates each block to its
        // configured length internally, so no copies are made here.
        if let Some(wnn) = &self.wnn {
            let timer = WallTimer::start();
            let classified = wnn.classify_blocks_with(
                &mut self.ctx,
                &mut self.wnn_features,
                &survey.blocks,
                load,
            );
            self.telemetry.record_span_wall(Stage::Wnn, timer.elapsed());
            if let Ok(verdict) = classified {
                if let Some(condition) = verdict.condition() {
                    if verdict.confidence > 0.5
                        && self.should_emit(
                            Source::Wnn,
                            condition,
                            verdict.confidence * 0.7,
                            verdict.confidence,
                            now,
                        )
                    {
                        reports.push(
                            ConditionReport::builder(
                                self.config.machine,
                                condition,
                                Belief::new(verdict.confidence),
                            )
                            .id(self.ids.next_id())
                            .dc(self.config.id)
                            .knowledge_source(Source::Wnn.ks_id(self.config.id))
                            .severity(Severity::new(verdict.confidence * 0.7))
                            .timestamp(now)
                            .explanation(format!(
                                "WNN classified {} (confidence {:.2})",
                                verdict.class.label(),
                                verdict.confidence
                            ))
                            .build(),
                        );
                    }
                }
            }
        }
        self.survey = Some(survey);
        self.publish_dsp_stats();
        Ok(())
    }

    /// Publish the DSP context's counter growth since the last publish
    /// to the `dsp.*` telemetry counters. The deltas are derived purely
    /// from the (deterministic) analysis workload, so fleet snapshots
    /// agree across sequential and parallel execution modes.
    fn publish_dsp_stats(&mut self) {
        let stats = self.ctx.stats();
        self.m_dsp_plans
            .add(stats.plans_created - self.dsp_published.plans_created);
        self.m_dsp_reuses
            .add(stats.scratch_reuses - self.dsp_published.scratch_reuses);
        self.m_dsp_bytes
            .add(stats.bytes_avoided - self.dsp_published.bytes_avoided);
        self.dsp_published = stats;
    }

    /// Cumulative statistics of this DC's DSP execution context.
    pub fn dsp_stats(&self) -> DspStats {
        self.ctx.stats()
    }

    fn run_process_sample(
        &mut self,
        plant: &ChillerPlant,
        now: SimTime,
        reports: &mut Vec<ConditionReport>,
    ) -> Result<()> {
        let snap = plant.sample_process(now);
        self.process_window.push_back(snap);
        while self.process_window.len() > self.config.fuzzy_window {
            self.process_window.pop_front();
        }
        self.process_samples += 1;
        self.m_process_samples.inc();
        if !self.process_samples.is_multiple_of(self.config.fuzzy_every)
            || self.process_window.len() < self.config.fuzzy_every
        {
            return Ok(());
        }
        let window: Vec<ProcessSnapshot> = self.process_window.iter().copied().collect();
        let timer = WallTimer::start();
        let diagnoses = self.fuzzy.analyze(&window)?;
        self.telemetry
            .record_span_wall(Stage::Fuzzy, timer.elapsed());
        for d in diagnoses {
            self.record_severity(Source::Fuzzy, d.condition, d.severity.value(), now);
            if self.should_emit(
                Source::Fuzzy,
                d.condition,
                d.severity.value(),
                d.belief.value(),
                now,
            ) {
                let mut report = d.to_report(
                    self.ids.next_id::<ReportId>(),
                    self.config.id,
                    Source::Fuzzy.ks_id(self.config.id),
                    self.config.machine,
                    now,
                );
                self.refine_prognostic(Source::Fuzzy, d.condition, &mut report);
                reports.push(report);
            }
        }
        Ok(())
    }

    fn run_sbfr_cycle(
        &mut self,
        plant: &ChillerPlant,
        now: SimTime,
        reports: &mut Vec<ConditionReport>,
    ) {
        let snap = plant.sample_process(now);
        // Channel 0: drive current; channel 1: commanded load (the CPOS
        // analogue for the chiller).
        let timer = WallTimer::start();
        self.sbfr.cycle(&[snap.motor_current_a, snap.load]);
        self.m_sbfr_cycles.inc();
        self.telemetry
            .record_span_wall(Stage::Sbfr, timer.elapsed());
        let flagged = self
            .sbfr
            .status(1)
            .map(|s| s.status & 1 == 1)
            .unwrap_or(false);
        if flagged {
            // Repeated uncommanded current spikes: the compressor is
            // hunting (surge precursor). Consume the flag.
            self.sbfr.set_status(1, 0).expect("machine 1 exists");
            if self.should_emit(
                Source::Sbfr,
                MachineCondition::CompressorSurge,
                0.55,
                0.6,
                now,
            ) {
                reports.push(
                    ConditionReport::builder(
                        self.config.machine,
                        MachineCondition::CompressorSurge,
                        Belief::new(0.6),
                    )
                    .id(self.ids.next_id())
                    .dc(self.config.id)
                    .knowledge_source(Source::Sbfr.ks_id(self.config.id))
                    .severity(Severity::new(0.55))
                    .timestamp(now)
                    .explanation(
                        "SBFR: >4 drive-current spikes without a commanded load change".to_string(),
                    )
                    .build(),
                );
            }
        }
    }

    /// Feed the severity history that data-driven prognosis trends on.
    fn record_severity(
        &mut self,
        source: Source,
        condition: MachineCondition,
        severity: f64,
        now: SimTime,
    ) {
        let tracker = self
            .severity_trends
            .entry((source.label(), condition))
            .or_insert_with(|| TrendTracker::new(16).expect("3 <= 16"));
        // Equal-or-later timestamps only; the scheduler guarantees it.
        let _ = tracker.record(now, severity);
    }

    /// §1: "next generation software will use more complex failure
    /// analysis using historical data, and learning to refine its
    /// estimates over time." When the observed severity history trends
    /// cleanly toward 1.0, attach a data-driven prognostic curve around
    /// the projected crossing; it replaces the generic grade template
    /// when it is the more conservative (earlier) estimate — the same
    /// rule prognostic fusion applies at the PDME (§5.4).
    fn refine_prognostic(
        &mut self,
        source: Source,
        condition: MachineCondition,
        report: &mut ConditionReport,
    ) {
        let Some(tracker) = self.severity_trends.get(&(source.label(), condition)) else {
            return;
        };
        let Some(eta) = tracker.time_to_threshold(1.0, 0.85) else {
            return;
        };
        let trend_curve = PrognosticVector::new(vec![
            PrognosticPoint::new(eta * 0.5, 0.2),
            PrognosticPoint::new(eta, 0.6),
            PrognosticPoint::new(eta * 1.5, 0.9),
        ])
        .expect("trend curves are valid");
        let earlier = |v: &PrognosticVector| {
            v.horizon_for_probability(0.5)
                .map(|d| d.as_secs())
                .unwrap_or(f64::INFINITY)
        };
        if earlier(&trend_curve) < earlier(&report.prognostic) {
            report.additional_info =
                format!("trend-refined: severity history projects functional failure in {eta}");
            report.prognostic = trend_curve;
        }
    }

    /// Re-report gate: first sighting, material severity or belief
    /// change, or refresh interval elapsed.
    fn should_emit(
        &mut self,
        source: Source,
        condition: MachineCondition,
        severity: f64,
        belief: f64,
        now: SimTime,
    ) -> bool {
        let key = (source.label(), condition);
        let emit = match self.last_emitted.get(&key) {
            None => true,
            Some(&(at, sev, bel)) => {
                now.since(at) >= self.config.min_report_gap
                    || (severity - sev).abs() > self.config.rereport_delta
                    || (belief - bel).abs() > self.config.rereport_delta
            }
        };
        if emit {
            self.last_emitted.insert(key, (now, severity, belief));
        }
        emit
    }
}

impl Instrumented for DataConcentrator {
    /// Join a shared telemetry domain, carrying counter totals over.
    /// Call at wiring time, before traffic.
    fn set_telemetry(&mut self, telemetry: &Telemetry) {
        if self.telemetry.same_domain(telemetry) {
            return;
        }
        for (component, name, slot) in [
            ("dc", "surveys", &mut self.m_surveys),
            ("dc", "process_samples", &mut self.m_process_samples),
            ("dc", "sbfr_cycles", &mut self.m_sbfr_cycles),
            ("dc", "reports_emitted", &mut self.m_reports_emitted),
            ("dsp", "plans_cached", &mut self.m_dsp_plans),
            ("dsp", "scratch_reuses", &mut self.m_dsp_reuses),
            ("dsp", "bytes_avoided", &mut self.m_dsp_bytes),
        ] {
            let counter = telemetry.counter(component, name);
            counter.add(slot.get());
            *slot = counter;
        }
        self.telemetry = telemetry.clone();
    }

    fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }
}

fn task_name(task: Task) -> &'static str {
    match task {
        Task::VibrationSurvey => "vibration_survey",
        Task::ProcessSample => "process_sample",
        Task::SbfrCycle => "sbfr_cycle",
    }
}

fn source_of(report: &ConditionReport, dc: DcId) -> String {
    for s in [Source::Dli, Source::Sbfr, Source::Wnn, Source::Fuzzy] {
        if s.ks_id(dc) == report.knowledge_source {
            return s.label().to_string();
        }
    }
    "unknown".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpros_chiller::fault::{FaultProfile, FaultSeed};
    use mpros_chiller::plant::PlantConfig;

    fn plant_with(condition: Option<MachineCondition>, sev: f64) -> ChillerPlant {
        let mut p = ChillerPlant::new(PlantConfig::new(MachineId::new(1), 77));
        if let Some(c) = condition {
            p.seed_fault(FaultSeed {
                condition: c,
                onset: SimTime::ZERO,
                time_to_failure: SimDuration::from_secs(1.0),
                profile: FaultProfile::Step(sev),
            });
        }
        p
    }

    fn dc() -> DataConcentrator {
        let mut cfg = DcConfig::new(DcId::new(1), MachineId::new(1));
        cfg.survey_period = SimDuration::from_secs(30.0);
        DataConcentrator::new(cfg).unwrap()
    }

    /// Drive the DC over `secs` seconds of simulated time at the process
    /// cadence, collecting all reports.
    fn run(dc: &mut DataConcentrator, plant: &ChillerPlant, secs: f64) -> Vec<ConditionReport> {
        let mut out = Vec::new();
        let dt = 0.25;
        let steps = (secs / dt) as usize;
        for i in 0..=steps {
            let now = SimTime::from_secs(i as f64 * dt);
            out.extend(dc.tick(plant, now).unwrap());
        }
        out
    }

    #[test]
    fn healthy_plant_stays_quiet() {
        let mut d = dc();
        let reports = run(&mut d, &plant_with(None, 0.0), 60.0);
        assert!(
            reports.is_empty(),
            "false positives: {:?}",
            reports.iter().map(|r| r.condition).collect::<Vec<_>>()
        );
        assert!(d.db().measurement_count() > 0, "surveys ran");
        assert!(d.db().task_log_count() > 100, "scheduler ran");
    }

    #[test]
    fn imbalance_is_reported_by_dli() {
        let mut d = dc();
        let reports = run(
            &mut d,
            &plant_with(Some(MachineCondition::MotorImbalance), 0.9),
            60.0,
        );
        let dli_reports: Vec<_> = reports
            .iter()
            .filter(|r| r.condition == MachineCondition::MotorImbalance)
            .collect();
        assert!(!dli_reports.is_empty(), "imbalance unreported");
        let r = dli_reports[0];
        assert_eq!(r.dc, DcId::new(1));
        assert_eq!(r.machine, MachineId::new(1));
        assert!(r.belief.value() > 0.5);
        assert!(r.has_prognostic());
        assert_eq!(d.db().diagnosis_count(), reports.len());
    }

    #[test]
    fn process_fault_is_reported_by_fuzzy() {
        let mut d = dc();
        let reports = run(
            &mut d,
            &plant_with(Some(MachineCondition::RefrigerantLeak), 0.9),
            60.0,
        );
        assert!(
            reports
                .iter()
                .any(|r| r.condition == MachineCondition::RefrigerantLeak),
            "leak unreported: {:?}",
            reports.iter().map(|r| r.condition).collect::<Vec<_>>()
        );
    }

    #[test]
    fn surge_is_seen_by_multiple_sources() {
        let mut d = dc();
        let reports = run(
            &mut d,
            &plant_with(Some(MachineCondition::CompressorSurge), 0.95),
            120.0,
        );
        let surge: Vec<_> = reports
            .iter()
            .filter(|r| r.condition == MachineCondition::CompressorSurge)
            .collect();
        assert!(!surge.is_empty(), "surge unreported");
        let sources: std::collections::HashSet<_> =
            surge.iter().map(|r| r.knowledge_source).collect();
        assert!(
            sources.len() >= 2,
            "expected ≥2 independent sources, got {sources:?}"
        );
    }

    #[test]
    fn reports_are_throttled() {
        let mut d = dc();
        // 10 surveys in 5 minutes; gap is 30 min, severity constant →
        // exactly one DLI report for the imbalance.
        let reports = run(
            &mut d,
            &plant_with(Some(MachineCondition::MotorImbalance), 0.9),
            300.0,
        );
        let dli: Vec<_> = reports
            .iter()
            .filter(|r| {
                r.condition == MachineCondition::MotorImbalance
                    && r.knowledge_source == KnowledgeSourceId::new(11)
            })
            .collect();
        assert_eq!(dli.len(), 1, "throttle failed: {} reports", dli.len());
    }

    #[test]
    fn run_test_command_triggers_immediate_survey() {
        let mut d = dc();
        let p = plant_with(Some(MachineCondition::MotorImbalance), 0.9);
        // Advance a little past the t=0 survey.
        d.tick(&p, SimTime::ZERO).unwrap();
        let before = d.db().measurement_count();
        d.handle_command(&NetMessage::RunTest {
            dc: DcId::new(1),
            machine: MachineId::new(1),
        })
        .unwrap();
        d.tick(&p, SimTime::from_secs(1.0)).unwrap();
        assert!(d.db().measurement_count() > before, "on-demand survey ran");
        // A command addressed elsewhere is ignored.
        let before = d.db().measurement_count();
        d.handle_command(&NetMessage::RunTest {
            dc: DcId::new(9),
            machine: MachineId::new(1),
        })
        .unwrap();
        d.tick(&p, SimTime::from_secs(2.0)).unwrap();
        assert_eq!(d.db().measurement_count(), before);
    }

    #[test]
    fn sbfr_download_replaces_machine() {
        let mut d = dc();
        let image = spike_machine(0).encode().unwrap();
        d.handle_command(&NetMessage::DownloadSbfr {
            dc: DcId::new(1),
            slot: 0,
            image,
        })
        .unwrap();
        // Bad image is rejected.
        assert!(d
            .handle_command(&NetMessage::DownloadSbfr {
                dc: DcId::new(1),
                slot: 0,
                image: vec![1, 2, 3],
            })
            .is_err());
    }

    #[test]
    fn telemetry_counts_pipeline_activity() {
        let mut d = dc();
        run(
            &mut d,
            &plant_with(Some(MachineCondition::MotorImbalance), 0.9),
            60.0,
        );
        let t = d.telemetry().clone();
        assert!(t.counter("dc", "surveys").get() >= 2);
        assert!(t.counter("dc", "process_samples").get() > 100);
        assert!(t.counter("dc", "sbfr_cycles").get() > 100);
        assert!(t.counter("dc", "reports_emitted").get() >= 1);
        for stage in [
            Stage::Acquire,
            Stage::Fft,
            Stage::Dli,
            Stage::Sbfr,
            Stage::Fuzzy,
            Stage::Emit,
        ] {
            assert!(t.span_wall(stage).count() > 0, "no {stage} spans");
        }
    }

    #[test]
    fn set_telemetry_migrates_counts_into_the_shared_domain() {
        let mut d = dc();
        run(
            &mut d,
            &plant_with(Some(MachineCondition::MotorImbalance), 0.9),
            30.0,
        );
        let emitted_before = d.telemetry().counter("dc", "reports_emitted").get();
        assert!(emitted_before >= 1);
        let shared = Telemetry::new();
        d.set_telemetry(&shared);
        assert!(d.telemetry().same_domain(&shared));
        assert_eq!(
            shared.counter("dc", "reports_emitted").get(),
            emitted_before
        );
    }

    #[test]
    fn report_ids_are_unique_and_dc_scoped() {
        let mut d = dc();
        let reports = run(
            &mut d,
            &plant_with(Some(MachineCondition::GearToothWear), 0.9),
            90.0,
        );
        let mut ids: Vec<u64> = reports.iter().map(|r| r.id.raw()).collect();
        let before = ids.len();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), before, "duplicate report ids");
        assert!(ids.iter().all(|&i| i >= 1_000_000), "ids are DC-scoped");
    }
}

#[cfg(test)]
mod trend_tests {
    use super::*;
    use mpros_chiller::fault::{FaultProfile, FaultSeed};
    use mpros_chiller::plant::PlantConfig;

    /// A steadily progressing fault must eventually ship a trend-refined
    /// prognostic whose median precedes the generic grade template's.
    #[test]
    fn progressing_fault_gets_trend_refined_prognosis() {
        let mut cfg = DcConfig::new(DcId::new(1), MachineId::new(1));
        cfg.survey_period = SimDuration::from_secs(30.0);
        cfg.min_report_gap = SimDuration::from_secs(60.0);
        cfg.rereport_delta = 0.05;
        let mut dc = DataConcentrator::new(cfg).unwrap();
        let mut plant = ChillerPlant::new(PlantConfig::new(MachineId::new(1), 55));
        plant.seed_fault(FaultSeed {
            condition: MachineCondition::MotorImbalance,
            onset: SimTime::ZERO,
            // Severity ramps over 20 min: the trend projects crossing
            // 1.0 about (1-s)·20min ahead — far earlier than the
            // months-scale grade template.
            time_to_failure: SimDuration::from_minutes(20.0),
            profile: FaultProfile::Linear,
        });
        let mut refined = Vec::new();
        for i in 0..=2400 {
            let now = SimTime::from_secs(i as f64 * 0.25);
            for r in dc.tick(&plant, now).unwrap() {
                if r.additional_info.contains("trend-refined") {
                    refined.push(r);
                }
            }
        }
        assert!(
            !refined.is_empty(),
            "no trend-refined report over a 10-minute linear ramp"
        );
        let r = refined.last().unwrap();
        let median = r
            .prognostic
            .horizon_for_probability(0.5)
            .expect("trend curve reaches 50%");
        // The fault fails within 20 simulated minutes; the refined
        // median must be on that scale, not on the calendar scale.
        assert!(
            median < SimDuration::from_hours(2.0),
            "median {median} not data-driven"
        );
    }

    /// A step fault holds constant severity: no rising trend, no
    /// refinement — the generic grade prognosis stands.
    #[test]
    fn constant_fault_keeps_the_grade_template() {
        let mut cfg = DcConfig::new(DcId::new(1), MachineId::new(1));
        cfg.survey_period = SimDuration::from_secs(30.0);
        let mut dc = DataConcentrator::new(cfg).unwrap();
        let mut plant = ChillerPlant::new(PlantConfig::new(MachineId::new(1), 55));
        plant.seed_fault(FaultSeed {
            condition: MachineCondition::MotorImbalance,
            onset: SimTime::ZERO,
            time_to_failure: SimDuration::from_secs(1.0),
            profile: FaultProfile::Step(0.6),
        });
        for i in 0..=1200 {
            let now = SimTime::from_secs(i as f64 * 0.25);
            for r in dc.tick(&plant, now).unwrap() {
                assert!(
                    !r.additional_info.contains("trend-refined"),
                    "flat severity must not be trend-refined"
                );
            }
        }
    }
}

#[cfg(test)]
mod sensor_robustness_tests {
    use super::*;
    use crate::hw::SensorFault;
    use mpros_chiller::fault::{FaultProfile, FaultSeed};
    use mpros_chiller::plant::PlantConfig;
    use mpros_chiller::vibration::AccelLocation;

    #[test]
    fn dead_channel_is_quarantined_and_analysis_continues() {
        let mut cfg = DcConfig::new(DcId::new(1), MachineId::new(1));
        cfg.survey_period = SimDuration::from_secs(30.0);
        let mut dc = DataConcentrator::new(cfg).unwrap();
        // Kill the gear-case accelerometer (channel 2).
        dc.chain_mut()
            .fail_sensor(2, SensorFault::Flatline)
            .unwrap();
        let mut plant = ChillerPlant::new(PlantConfig::new(MachineId::new(1), 91));
        plant.seed_fault(FaultSeed {
            condition: MachineCondition::MotorImbalance,
            onset: SimTime::ZERO,
            time_to_failure: SimDuration::from_secs(1.0),
            profile: FaultProfile::Step(0.9),
        });
        let mut reports = Vec::new();
        for i in 0..=480 {
            let now = SimTime::from_secs(i as f64 * 0.25);
            reports.extend(dc.tick(&plant, now).unwrap());
        }
        assert_eq!(
            dc.suspect_channels(),
            &[AccelLocation::GearCase],
            "dead channel flagged"
        );
        let quarantines: Vec<_> = dc
            .telemetry()
            .events()
            .into_iter()
            .filter(|e| e.kind == "quarantine")
            .collect();
        assert!(!quarantines.is_empty(), "quarantine journaled");
        assert_eq!(quarantines[0].component, "dc1");
        assert!(quarantines[0].detail.contains("GearCase"));
        assert!(
            reports
                .iter()
                .any(|r| r.condition == MachineCondition::MotorImbalance),
            "motor fault still diagnosed from the live channels"
        );
        // And no phantom gear diagnosis from the zeroed channel.
        assert!(!reports
            .iter()
            .any(|r| r.condition == MachineCondition::GearToothWear));
    }
}

//! # mpros-dc
//!
//! The Data Concentrator (§5.8, §8.1): "a computer in its own right
//! \[with\] the major responsibility for diagnostics and prognostics."
//!
//! * [`hw`] — the acquisition hardware model: two 16×4 MUX cards (32
//!   channels, 24 accelerometer-capable), a 4-channel spectrum-analyzer
//!   card sampling above 40 kHz, and per-channel latching RMS alarm
//!   detectors, per the Fig. 5 block diagram.
//! * [`scheduler`] — "The DC software is coordinated by an event
//!   scheduler. It coordinates standard vibration test\[s\] ... wavelet and
//!   neural network testing and analysis, and state based feature
//!   recognition routines"; on-demand tests can be commanded remotely.
//! * [`db`] — the embedded relational database "designed to store all of
//!   the instrumentation configuration information, machinery
//!   configuration information, test schedules, resultant measurements,
//!   diagnostic results, and condition reports."
//! * [`dc`] — the concentrator itself, hosting the four §1.1 algorithm
//!   suites (DLI, SBFR, WNN, fuzzy logic) and emitting §7.2 condition
//!   reports for the PDME.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod db;
pub mod dc;
pub mod hw;
pub mod scheduler;

pub use db::DcDatabase;
pub use dc::{DataConcentrator, DcConfig};
pub use hw::{AcquisitionChain, ChannelConfig, HwConfig, SensorFault};
pub use scheduler::{Scheduler, Task};

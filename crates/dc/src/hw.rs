//! The acquisition hardware model (§8.1, Fig. 5).
//!
//! "The 4 channel PCMCIA card samples DC and AC dynamic signals. Highest
//! sampling rate exceeds 40,000 Hz... Each of the 2 MUX cards can switch
//! between 4 sets of 4 channels each yielding up to 32 channels of data.
//! Of those 32 channels, 24 can power standard accelerometers...
//! Additionally, all channels are equipped with an RMS detector which
//! can be configure\[d\] to provide a digital signal when the RMS of the
//! incoming signal exceeds a programmed value."
//!
//! The model enforces those capacities and reproduces the operational
//! consequence of multiplexing: only four channels digitize at a time,
//! so a full survey acquires bank after bank, each bank's block starting
//! where the previous one ended in simulated time.

use mpros_chiller::vibration::AccelLocation;
use mpros_chiller::ChillerPlant;
use mpros_core::{Error, Result, SimDuration, SimTime};
use mpros_signal::rms::RmsAlarm;

/// Channels per sampler bank (the 4-channel PCMCIA DSP card).
pub const BANK_WIDTH: usize = 4;
/// Total channel capacity (2 MUX cards × 16).
pub const MAX_CHANNELS: usize = 32;
/// Channels that can power accelerometers.
pub const MAX_ACCEL_CHANNELS: usize = 24;
/// Maximum supported sample rate, Hz ("exceeds 40,000 Hz").
pub const MAX_SAMPLE_RATE: f64 = 48_000.0;

/// Injected sensor failure modes (§4.9: shipboard robustness requires
/// "simulating the range of problems that may arise").
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SensorFault {
    /// Dead channel: reads as electrical zero.
    Flatline,
    /// Transducer stuck at a constant output.
    Stuck(f64),
    /// Loose connector: signal drops out in bursts (every other 256-
    /// sample chunk reads zero).
    Intermittent,
}

/// One configured channel.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelConfig {
    /// The accelerometer location this channel is wired to.
    pub location: AccelLocation,
    /// Programmed RMS alarm threshold, g.
    pub alarm_threshold: f64,
}

/// Hardware configuration.
#[derive(Debug, Clone)]
pub struct HwConfig {
    /// Wired channels (≤ 24 accelerometers).
    pub channels: Vec<ChannelConfig>,
    /// Sampler rate, Hz (≤ 48 kHz).
    pub sample_rate: f64,
    /// Samples per acquisition block (power of two for the FFT chain).
    pub block_len: usize,
}

impl HwConfig {
    /// The standard five-accelerometer chiller survey at 16.384 kHz.
    /// Blocks are 2 s (32 768 samples) so the spectrum resolves the
    /// ~1.6 Hz pole-pass sidebands rotor-bar analysis needs.
    pub fn standard() -> Self {
        HwConfig {
            channels: AccelLocation::ALL
                .iter()
                .map(|&location| ChannelConfig {
                    location,
                    alarm_threshold: 1.0,
                })
                .collect(),
            sample_rate: 16_384.0,
            block_len: 32_768,
        }
    }
}

/// The MUX + sampler + RMS-detector chain.
#[derive(Debug)]
pub struct AcquisitionChain {
    config: HwConfig,
    alarms: Vec<RmsAlarm>,
    sensor_faults: Vec<Option<SensorFault>>,
}

impl AcquisitionChain {
    /// Build and validate the chain against the Fig. 5 capacities.
    pub fn new(config: HwConfig) -> Result<Self> {
        if config.channels.is_empty() {
            return Err(Error::invalid("no channels configured"));
        }
        if config.channels.len() > MAX_ACCEL_CHANNELS {
            return Err(Error::CapacityExceeded(format!(
                "{} accelerometer channels exceeds the MUX cards' {MAX_ACCEL_CHANNELS}",
                config.channels.len()
            )));
        }
        if config.channels.len() > MAX_CHANNELS {
            return Err(Error::CapacityExceeded("more than 32 channels".into()));
        }
        if config.sample_rate <= 0.0 || config.sample_rate > MAX_SAMPLE_RATE {
            return Err(Error::invalid(format!(
                "sample rate {} outside (0, {MAX_SAMPLE_RATE}]",
                config.sample_rate
            )));
        }
        if !config.block_len.is_power_of_two() || config.block_len < 2 {
            return Err(Error::invalid("block length must be a power of two"));
        }
        let alarms = config
            .channels
            .iter()
            .map(|c| RmsAlarm::new(c.alarm_threshold, (config.sample_rate / 10.0).max(1.0)))
            .collect::<Result<Vec<_>>>()?;
        Ok(AcquisitionChain {
            sensor_faults: vec![None; config.channels.len()],
            config,
            alarms,
        })
    }

    /// The configuration.
    pub fn config(&self) -> &HwConfig {
        &self.config
    }

    /// Duration of one block at the configured rate.
    pub fn block_duration(&self) -> SimDuration {
        SimDuration::from_secs(self.config.block_len as f64 / self.config.sample_rate)
    }

    /// Duration of a full survey: one block per bank, banks sequential.
    pub fn survey_duration(&self) -> SimDuration {
        let banks = self.config.channels.len().div_ceil(BANK_WIDTH);
        self.block_duration() * banks as f64
    }

    /// Acquire a full survey from the plant starting at `t0`. Banks of
    /// four channels are digitized back-to-back (the MUX constraint);
    /// every block also updates its channel's RMS alarm detector.
    /// Injected sensor faults corrupt the digitized block exactly as the
    /// hardware would see it.
    pub fn survey(&mut self, plant: &ChillerPlant, t0: SimTime) -> Vec<(AccelLocation, Vec<f64>)> {
        let mut out = Vec::with_capacity(self.config.channels.len());
        self.survey_into(plant, t0, &mut out);
        out
    }

    /// [`AcquisitionChain::survey`] refilling a caller-provided buffer in
    /// place. Existing entries (and their block allocations) are reused
    /// index-wise, so a DC that keeps the buffer across surveys performs
    /// zero steady-state heap allocations in acquisition. Channel order,
    /// injected sensor faults and alarm updates are identical to
    /// [`AcquisitionChain::survey`], and the digitized blocks are
    /// bit-identical.
    pub fn survey_into(
        &mut self,
        plant: &ChillerPlant,
        t0: SimTime,
        out: &mut Vec<(AccelLocation, Vec<f64>)>,
    ) {
        out.truncate(self.config.channels.len());
        for (bank_idx, bank) in self.config.channels.chunks(BANK_WIDTH).enumerate() {
            let bank_t0 = t0 + self.block_duration() * bank_idx as f64;
            for (offset, ch) in bank.iter().enumerate() {
                let global = bank_idx * BANK_WIDTH + offset;
                if global == out.len() {
                    out.push((ch.location, Vec::new()));
                }
                let slot = &mut out[global];
                slot.0 = ch.location;
                let block = &mut slot.1;
                plant.sample_vibration_into(
                    ch.location,
                    bank_t0,
                    self.config.block_len,
                    self.config.sample_rate,
                    block,
                );
                match self.sensor_faults[global] {
                    None => {}
                    Some(SensorFault::Flatline) => block.fill(0.0),
                    Some(SensorFault::Stuck(v)) => block.fill(v),
                    Some(SensorFault::Intermittent) => {
                        for (i, chunk) in block.chunks_mut(256).enumerate() {
                            if i % 2 == 1 {
                                chunk.fill(0.0);
                            }
                        }
                    }
                }
                self.alarms[global].update_block(block);
            }
        }
    }

    /// Inject a sensor failure on a channel.
    pub fn fail_sensor(&mut self, channel: usize, fault: SensorFault) -> Result<()> {
        *self
            .sensor_faults
            .get_mut(channel)
            .ok_or_else(|| Error::not_found(format!("channel {channel}")))? = Some(fault);
        Ok(())
    }

    /// Clear an injected sensor failure.
    pub fn repair_sensor(&mut self, channel: usize) -> Result<()> {
        *self
            .sensor_faults
            .get_mut(channel)
            .ok_or_else(|| Error::not_found(format!("channel {channel}")))? = None;
        Ok(())
    }

    /// Asserted state of every channel's RMS alarm.
    pub fn alarm_states(&self) -> Vec<(AccelLocation, bool)> {
        self.config
            .channels
            .iter()
            .zip(&self.alarms)
            .map(|(c, a)| (c.location, a.is_asserted()))
            .collect()
    }

    /// Acknowledge (clear) every latched alarm.
    pub fn acknowledge_alarms(&mut self) {
        for a in &mut self.alarms {
            a.acknowledge();
        }
    }

    /// Reprogram one channel's alarm threshold.
    pub fn set_alarm_threshold(&mut self, channel: usize, threshold: f64) -> Result<()> {
        let alarm = self
            .alarms
            .get_mut(channel)
            .ok_or_else(|| Error::not_found(format!("channel {channel}")))?;
        alarm.set_threshold(threshold)?;
        self.config.channels[channel].alarm_threshold = threshold;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpros_chiller::fault::{FaultProfile, FaultSeed};
    use mpros_chiller::plant::PlantConfig;
    use mpros_core::{MachineCondition, MachineId};

    fn plant() -> ChillerPlant {
        ChillerPlant::new(PlantConfig::new(MachineId::new(1), 5))
    }

    #[test]
    fn capacity_validation() {
        let mut cfg = HwConfig::standard();
        assert!(AcquisitionChain::new(cfg.clone()).is_ok());
        cfg.sample_rate = 50_000.0;
        assert!(AcquisitionChain::new(cfg.clone()).is_err());
        cfg.sample_rate = 16_384.0;
        cfg.block_len = 1000;
        assert!(AcquisitionChain::new(cfg.clone()).is_err());
        cfg.block_len = 8192;
        cfg.channels.clear();
        assert!(AcquisitionChain::new(cfg.clone()).is_err());
        // 25 accelerometers exceeds the powered-channel budget.
        cfg.channels = (0..25)
            .map(|_| ChannelConfig {
                location: AccelLocation::MotorDriveEnd,
                alarm_threshold: 1.0,
            })
            .collect();
        assert!(matches!(
            AcquisitionChain::new(cfg).unwrap_err(),
            Error::CapacityExceeded(_)
        ));
    }

    #[test]
    fn survey_covers_all_channels() {
        let mut chain = AcquisitionChain::new(HwConfig::standard()).unwrap();
        let blocks = chain.survey(&plant(), SimTime::ZERO);
        assert_eq!(blocks.len(), 5);
        for (_, b) in &blocks {
            assert_eq!(b.len(), 32_768);
        }
    }

    #[test]
    fn banks_are_time_sequential() {
        // 5 channels → 2 banks; the second bank's block must differ from
        // a block taken at t0 (it is taken one block-duration later).
        let mut chain = AcquisitionChain::new(HwConfig::standard()).unwrap();
        let p = plant();
        let blocks = chain.survey(&p, SimTime::ZERO);
        let fifth_loc = blocks[4].0;
        let at_t0 = p.sample_vibration(fifth_loc, SimTime::ZERO, 32_768, 16_384.0);
        assert_ne!(blocks[4].1, at_t0, "bank 2 starts after bank 1 ends");
        let later = p.sample_vibration(
            fifth_loc,
            SimTime::ZERO + chain.block_duration(),
            32_768,
            16_384.0,
        );
        assert_eq!(blocks[4].1, later);
    }

    #[test]
    fn survey_duration_accounts_for_banks() {
        let chain = AcquisitionChain::new(HwConfig::standard()).unwrap();
        let expect = chain.block_duration() * 2.0; // ceil(5/4) banks
        assert!((chain.survey_duration().as_secs() - expect.as_secs()).abs() < 1e-12);
    }

    #[test]
    fn rms_alarm_trips_on_violent_vibration() {
        let mut chain = AcquisitionChain::new(HwConfig {
            channels: vec![ChannelConfig {
                location: AccelLocation::MotorDriveEnd,
                alarm_threshold: 0.3,
            }],
            sample_rate: 16_384.0,
            block_len: 4096,
        })
        .unwrap();
        let mut p = plant();
        assert!(!chain.alarm_states()[0].1, "healthy plant stays quiet");
        chain.survey(&p, SimTime::ZERO);
        assert!(!chain.alarm_states()[0].1);
        // Violent imbalance trips the 0.3 g RMS alarm.
        p.seed_fault(FaultSeed {
            condition: MachineCondition::MotorImbalance,
            onset: SimTime::ZERO,
            time_to_failure: SimDuration::from_secs(1.0),
            profile: FaultProfile::Step(1.0),
        });
        chain.survey(&p, SimTime::from_secs(10.0));
        assert!(chain.alarm_states()[0].1, "alarm should latch");
        chain.acknowledge_alarms();
        assert!(!chain.alarm_states()[0].1);
    }

    #[test]
    fn alarm_threshold_reprogramming() {
        let mut chain = AcquisitionChain::new(HwConfig::standard()).unwrap();
        chain.set_alarm_threshold(0, 0.05).unwrap();
        assert_eq!(chain.config().channels[0].alarm_threshold, 0.05);
        assert!(chain.set_alarm_threshold(99, 1.0).is_err());
        assert!(chain.set_alarm_threshold(0, -1.0).is_err());
    }
}

#[cfg(test)]
mod sensor_fault_tests {
    use super::*;
    use mpros_chiller::plant::PlantConfig;
    use mpros_core::MachineId;

    fn chain() -> AcquisitionChain {
        AcquisitionChain::new(HwConfig::standard()).unwrap()
    }

    fn plant() -> ChillerPlant {
        ChillerPlant::new(PlantConfig::new(MachineId::new(1), 5))
    }

    #[test]
    fn flatline_reads_zero_and_repairs() {
        let mut c = chain();
        c.fail_sensor(0, SensorFault::Flatline).unwrap();
        let blocks = c.survey(&plant(), SimTime::ZERO);
        assert!(blocks[0].1.iter().all(|&x| x == 0.0), "flatlined channel");
        assert!(blocks[1].1.iter().any(|&x| x != 0.0), "others unaffected");
        c.repair_sensor(0).unwrap();
        let blocks = c.survey(&plant(), SimTime::from_secs(10.0));
        assert!(blocks[0].1.iter().any(|&x| x != 0.0), "repaired");
    }

    #[test]
    fn stuck_sensor_reads_a_constant() {
        let mut c = chain();
        c.fail_sensor(2, SensorFault::Stuck(4.2)).unwrap();
        let blocks = c.survey(&plant(), SimTime::ZERO);
        assert!(blocks[2].1.iter().all(|&x| x == 4.2));
        // A stuck-high transducer trips the RMS alarm — exactly what
        // the hardware detector is for.
        assert!(c.alarm_states()[2].1, "stuck-high should alarm");
    }

    #[test]
    fn intermittent_sensor_drops_chunks() {
        let mut c = chain();
        c.fail_sensor(1, SensorFault::Intermittent).unwrap();
        let blocks = c.survey(&plant(), SimTime::ZERO);
        let b = &blocks[1].1;
        assert!(b[256..512].iter().all(|&x| x == 0.0), "odd chunk dropped");
        assert!(b[0..256].iter().any(|&x| x != 0.0), "even chunk alive");
    }

    #[test]
    fn bad_channel_index_is_an_error() {
        let mut c = chain();
        assert!(c.fail_sensor(99, SensorFault::Flatline).is_err());
        assert!(c.repair_sensor(99).is_err());
    }
}

//! The DC event scheduler (§5.8).
//!
//! "The DC software is coordinated by an event scheduler. It coordinates
//! standard vibration test\[s\] and including data acquisition and
//! communication of the results. In similar fashion, the scheduler
//! conducts wavelet and neural network testing and analysis, and state
//! based feature recognition routines to collect and analyze process
//! variables... the PDME or any other client can command the scheduler
//! to conduct another test and analysis routine."
//!
//! Periodic tasks hold a next-due time and re-arm on their period;
//! remote commands enqueue one-shot runs that fire on the next tick.

use mpros_core::{SimDuration, SimTime};
use std::collections::VecDeque;

/// The schedulable task types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Task {
    /// Full vibration survey + spectral analysis (DLI, WNN).
    VibrationSurvey,
    /// Process-variable sample (fuzzy logic input window).
    ProcessSample,
    /// One SBFR interpreter cycle over the slow channels.
    SbfrCycle,
}

impl Task {
    /// All task types.
    pub const ALL: [Task; 3] = [Task::VibrationSurvey, Task::ProcessSample, Task::SbfrCycle];
}

#[derive(Debug)]
struct Periodic {
    task: Task,
    period: SimDuration,
    next_due: SimTime,
}

/// The scheduler: periodic tasks plus an on-demand queue.
#[derive(Debug, Default)]
pub struct Scheduler {
    periodic: Vec<Periodic>,
    on_demand: VecDeque<Task>,
}

impl Scheduler {
    /// An empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or re-register) a periodic task, first due at `first`.
    pub fn schedule_periodic(&mut self, task: Task, period: SimDuration, first: SimTime) {
        self.periodic.retain(|p| p.task != task);
        self.periodic.push(Periodic {
            task,
            period,
            next_due: first,
        });
    }

    /// Enqueue a one-shot run (remote `RunTest` command).
    pub fn request(&mut self, task: Task) {
        self.on_demand.push_back(task);
    }

    /// The tasks due at `now`, in a deterministic order (on-demand
    /// first, then periodic in registration order). A periodic task
    /// fires at most once per call even if several periods elapsed —
    /// there is no point re-measuring the past — and re-arms at the
    /// first future multiple of its period.
    pub fn due(&mut self, now: SimTime) -> Vec<Task> {
        let mut out: Vec<Task> = self.on_demand.drain(..).collect();
        for p in &mut self.periodic {
            if p.next_due <= now {
                out.push(p.task);
                // Skip any missed periods.
                while p.next_due <= now {
                    p.next_due += p.period;
                }
            }
        }
        out
    }

    /// The next instant anything is due, if any periodic task exists.
    pub fn next_due(&self) -> Option<SimTime> {
        self.periodic
            .iter()
            .map(|p| p.next_due)
            .min_by(|a, b| a.partial_cmp(b).expect("times are finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn periodic_tasks_fire_on_schedule() {
        let mut s = Scheduler::new();
        s.schedule_periodic(Task::ProcessSample, SimDuration::from_secs(10.0), secs(0.0));
        assert_eq!(s.due(secs(0.0)), vec![Task::ProcessSample]);
        assert!(s.due(secs(5.0)).is_empty());
        assert_eq!(s.due(secs(10.0)), vec![Task::ProcessSample]);
        assert_eq!(s.due(secs(20.0)), vec![Task::ProcessSample]);
    }

    #[test]
    fn missed_periods_collapse_to_one_run() {
        let mut s = Scheduler::new();
        s.schedule_periodic(Task::SbfrCycle, SimDuration::from_secs(1.0), secs(0.0));
        s.due(secs(0.0));
        // 100 periods pass unobserved; one catch-up run, re-armed ahead.
        assert_eq!(s.due(secs(100.5)).len(), 1);
        assert!(s.due(secs(100.9)).is_empty());
        assert_eq!(s.due(secs(101.0)).len(), 1);
    }

    #[test]
    fn on_demand_runs_first_and_once() {
        let mut s = Scheduler::new();
        s.schedule_periodic(Task::ProcessSample, SimDuration::from_secs(10.0), secs(0.0));
        s.request(Task::VibrationSurvey);
        let due = s.due(secs(0.0));
        assert_eq!(due, vec![Task::VibrationSurvey, Task::ProcessSample]);
        assert!(s.due(secs(1.0)).is_empty(), "one-shot does not repeat");
    }

    #[test]
    fn rescheduling_replaces_the_old_entry() {
        let mut s = Scheduler::new();
        s.schedule_periodic(
            Task::VibrationSurvey,
            SimDuration::from_secs(100.0),
            secs(0.0),
        );
        s.schedule_periodic(
            Task::VibrationSurvey,
            SimDuration::from_secs(5.0),
            secs(2.0),
        );
        s.due(secs(2.0));
        assert_eq!(s.due(secs(7.0)), vec![Task::VibrationSurvey]);
        assert_eq!(s.periodic.len(), 1);
    }

    #[test]
    fn next_due_reports_earliest() {
        let mut s = Scheduler::new();
        assert_eq!(s.next_due(), None);
        s.schedule_periodic(
            Task::VibrationSurvey,
            SimDuration::from_secs(100.0),
            secs(50.0),
        );
        s.schedule_periodic(Task::ProcessSample, SimDuration::from_secs(10.0), secs(5.0));
        assert_eq!(s.next_due(), Some(secs(5.0)));
    }
}

//! Discrete Cosine Transform (DCT-II).
//!
//! §6.2 lists "DCT coefficients" among the WNN input features. The DCT-II
//! concentrates smooth signal energy into few coefficients, making it a
//! compact descriptor of spectral envelopes. Implemented directly
//! (O(n²)) — feature extraction uses short blocks (≤ a few hundred
//! coefficients), where the direct form is simpler and fast enough; the
//! property tests verify it against the orthonormal inverse.

use std::f64::consts::PI;

/// DCT-II of `signal`, with orthonormal scaling, returning `signal.len()`
/// coefficients.
pub fn dct2(signal: &[f64]) -> Vec<f64> {
    let n = signal.len();
    if n == 0 {
        return Vec::new();
    }
    let nf = n as f64;
    (0..n)
        .map(|k| {
            let mut acc = 0.0;
            for (i, &x) in signal.iter().enumerate() {
                acc += x * (PI / nf * (i as f64 + 0.5) * k as f64).cos();
            }
            let scale = if k == 0 {
                (1.0 / nf).sqrt()
            } else {
                (2.0 / nf).sqrt()
            };
            acc * scale
        })
        .collect()
}

/// Inverse of [`dct2`] (orthonormal DCT-III).
pub fn idct2(coeffs: &[f64]) -> Vec<f64> {
    let n = coeffs.len();
    if n == 0 {
        return Vec::new();
    }
    let nf = n as f64;
    (0..n)
        .map(|i| {
            let mut acc = coeffs[0] * (1.0 / nf).sqrt();
            for (k, &c) in coeffs.iter().enumerate().skip(1) {
                acc += c * (2.0 / nf).sqrt() * (PI / nf * (i as f64 + 0.5) * k as f64).cos();
            }
            acc
        })
        .collect()
}

/// The first `count` DCT coefficients — the compact feature form used by
/// the WNN feature vector. Computes only the requested coefficients
/// (O(n·count)), so large acquisition blocks stay cheap.
pub fn dct_features(signal: &[f64], count: usize) -> Vec<f64> {
    let mut out = Vec::with_capacity(count.min(signal.len()));
    dct_features_into(signal, count, &mut out);
    out
}

/// [`dct_features`] appending into a caller-provided buffer — the
/// zero-allocation form used by the DSP execution context's feature
/// path. Produces values bit-identical to [`dct_features`].
pub fn dct_features_into(signal: &[f64], count: usize, out: &mut Vec<f64>) {
    let n = signal.len();
    if n == 0 || count == 0 {
        return;
    }
    let nf = n as f64;
    for k in 0..count.min(n) {
        let mut acc = 0.0;
        for (i, &x) in signal.iter().enumerate() {
            acc += x * (PI / nf * (i as f64 + 0.5) * k as f64).cos();
        }
        let scale = if k == 0 {
            (1.0 / nf).sqrt()
        } else {
            (2.0 / nf).sqrt()
        };
        out.push(acc * scale);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn constant_signal_concentrates_in_dc() {
        let c = dct2(&[2.0; 16]);
        assert!((c[0] - 2.0 * 4.0).abs() < 1e-12); // 2·√16
        for &x in &c[1..] {
            assert!(x.abs() < 1e-12);
        }
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(dct2(&[]).is_empty());
        assert!(idct2(&[]).is_empty());
    }

    #[test]
    fn features_truncate() {
        let f = dct_features(&[1.0; 32], 5);
        assert_eq!(f.len(), 5);
    }

    #[test]
    fn energy_preserved_orthonormal() {
        let sig: Vec<f64> = (0..32).map(|i| (i as f64 * 0.3).sin()).collect();
        let c = dct2(&sig);
        let e_t: f64 = sig.iter().map(|x| x * x).sum();
        let e_c: f64 = c.iter().map(|x| x * x).sum();
        assert!((e_t - e_c).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn roundtrip(sig in proptest::collection::vec(-50.0..50.0f64, 1..64)) {
            let back = idct2(&dct2(&sig));
            for (a, b) in sig.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-8);
            }
        }

        #[test]
        fn linearity(
            a in proptest::collection::vec(-10.0..10.0f64, 16..=16),
            b in proptest::collection::vec(-10.0..10.0f64, 16..=16)
        ) {
            let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            let (ca, cb, cs) = (dct2(&a), dct2(&b), dct2(&sum));
            for i in 0..16 {
                prop_assert!((ca[i] + cb[i] - cs[i]).abs() < 1e-9);
            }
        }
    }
}

#[cfg(test)]
mod feature_tests {
    use super::*;

    #[test]
    fn dct_features_match_full_transform_prefix() {
        let sig: Vec<f64> = (0..128).map(|i| (i as f64 * 0.21).sin()).collect();
        let full = dct2(&sig);
        let fast = dct_features(&sig, 10);
        assert_eq!(fast.len(), 10);
        for (a, b) in fast.iter().zip(&full) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn dct_features_edge_cases() {
        assert!(dct_features(&[], 5).is_empty());
        assert!(dct_features(&[1.0, 2.0], 0).is_empty());
        assert_eq!(dct_features(&[1.0, 2.0], 10).len(), 2, "capped at n");
    }
}

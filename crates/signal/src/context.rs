//! The reusable DSP execution context: cached FFT plans, cached window
//! tables, and a scratch arena of preallocated buffers behind
//! `*_into`-style APIs.
//!
//! §8.1 sizes the DC pipeline at "millions of data points per second";
//! at that rate, rebuilding twiddle/bit-reversal tables and allocating
//! fresh `Vec`s per [`crate::Spectrum`], cepstrum or DWT pass is the
//! dominant cost. A [`DspContext`] amortizes all of it:
//!
//! * **Plan cache** — one [`FftPlan`] per transform size, built once and
//!   shared via `Arc` (cloning an `Arc` is allocation-free).
//! * **Window cache** — materialized coefficient tables plus the
//!   coherent gain per `(window, size)`, replacing the per-sample
//!   `coefficient()` calls and the per-call `coherent_gain()` vector.
//! * **Scratch arena** — [`DspScratch`]: windowed-input, spectrum,
//!   real-valued and DWT ping-pong buffers that are cleared (capacity
//!   retained) and refilled on every call.
//!
//! Every `*_into` operation produces results **bit-identical** to its
//! allocating counterpart (`fft_real`, `ifft_real`,
//! [`crate::Spectrum::compute`], `real_cepstrum`, `hilbert_envelope`,
//! `bandpass_envelope`, [`crate::features::FeatureVector::extract`]):
//! the floating-point operations and their order are unchanged, only the
//! storage is recycled. That property is what lets the per-DC context
//! ride inside the deterministic simulation without perturbing a single
//! fingerprint.

use crate::cepstrum::{dominant_quefrency, LOG_FLOOR};
use crate::dct::dct_features_into;
use crate::features::{FeatureConfig, FeatureVector, WaveformStats};
use crate::fft::{Complex, FftPlan};
use crate::spectrum::Spectrum;
use crate::window::Window;
use mpros_core::{Error, Result};
use std::collections::HashMap;
use std::sync::Arc;

/// Counters describing how much work a [`DspContext`] has avoided.
///
/// All fields are monotone over the context's lifetime; consumers
/// publish deltas to telemetry. Because scratch growth follows the
/// deterministic call sequence, these counters are themselves
/// deterministic and reproduce exactly across execution modes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DspStats {
    /// FFT plans built and cached (one per distinct size).
    pub plans_created: u64,
    /// FFT plan cache hits (transforms that skipped table construction).
    pub plan_hits: u64,
    /// Window tables built and cached (one per distinct window/size).
    pub windows_created: u64,
    /// Buffer preparations that reused existing capacity instead of
    /// allocating.
    pub scratch_reuses: u64,
    /// Bytes of buffer storage those reuses avoided allocating.
    pub bytes_avoided: u64,
}

/// A cached window: materialized coefficients plus the coherent gain.
#[derive(Debug, Clone)]
struct WindowTable {
    coeffs: Vec<f64>,
    /// Mean coefficient, computed with the same summation order as
    /// [`Window::coherent_gain`] (hence bit-identical to it).
    gain: f64,
}

/// Plan and window caches keyed by transform size.
#[derive(Debug, Default)]
struct DspCache {
    plans: HashMap<usize, Arc<FftPlan>>,
    windows: HashMap<(Window, usize), WindowTable>,
}

impl DspCache {
    fn plan(&mut self, n: usize, stats: &mut DspStats) -> Result<Arc<FftPlan>> {
        if let Some(plan) = self.plans.get(&n) {
            stats.plan_hits += 1;
            return Ok(Arc::clone(plan));
        }
        let plan = Arc::new(FftPlan::new(n)?);
        stats.plans_created += 1;
        self.plans.insert(n, Arc::clone(&plan));
        Ok(plan)
    }

    fn window<'a>(&'a mut self, window: Window, n: usize, stats: &mut DspStats) -> &'a WindowTable {
        self.windows.entry((window, n)).or_insert_with(|| {
            stats.windows_created += 1;
            let coeffs = window.coefficients(n);
            let gain = coeffs.iter().sum::<f64>() / n as f64;
            WindowTable { coeffs, gain }
        })
    }
}

/// The scratch arena: preallocated working buffers reused across calls.
///
/// Private to the context — callers never see intermediate state, they
/// only provide the *output* buffers of each `*_into` call.
#[derive(Debug, Default)]
pub struct DspScratch {
    /// Windowed input samples for spectrum computation.
    windowed: Vec<f64>,
    /// Primary frequency-domain buffer.
    freq: Vec<Complex>,
    /// Secondary frequency-domain buffer (inverse-transform output).
    freq2: Vec<Complex>,
    /// Real-valued stage buffer (band-passed signal, AC-coupled
    /// envelope).
    real_a: Vec<f64>,
    /// Second real-valued stage buffer (envelope).
    real_b: Vec<f64>,
    /// Cepstrum workspace for feature extraction.
    cep: Vec<f64>,
    /// Reusable multi-level DWT pyramid.
    dwt: crate::dwt::MultiLevelDwt,
}

/// A reusable DSP execution context (see the module docs).
///
/// One context serves one thread of execution — in MPROS, each data
/// concentrator owns one across sim steps, so the parallel engine's
/// per-worker stepping reuses exactly the state the sequential engine
/// would.
#[derive(Debug, Default)]
pub struct DspContext {
    cache: DspCache,
    scratch: DspScratch,
    stats: DspStats,
}

/// Count a buffer preparation: a reuse if capacity already suffices.
fn prep_f64(stats: &mut DspStats, buf: &mut Vec<f64>, n: usize) {
    if n > 0 && buf.capacity() >= n {
        stats.scratch_reuses += 1;
        stats.bytes_avoided += (n * std::mem::size_of::<f64>()) as u64;
    }
    buf.clear();
}

/// Count a complex-buffer preparation: a reuse if capacity suffices.
fn prep_complex(stats: &mut DspStats, buf: &mut Vec<Complex>, n: usize) {
    if n > 0 && buf.capacity() >= n {
        stats.scratch_reuses += 1;
        stats.bytes_avoided += (n * std::mem::size_of::<Complex>()) as u64;
    }
    buf.clear();
}

/// Fill `out` with the real cepstrum of `signal` (mirror of
/// `real_cepstrum`).
fn cepstrum_fill(
    plan: &FftPlan,
    signal: &[f64],
    freq: &mut Vec<Complex>,
    work: &mut Vec<Complex>,
    out: &mut Vec<f64>,
) -> Result<()> {
    plan.forward_real_into(signal, freq)?;
    for z in freq.iter_mut() {
        *z = Complex::real(z.abs().max(LOG_FLOOR).ln());
    }
    plan.inverse_into(freq, work)?;
    out.extend(work.iter().map(|z| z.re));
    Ok(())
}

/// Fill `out` with the Hilbert envelope of `signal` (mirror of
/// `hilbert_envelope`).
fn hilbert_fill(
    plan: &FftPlan,
    signal: &[f64],
    freq: &mut Vec<Complex>,
    work: &mut Vec<Complex>,
    out: &mut Vec<f64>,
) -> Result<()> {
    plan.forward_real_into(signal, freq)?;
    let half = plan.len() / 2;
    for (k, z) in freq.iter_mut().enumerate() {
        if k == 0 || k == half {
            // unchanged
        } else if k < half {
            *z = z.scale(2.0);
        } else {
            *z = Complex::ZERO;
        }
    }
    plan.inverse_into(freq, work)?;
    out.extend(work.iter().map(|z| z.abs()));
    Ok(())
}

/// Fill `filtered` with `signal` brick-wall band-passed to
/// `[lo_hz, hi_hz]` (mirror of the filter half of `bandpass_envelope`).
#[allow(clippy::too_many_arguments)]
fn bandpass_fill(
    plan: &FftPlan,
    signal: &[f64],
    sample_rate: f64,
    lo_hz: f64,
    hi_hz: f64,
    freq: &mut Vec<Complex>,
    work: &mut Vec<Complex>,
    filtered: &mut Vec<f64>,
) -> Result<()> {
    plan.forward_real_into(signal, freq)?;
    let n = plan.len();
    let df = sample_rate / n as f64;
    let half = n / 2;
    for (k, z) in freq.iter_mut().enumerate() {
        // Frequency of bin k (mirrored for the upper half).
        let f = if k <= half {
            k as f64 * df
        } else {
            (n - k) as f64 * df
        };
        if f < lo_hz || f > hi_hz {
            *z = Complex::ZERO;
        }
    }
    plan.inverse_into(freq, work)?;
    filtered.extend(work.iter().map(|z| z.re));
    Ok(())
}

/// Fill `out` from an already-windowed block (mirror of the
/// normalization half of [`Spectrum::compute`]).
fn spectrum_fill(
    plan: &FftPlan,
    windowed: &[f64],
    gain: f64,
    sample_rate: f64,
    freq: &mut Vec<Complex>,
    out: &mut Spectrum,
) -> Result<()> {
    plan.forward_real_into(windowed, freq)?;
    let n = plan.len();
    let half = n / 2;
    let norm = 1.0 / (n as f64 * gain);
    out.amplitudes.push(freq[0].abs() * norm);
    for z in freq.iter().take(half).skip(1) {
        out.amplitudes.push(2.0 * z.abs() * norm);
    }
    out.amplitudes.push(freq[half].abs() * norm);
    out.df = sample_rate / n as f64;
    out.sample_rate = sample_rate;
    Ok(())
}

impl DspContext {
    /// An empty context; caches and scratch grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// A snapshot of the context's avoidance counters.
    pub fn stats(&self) -> DspStats {
        self.stats
    }

    /// The cached [`FftPlan`] for size `n`, building it on first
    /// request. Cloning the returned `Arc` is allocation-free.
    pub fn plan(&mut self, n: usize) -> Result<Arc<FftPlan>> {
        self.cache.plan(n, &mut self.stats)
    }

    /// Forward FFT of a real signal into `out`. Bit-identical to
    /// [`crate::fft::fft_real`], allocation-free once `out` has
    /// capacity.
    pub fn fft_real_into(&mut self, signal: &[f64], out: &mut Vec<Complex>) -> Result<()> {
        let plan = self.plan(signal.len())?;
        prep_complex(&mut self.stats, out, signal.len());
        plan.forward_real_into(signal, out)
    }

    /// Inverse FFT of a conjugate-symmetric spectrum into `out` (real
    /// parts). Bit-identical to [`crate::fft::ifft_real`].
    pub fn ifft_real_into(&mut self, spectrum: &[Complex], out: &mut Vec<f64>) -> Result<()> {
        let plan = self.plan(spectrum.len())?;
        let n = spectrum.len();
        prep_complex(&mut self.stats, &mut self.scratch.freq2, n);
        plan.inverse_into(spectrum, &mut self.scratch.freq2)?;
        prep_f64(&mut self.stats, out, n);
        out.extend(self.scratch.freq2.iter().map(|z| z.re));
        Ok(())
    }

    /// Windowed single-sided amplitude spectrum of `block` into `out`.
    /// Bit-identical to [`Spectrum::compute`].
    pub fn spectrum_into(
        &mut self,
        block: &[f64],
        sample_rate: f64,
        window: Window,
        out: &mut Spectrum,
    ) -> Result<()> {
        if sample_rate <= 0.0 {
            return Err(Error::invalid("sample rate must be positive"));
        }
        let n = block.len();
        let plan = self.plan(n)?;
        let table = self.cache.window(window, n, &mut self.stats);
        let scratch = &mut self.scratch;
        let stats = &mut self.stats;
        prep_f64(stats, &mut scratch.windowed, n);
        scratch
            .windowed
            .extend(block.iter().zip(&table.coeffs).map(|(&x, &w)| x * w));
        prep_complex(stats, &mut scratch.freq, n);
        prep_f64(stats, &mut out.amplitudes, n / 2 + 1);
        spectrum_fill(
            &plan,
            &scratch.windowed,
            table.gain,
            sample_rate,
            &mut scratch.freq,
            out,
        )
    }

    /// Real cepstrum of `signal` into `out`. Bit-identical to
    /// [`crate::cepstrum::real_cepstrum`].
    pub fn cepstrum_into(&mut self, signal: &[f64], out: &mut Vec<f64>) -> Result<()> {
        let plan = self.plan(signal.len())?;
        let n = signal.len();
        let scratch = &mut self.scratch;
        let stats = &mut self.stats;
        prep_complex(stats, &mut scratch.freq, n);
        prep_complex(stats, &mut scratch.freq2, n);
        prep_f64(stats, out, n);
        cepstrum_fill(&plan, signal, &mut scratch.freq, &mut scratch.freq2, out)
    }

    /// Hilbert (analytic-signal) envelope of `signal` into `out`.
    /// Bit-identical to [`crate::envelope::hilbert_envelope`].
    pub fn hilbert_envelope_into(&mut self, signal: &[f64], out: &mut Vec<f64>) -> Result<()> {
        let plan = self.plan(signal.len())?;
        let n = signal.len();
        let scratch = &mut self.scratch;
        let stats = &mut self.stats;
        prep_complex(stats, &mut scratch.freq, n);
        prep_complex(stats, &mut scratch.freq2, n);
        prep_f64(stats, out, n);
        hilbert_fill(&plan, signal, &mut scratch.freq, &mut scratch.freq2, out)
    }

    /// Brick-wall band-pass to `[lo_hz, hi_hz]` followed by the Hilbert
    /// envelope, into `out`. Bit-identical to
    /// [`crate::envelope::bandpass_envelope`].
    pub fn bandpass_envelope_into(
        &mut self,
        signal: &[f64],
        sample_rate: f64,
        lo_hz: f64,
        hi_hz: f64,
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let plan = self.plan(signal.len())?;
        let n = signal.len();
        let scratch = &mut self.scratch;
        let stats = &mut self.stats;
        prep_complex(stats, &mut scratch.freq, n);
        prep_complex(stats, &mut scratch.freq2, n);
        prep_f64(stats, &mut scratch.real_a, n);
        bandpass_fill(
            &plan,
            signal,
            sample_rate,
            lo_hz,
            hi_hz,
            &mut scratch.freq,
            &mut scratch.freq2,
            &mut scratch.real_a,
        )?;
        prep_complex(stats, &mut scratch.freq, n);
        prep_complex(stats, &mut scratch.freq2, n);
        prep_f64(stats, out, n);
        hilbert_fill(
            &plan,
            &scratch.real_a,
            &mut scratch.freq,
            &mut scratch.freq2,
            out,
        )
    }

    /// The bearing-demodulation chain fused end to end: band-pass
    /// envelope of `block`, mean (DC) removal, then the windowed
    /// spectrum of the AC-coupled envelope into `out`. Matches the
    /// arithmetic of running [`crate::envelope::bandpass_envelope`],
    /// subtracting the mean, and calling [`Spectrum::compute`].
    #[allow(clippy::too_many_arguments)]
    pub fn envelope_spectrum_into(
        &mut self,
        block: &[f64],
        sample_rate: f64,
        lo_hz: f64,
        hi_hz: f64,
        window: Window,
        out: &mut Spectrum,
    ) -> Result<()> {
        if sample_rate <= 0.0 {
            return Err(Error::invalid("sample rate must be positive"));
        }
        let n = block.len();
        let plan = self.plan(n)?;
        {
            let scratch = &mut self.scratch;
            let stats = &mut self.stats;
            prep_complex(stats, &mut scratch.freq, n);
            prep_complex(stats, &mut scratch.freq2, n);
            prep_f64(stats, &mut scratch.real_a, n);
            bandpass_fill(
                &plan,
                block,
                sample_rate,
                lo_hz,
                hi_hz,
                &mut scratch.freq,
                &mut scratch.freq2,
                &mut scratch.real_a,
            )?;
            prep_complex(stats, &mut scratch.freq, n);
            prep_complex(stats, &mut scratch.freq2, n);
            prep_f64(stats, &mut scratch.real_b, n);
            hilbert_fill(
                &plan,
                &scratch.real_a,
                &mut scratch.freq,
                &mut scratch.freq2,
                &mut scratch.real_b,
            )?;
            // AC-couple the envelope: subtract its mean.
            let mean = scratch.real_b.iter().sum::<f64>() / scratch.real_b.len() as f64;
            prep_f64(stats, &mut scratch.real_a, n);
            let (real_a, real_b) = (&mut scratch.real_a, &scratch.real_b);
            real_a.extend(real_b.iter().map(|e| e - mean));
        }
        // Spectrum of the AC-coupled envelope (same window path as
        // `spectrum_into`).
        let table = self.cache.window(window, n, &mut self.stats);
        let scratch = &mut self.scratch;
        let stats = &mut self.stats;
        prep_f64(stats, &mut scratch.windowed, n);
        scratch.windowed.extend(
            scratch
                .real_a
                .iter()
                .zip(&table.coeffs)
                .map(|(&x, &w)| x * w),
        );
        prep_complex(stats, &mut scratch.freq, n);
        prep_f64(stats, &mut out.amplitudes, n / 2 + 1);
        spectrum_fill(
            &plan,
            &scratch.windowed,
            table.gain,
            sample_rate,
            &mut scratch.freq,
            out,
        )
    }

    /// Append the §6.2 feature values of `block` (plus `process_scalars`)
    /// to `out`, in the exact layout of
    /// [`FeatureVector::extract`]. Appending (rather than clearing)
    /// lets the WNN concatenate per-channel features into one flat
    /// vector without intermediate storage. On error `out` may hold a
    /// partial prefix.
    pub fn feature_values_into(
        &mut self,
        block: &[f64],
        config: &FeatureConfig,
        process_scalars: &[f64],
        out: &mut Vec<f64>,
    ) -> Result<()> {
        let stats = WaveformStats::of(block);
        let plan = self.plan(block.len())?;
        let n = block.len();
        {
            let scratch = &mut self.scratch;
            let st = &mut self.stats;
            prep_complex(st, &mut scratch.freq, n);
            prep_complex(st, &mut scratch.freq2, n);
            prep_f64(st, &mut scratch.cep, n);
            cepstrum_fill(
                &plan,
                block,
                &mut scratch.freq,
                &mut scratch.freq2,
                &mut scratch.cep,
            )?;
        }
        let cep = &self.scratch.cep;
        let max_q = n / 2;
        let q = dominant_quefrency(cep, 2, max_q).unwrap_or(0);
        let cep_peak = cep.get(q).copied().unwrap_or(0.0);
        out.extend_from_slice(&[
            stats.mean,
            stats.rms,
            stats.peak,
            stats.std_dev,
            stats.crest_factor,
            stats.kurtosis,
            stats.skewness,
        ]);
        out.push(q as f64 / n as f64); // normalized quefrency
        out.push(cep_peak);
        dct_features_into(block, config.dct_coefficients, out);
        self.scratch
            .dwt
            .analyze_into(block, config.wavelet, config.wavelet_levels)?;
        self.scratch.dwt.energy_map_into(out);
        out.extend_from_slice(process_scalars);
        Ok(())
    }

    /// Refill `out` with the §6.2 feature vector of `block`.
    /// Bit-identical to [`FeatureVector::extract`].
    pub fn feature_vector_into(
        &mut self,
        block: &[f64],
        config: &FeatureConfig,
        process_scalars: &[f64],
        out: &mut FeatureVector,
    ) -> Result<()> {
        prep_f64(
            &mut self.stats,
            &mut out.values,
            FeatureVector::dimension(config, process_scalars.len()),
        );
        self.feature_values_into(block, config, process_scalars, &mut out.values)
    }
}

//! Real cepstrum.
//!
//! §6.2 lists the cepstrum among the WNN's input features. The real
//! cepstrum `c[q] = IFFT(log |FFT(x)|)` maps families of harmonics and
//! sidebands — the signature of gear wear and rotor-bar faults — onto
//! single peaks at the corresponding *quefrency* (period).

use crate::fft::{Complex, FftPlan};
use mpros_core::Result;

/// Floor applied inside the log to avoid `log(0)` (shared with the
/// zero-allocation cepstrum path in [`crate::context`]).
pub(crate) const LOG_FLOOR: f64 = 1e-12;

/// Compute the real cepstrum of `signal` (power-of-two length).
/// Returns `n` quefrency coefficients; index `q` corresponds to a period
/// of `q / sample_rate` seconds.
pub fn real_cepstrum(signal: &[f64]) -> Result<Vec<f64>> {
    let n = signal.len();
    let plan = FftPlan::new(n)?;
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::real(x)).collect();
    plan.forward(&mut buf)?;
    for z in buf.iter_mut() {
        *z = Complex::real(z.abs().max(LOG_FLOOR).ln());
    }
    plan.inverse(&mut buf)?;
    Ok(buf.into_iter().map(|z| z.re).collect())
}

/// The quefrency (in samples) of the largest cepstral peak within
/// `[min_q, max_q]`, or `None` if the range is empty. Used to detect
/// harmonic families with unknown fundamental.
pub fn dominant_quefrency(cepstrum: &[f64], min_q: usize, max_q: usize) -> Option<usize> {
    let hi = max_q.min(cepstrum.len().saturating_sub(1));
    if min_q > hi {
        return None;
    }
    (min_q..=hi).max_by(|&a, &b| {
        cepstrum[a]
            .partial_cmp(&cepstrum[b])
            .expect("cepstrum values are finite")
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn harmonic_family_peaks_at_fundamental_period() {
        let fs = 4096.0;
        let n = 4096;
        let f0 = 64.0; // period = 64 samples
        let mut sig = vec![0.0; n];
        for h in 1..=8 {
            for (i, s) in sig.iter_mut().enumerate() {
                *s += (1.0 / h as f64) * (2.0 * PI * f0 * h as f64 * i as f64 / fs).sin();
            }
        }
        let cep = real_cepstrum(&sig).unwrap();
        let period = (fs / f0) as usize;
        // Rahmonics appear at integer multiples of the fundamental
        // period; the dominant one must be such a multiple.
        let q = dominant_quefrency(&cep, 16, 512).unwrap();
        let nearest_multiple = ((q as f64 / period as f64).round() as i64).max(1) * period as i64;
        assert!(
            (q as i64 - nearest_multiple).unsigned_abs() <= 3,
            "quefrency {q} is not a rahmonic of period {period}"
        );
        // And within the first-rahmonic search range the fundamental wins.
        let q1 = dominant_quefrency(&cep, 16, period + period / 2).unwrap();
        assert!(
            (q1 as i64 - period as i64).unsigned_abs() <= 3,
            "fundamental quefrency {q1}, expected ~{period}"
        );
    }

    #[test]
    fn white_ish_signal_has_no_strong_quefrency_peak() {
        // Single tone: cepstrum away from zero-quefrency stays small
        // relative to a harmonic-rich signal.
        let fs = 2048.0;
        let n = 2048;
        let sig: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 100.0 * i as f64 / fs).sin())
            .collect();
        let cep = real_cepstrum(&sig).unwrap();
        let q = dominant_quefrency(&cep, 8, 512).unwrap();
        // Peak exists but is weak.
        assert!(cep[q].abs() < 1.0);
    }

    #[test]
    fn zero_signal_is_handled() {
        let cep = real_cepstrum(&[0.0; 256]).unwrap();
        assert_eq!(cep.len(), 256);
        assert!(cep.iter().all(|c| c.is_finite()));
    }

    #[test]
    fn empty_range_returns_none() {
        let cep = vec![0.0; 16];
        assert_eq!(dominant_quefrency(&cep, 20, 30), None);
        assert_eq!(dominant_quefrency(&cep, 10, 5), None);
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(real_cepstrum(&[0.0; 100]).is_err());
    }
}

//! Complex numbers and the radix-2 Cooley–Tukey FFT.
//!
//! Implemented from scratch (no external numerics crates): an iterative
//! in-place decimation-in-time FFT with bit-reversal permutation and
//! precomputable twiddle tables. Sizes must be powers of two, which is
//! what the DC's spectrum analyzer card produces anyway.

use mpros_core::{Error, Result};
use std::f64::consts::PI;
use std::ops::{Add, AddAssign, Mul, Neg, Sub};

/// A complex number over `f64`.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Construct from real and imaginary parts.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// A purely real value.
    pub const fn real(re: f64) -> Self {
        Complex { re, im: 0.0 }
    }

    /// `e^{iθ}`.
    pub fn cis(theta: f64) -> Self {
        Complex {
            re: theta.cos(),
            im: theta.sin(),
        }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²` (no square root; preferred in hot loops).
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Complex conjugate.
    pub fn conj(self) -> Self {
        Complex {
            re: self.re,
            im: -self.im,
        }
    }

    /// Argument (phase) in radians.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Scale by a real factor.
    pub fn scale(self, k: f64) -> Self {
        Complex {
            re: self.re * k,
            im: self.im * k,
        }
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl AddAssign for Complex {
    fn add_assign(&mut self, rhs: Complex) {
        self.re += rhs.re;
        self.im += rhs.im;
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// A reusable FFT plan for a fixed power-of-two size.
///
/// Precomputes the bit-reversal permutation and twiddle factors once; the
/// DC pipeline runs thousands of transforms per second at a fixed block
/// size, so plan reuse keeps the hot path allocation-free.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    log2n: u32,
    /// Twiddles for each butterfly stage, forward direction.
    twiddles: Vec<Complex>,
    bitrev: Vec<u32>,
}

impl FftPlan {
    /// Create a plan for transforms of length `n` (power of two, ≥ 2).
    pub fn new(n: usize) -> Result<Self> {
        if n < 2 || !n.is_power_of_two() {
            return Err(Error::invalid(format!(
                "FFT size must be a power of two >= 2, got {n}"
            )));
        }
        let log2n = n.trailing_zeros();
        // Stage s (len = 2^s) uses twiddles w^j for j in 0..len/2 with
        // w = e^{-2πi/len}; store them contiguously per stage.
        let mut twiddles = Vec::with_capacity(n - 1);
        let mut len = 2usize;
        while len <= n {
            let half = len / 2;
            for j in 0..half {
                twiddles.push(Complex::cis(-2.0 * PI * j as f64 / len as f64));
            }
            len <<= 1;
        }
        let mut bitrev = vec![0u32; n];
        for (i, r) in bitrev.iter_mut().enumerate() {
            *r = (i as u32).reverse_bits() >> (32 - log2n);
        }
        Ok(FftPlan {
            n,
            log2n,
            twiddles,
            bitrev,
        })
    }

    /// The transform length.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the plan length is zero (never: plans are ≥ 2; provided for
    /// API completeness).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT.
    pub fn forward(&self, data: &mut [Complex]) -> Result<()> {
        self.transform(data, false)
    }

    /// In-place inverse FFT (including the 1/n normalization).
    pub fn inverse(&self, data: &mut [Complex]) -> Result<()> {
        self.transform(data, true)?;
        let inv = 1.0 / self.n as f64;
        for z in data.iter_mut() {
            *z = z.scale(inv);
        }
        Ok(())
    }

    /// Out-of-place forward FFT of a real signal into a caller-provided
    /// buffer. `dst` is cleared and refilled; with sufficient capacity
    /// this performs **zero allocations**, which is what the DC's
    /// steady-state survey loop relies on. Bit-identical to
    /// [`fft_real`]: the bit-reversal permutation is an involution, so
    /// scattering `signal[bitrev[i]]` into slot `i` produces exactly the
    /// buffer the in-place swap pass would.
    pub fn forward_real_into(&self, signal: &[f64], dst: &mut Vec<Complex>) -> Result<()> {
        if signal.len() != self.n {
            return Err(Error::invalid(format!(
                "buffer length {} does not match plan size {}",
                signal.len(),
                self.n
            )));
        }
        dst.clear();
        dst.extend(
            self.bitrev
                .iter()
                .map(|&r| Complex::real(signal[r as usize])),
        );
        self.butterflies(dst, false);
        Ok(())
    }

    /// Out-of-place inverse FFT (including the 1/n normalization) into a
    /// caller-provided buffer, leaving `spectrum` untouched. `dst` is
    /// cleared and refilled; with sufficient capacity this performs zero
    /// allocations. Bit-identical to copying the spectrum and calling
    /// [`FftPlan::inverse`].
    pub fn inverse_into(&self, spectrum: &[Complex], dst: &mut Vec<Complex>) -> Result<()> {
        if spectrum.len() != self.n {
            return Err(Error::invalid(format!(
                "buffer length {} does not match plan size {}",
                spectrum.len(),
                self.n
            )));
        }
        dst.clear();
        dst.extend(self.bitrev.iter().map(|&r| spectrum[r as usize]));
        self.butterflies(dst, true);
        let inv = 1.0 / self.n as f64;
        for z in dst.iter_mut() {
            *z = z.scale(inv);
        }
        Ok(())
    }

    fn transform(&self, data: &mut [Complex], inverse: bool) -> Result<()> {
        if data.len() != self.n {
            return Err(Error::invalid(format!(
                "buffer length {} does not match plan size {}",
                data.len(),
                self.n
            )));
        }
        // Bit-reversal permutation.
        for i in 0..self.n {
            let j = self.bitrev[i] as usize;
            if i < j {
                data.swap(i, j);
            }
        }
        self.butterflies(data, inverse);
        Ok(())
    }

    /// Iterative radix-2 butterflies over an already bit-reversed buffer
    /// of exactly `self.n` elements.
    fn butterflies(&self, data: &mut [Complex], inverse: bool) {
        let mut stage_base = 0usize;
        for s in 1..=self.log2n {
            let len = 1usize << s;
            let half = len / 2;
            let stage = &self.twiddles[stage_base..stage_base + half];
            let mut start = 0;
            while start < self.n {
                for j in 0..half {
                    let w = if inverse { stage[j].conj() } else { stage[j] };
                    let a = data[start + j];
                    let b = data[start + j + half] * w;
                    data[start + j] = a + b;
                    data[start + j + half] = a - b;
                }
                start += len;
            }
            stage_base += half;
        }
    }
}

/// Forward FFT of a real signal; returns the full complex spectrum.
/// Convenience wrapper that builds a one-shot plan.
pub fn fft_real(signal: &[f64]) -> Result<Vec<Complex>> {
    let plan = FftPlan::new(signal.len())?;
    let mut buf = Vec::with_capacity(signal.len());
    plan.forward_real_into(signal, &mut buf)?;
    Ok(buf)
}

/// Inverse FFT returning only real parts (caller asserts the spectrum is
/// conjugate-symmetric, as spectra of real signals are). Transforms
/// out-of-place via [`FftPlan::inverse_into`] rather than cloning the
/// input spectrum into a mutable working copy first.
pub fn ifft_real(spectrum: &[Complex]) -> Result<Vec<f64>> {
    let plan = FftPlan::new(spectrum.len())?;
    let mut work = Vec::with_capacity(spectrum.len());
    plan.inverse_into(spectrum, &mut work)?;
    Ok(work.iter().map(|z| z.re).collect())
}

/// Naive O(n²) DFT used as a test oracle for the FFT.
#[doc(hidden)]
pub fn dft_reference(data: &[Complex]) -> Vec<Complex> {
    let n = data.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (j, &x) in data.iter().enumerate() {
                acc += x * Complex::cis(-2.0 * PI * (k * j) as f64 / n as f64);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn assert_close(a: Complex, b: Complex, tol: f64) {
        assert!(
            (a - b).abs() <= tol,
            "expected {b:?}, got {a:?} (tol {tol})"
        );
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(FftPlan::new(0).is_err());
        assert!(FftPlan::new(1).is_err());
        assert!(FftPlan::new(3).is_err());
        assert!(FftPlan::new(100).is_err());
        assert!(FftPlan::new(128).is_ok());
    }

    #[test]
    fn rejects_mismatched_buffer() {
        let plan = FftPlan::new(8).unwrap();
        let mut buf = vec![Complex::ZERO; 4];
        assert!(plan.forward(&mut buf).is_err());
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut data = vec![Complex::ZERO; 8];
        data[0] = Complex::ONE;
        FftPlan::new(8).unwrap().forward(&mut data).unwrap();
        for z in data {
            assert_close(z, Complex::ONE, 1e-12);
        }
    }

    #[test]
    fn dc_signal_concentrates_in_bin_zero() {
        let mut data = vec![Complex::real(2.5); 16];
        FftPlan::new(16).unwrap().forward(&mut data).unwrap();
        assert_close(data[0], Complex::real(40.0), 1e-9);
        for z in &data[1..] {
            assert!(z.abs() < 1e-9);
        }
    }

    #[test]
    fn pure_tone_lands_in_its_bin() {
        let n = 64;
        let k = 5;
        let signal: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * k as f64 * i as f64 / n as f64).cos())
            .collect();
        let spec = fft_real(&signal).unwrap();
        // cos splits into bins k and n-k with magnitude n/2 each.
        assert!((spec[k].abs() - n as f64 / 2.0).abs() < 1e-9);
        assert!((spec[n - k].abs() - n as f64 / 2.0).abs() < 1e-9);
        for (i, z) in spec.iter().enumerate() {
            if i != k && i != n - k {
                assert!(z.abs() < 1e-8, "leakage at bin {i}: {}", z.abs());
            }
        }
    }

    #[test]
    fn matches_naive_dft() {
        let n = 32;
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        let mut fast = data.clone();
        FftPlan::new(n).unwrap().forward(&mut fast).unwrap();
        let slow = dft_reference(&data);
        for (a, b) in fast.iter().zip(&slow) {
            assert_close(*a, *b, 1e-9);
        }
    }

    #[test]
    fn plan_is_reusable() {
        let plan = FftPlan::new(16).unwrap();
        for trial in 0..3 {
            let mut data: Vec<Complex> =
                (0..16).map(|i| Complex::real((i + trial) as f64)).collect();
            let expect = dft_reference(&data);
            plan.forward(&mut data).unwrap();
            for (a, b) in data.iter().zip(&expect) {
                assert_close(*a, *b, 1e-9);
            }
        }
    }

    #[test]
    fn complex_arithmetic_identities() {
        let z = Complex::new(3.0, -4.0);
        assert_eq!(z.abs(), 5.0);
        assert_eq!(z.norm_sq(), 25.0);
        assert_eq!(z.conj().im, 4.0);
        assert_close(z * Complex::ONE, z, 0.0);
        assert_close(z + (-z), Complex::ZERO, 0.0);
        assert!((Complex::cis(PI / 2.0) - Complex::new(0.0, 1.0)).abs() < 1e-15);
    }

    proptest! {
        #[test]
        fn forward_inverse_roundtrip(
            raw in proptest::collection::vec(-100.0..100.0f64, 8..=8)
        ) {
            let spec = fft_real(&raw).unwrap();
            let back = ifft_real(&spec).unwrap();
            for (a, b) in raw.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-9);
            }
        }

        #[test]
        fn parseval_energy_is_preserved(
            raw in proptest::collection::vec(-10.0..10.0f64, 64..=64)
        ) {
            let time_energy: f64 = raw.iter().map(|x| x * x).sum();
            let spec = fft_real(&raw).unwrap();
            let freq_energy: f64 =
                spec.iter().map(|z| z.norm_sq()).sum::<f64>() / raw.len() as f64;
            prop_assert!((time_energy - freq_energy).abs() < 1e-6 * time_energy.max(1.0));
        }

        #[test]
        fn linearity(
            a in proptest::collection::vec(-10.0..10.0f64, 16..=16),
            b in proptest::collection::vec(-10.0..10.0f64, 16..=16)
        ) {
            let sum: Vec<f64> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
            let fa = fft_real(&a).unwrap();
            let fb = fft_real(&b).unwrap();
            let fsum = fft_real(&sum).unwrap();
            for i in 0..16 {
                prop_assert!(((fa[i] + fb[i]) - fsum[i]).abs() < 1e-8);
            }
        }
    }
}

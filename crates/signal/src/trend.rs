//! Trending analysis.
//!
//! §6.3: SBFR in the DC performs "trending analysis, feature extraction,
//! and some diagnostics and prognostics"; §5.1 lists "trend data,
//! histories" among the inputs true prognostics needs; §1 promises
//! next-generation prognostics "using historical data". A
//! [`TrendTracker`] holds a sliding window of `(time, value)` samples of
//! any scalar condition indicator (band RMS, envelope line amplitude,
//! bearing temperature), fits a least-squares line, and projects when
//! the indicator will cross an alarm threshold — turning a feature
//! history into a data-driven prognostic horizon.

use mpros_core::{Error, Result, SimDuration, SimTime};
use std::collections::VecDeque;

/// A least-squares linear trend over a time window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrendFit {
    /// Fitted slope, units per second.
    pub slope: f64,
    /// Fitted value at the window's last sample time.
    pub current: f64,
    /// Coefficient of determination R² (how line-like the history is).
    pub r_squared: f64,
}

/// Sliding-window trend tracker for one scalar indicator.
#[derive(Debug, Clone)]
pub struct TrendTracker {
    window: VecDeque<(SimTime, f64)>,
    capacity: usize,
}

impl TrendTracker {
    /// Track the last `capacity` samples (≥ 3 so a fit is meaningful).
    pub fn new(capacity: usize) -> Result<Self> {
        if capacity < 3 {
            return Err(Error::invalid("trend window must hold at least 3 samples"));
        }
        Ok(TrendTracker {
            window: VecDeque::with_capacity(capacity),
            capacity,
        })
    }

    /// Record a sample. Samples must arrive in non-decreasing time
    /// order; out-of-order samples are rejected (§5.1's time-disordered
    /// inputs are sorted upstream by the OOSM timestamps).
    pub fn record(&mut self, at: SimTime, value: f64) -> Result<()> {
        if let Some(&(last, _)) = self.window.back() {
            if at < last {
                return Err(Error::invalid("trend samples must be time-ordered"));
            }
        }
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back((at, value));
        Ok(())
    }

    /// Number of samples currently held.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True if no samples are held.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// Least-squares fit over the window (`None` with < 3 samples or a
    /// degenerate time span).
    pub fn fit(&self) -> Option<TrendFit> {
        let n = self.window.len();
        if n < 3 {
            return None;
        }
        let t0 = self.window.front().expect("nonempty").0;
        let xs: Vec<f64> = self
            .window
            .iter()
            .map(|(t, _)| t.since(t0).as_secs())
            .collect();
        let ys: Vec<f64> = self.window.iter().map(|(_, v)| *v).collect();
        let nf = n as f64;
        let mean_x = xs.iter().sum::<f64>() / nf;
        let mean_y = ys.iter().sum::<f64>() / nf;
        let sxx: f64 = xs.iter().map(|x| (x - mean_x).powi(2)).sum();
        if sxx <= 0.0 {
            return None;
        }
        let sxy: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(x, y)| (x - mean_x) * (y - mean_y))
            .sum();
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;
        let syy: f64 = ys.iter().map(|y| (y - mean_y).powi(2)).sum();
        let r_squared = if syy > 0.0 {
            (sxy * sxy) / (sxx * syy)
        } else {
            1.0 // perfectly flat history is perfectly explained
        };
        let last_x = *xs.last().expect("nonempty");
        Some(TrendFit {
            slope,
            current: intercept + slope * last_x,
            r_squared,
        })
    }

    /// Projected time from the last sample until the fitted line crosses
    /// `threshold` (rising crossings only). `None` when the indicator is
    /// already above, not rising, too noisy (R² below `min_r_squared`),
    /// or unfittable.
    pub fn time_to_threshold(&self, threshold: f64, min_r_squared: f64) -> Option<SimDuration> {
        let fit = self.fit()?;
        if fit.r_squared < min_r_squared || fit.slope <= 0.0 || fit.current >= threshold {
            return None;
        }
        Some(SimDuration::from_secs(
            (threshold - fit.current) / fit.slope,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn at(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn fits_a_clean_ramp() {
        let mut t = TrendTracker::new(16).unwrap();
        for i in 0..10 {
            t.record(at(i as f64 * 10.0), 1.0 + 0.05 * i as f64)
                .unwrap();
        }
        let fit = t.fit().unwrap();
        assert!((fit.slope - 0.005).abs() < 1e-12, "slope {}", fit.slope);
        assert!((fit.current - 1.45).abs() < 1e-9);
        assert!(fit.r_squared > 0.999);
    }

    #[test]
    fn projects_threshold_crossing() {
        let mut t = TrendTracker::new(16).unwrap();
        for i in 0..10 {
            t.record(at(i as f64 * 10.0), 1.0 + 0.05 * i as f64)
                .unwrap();
        }
        // current 1.45, slope 0.005/s → 2.0 in 110 s.
        let eta = t.time_to_threshold(2.0, 0.9).unwrap();
        assert!((eta.as_secs() - 110.0).abs() < 1e-6, "eta {eta}");
        // Already above: no projection.
        assert!(t.time_to_threshold(1.2, 0.9).is_none());
    }

    #[test]
    fn flat_or_falling_trends_do_not_project() {
        let mut flat = TrendTracker::new(8).unwrap();
        let mut falling = TrendTracker::new(8).unwrap();
        for i in 0..8 {
            flat.record(at(i as f64), 1.0).unwrap();
            falling.record(at(i as f64), 1.0 - 0.1 * i as f64).unwrap();
        }
        assert!(flat.time_to_threshold(2.0, 0.5).is_none());
        assert!(falling.time_to_threshold(2.0, 0.5).is_none());
    }

    #[test]
    fn noisy_history_is_rejected_by_r_squared() {
        let mut t = TrendTracker::new(16).unwrap();
        // Alternating noise with no real trend.
        for i in 0..12 {
            let v = if i % 2 == 0 { 1.0 } else { 1.3 };
            t.record(at(i as f64), v + 0.001 * i as f64).unwrap();
        }
        let fit = t.fit().unwrap();
        assert!(fit.r_squared < 0.5, "r² {}", fit.r_squared);
        assert!(t.time_to_threshold(2.0, 0.8).is_none());
    }

    #[test]
    fn window_slides() {
        let mut t = TrendTracker::new(4).unwrap();
        // Old falling samples age out; recent rise dominates.
        for i in 0..4 {
            t.record(at(i as f64), 5.0 - i as f64).unwrap();
        }
        for i in 4..8 {
            t.record(at(i as f64), i as f64).unwrap();
        }
        assert_eq!(t.len(), 4);
        let fit = t.fit().unwrap();
        assert!(fit.slope > 0.9, "slope {}", fit.slope);
    }

    #[test]
    fn ordering_and_arity_validation() {
        assert!(TrendTracker::new(2).is_err());
        let mut t = TrendTracker::new(4).unwrap();
        t.record(at(10.0), 1.0).unwrap();
        assert!(t.record(at(5.0), 1.0).is_err(), "time went backwards");
        assert!(t.fit().is_none(), "needs 3 samples");
        t.record(at(10.0), 2.0).unwrap(); // equal time allowed
        t.record(at(10.0), 3.0).unwrap();
        assert!(t.fit().is_none(), "zero time span is degenerate");
    }

    proptest! {
        #[test]
        fn fit_recovers_arbitrary_lines(
            slope in -10.0..10.0f64,
            intercept in -100.0..100.0f64
        ) {
            let mut t = TrendTracker::new(32).unwrap();
            for i in 0..20 {
                let x = i as f64 * 3.0;
                t.record(at(x), intercept + slope * x).unwrap();
            }
            let fit = t.fit().unwrap();
            prop_assert!((fit.slope - slope).abs() < 1e-9 * slope.abs().max(1.0));
            prop_assert!(fit.r_squared > 0.999 || slope.abs() < 1e-12);
        }

        #[test]
        fn projection_is_consistent_with_fit(
            slope in 0.01..5.0f64,
            thresh_gap in 0.1..100.0f64
        ) {
            let mut t = TrendTracker::new(16).unwrap();
            for i in 0..10 {
                t.record(at(i as f64), slope * i as f64).unwrap();
            }
            let current = slope * 9.0;
            let eta = t.time_to_threshold(current + thresh_gap, 0.9).unwrap();
            prop_assert!((eta.as_secs() - thresh_gap / slope).abs() < 1e-6);
        }
    }
}

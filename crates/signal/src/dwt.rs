//! Discrete wavelet transform and wavelet energy maps.
//!
//! §6.2: the Wavelet Neural Network has "such unique capabilities as
//! multi-resolution and localization", consuming "wavelet maps" among its
//! features, and "will excel in drawing conclusions from transitory
//! phenomena rather than steady state data". The DWT provides exactly
//! that multi-resolution decomposition. We implement the Haar and
//! Daubechies-4 filter banks with periodic boundary handling and a
//! multi-level pyramid decomposition, plus the per-level energy "map" the
//! WNN feature vector uses.

use mpros_core::{Error, Result};
use serde::{Deserialize, Serialize};

/// Wavelet families supported by the transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Wavelet {
    /// Haar (db1): shortest support, best time localization.
    Haar,
    /// Daubechies-4 (two vanishing moments): smoother, better frequency
    /// separation for machinery transients.
    #[default]
    Daubechies4,
}

impl Wavelet {
    /// Low-pass (scaling) decomposition filter coefficients.
    pub fn lowpass(self) -> &'static [f64] {
        const SQRT2_INV: f64 = std::f64::consts::FRAC_1_SQRT_2;
        match self {
            Wavelet::Haar => {
                const H: [f64; 2] = [SQRT2_INV, SQRT2_INV];
                &H
            }
            Wavelet::Daubechies4 => {
                // (1±√3)/(4√2) family, standard D4 coefficients.
                const D4: [f64; 4] = [
                    0.482_962_913_144_690_2,
                    0.836_516_303_737_469,
                    0.224_143_868_041_857_35,
                    -0.129_409_522_550_921_45,
                ];
                &D4
            }
        }
    }

    /// High-pass (wavelet) decomposition filter, derived from the
    /// low-pass by the quadrature-mirror relation `g[k] = (-1)^k h[L-1-k]`.
    /// Returned as a static table (sign-flipping an `f64` literal is
    /// exact, so the precomputed values are bit-identical to deriving
    /// them at runtime) so the per-sample DWT loop never allocates.
    pub fn highpass(self) -> &'static [f64] {
        const SQRT2_INV: f64 = std::f64::consts::FRAC_1_SQRT_2;
        match self {
            Wavelet::Haar => {
                const G: [f64; 2] = [SQRT2_INV, -SQRT2_INV];
                &G
            }
            Wavelet::Daubechies4 => {
                // g[k] = (-1)^k h[3-k] over the D4 lowpass table.
                const G4: [f64; 4] = [
                    -0.129_409_522_550_921_45,
                    -0.224_143_868_041_857_35,
                    0.836_516_303_737_469,
                    -0.482_962_913_144_690_2,
                ];
                &G4
            }
        }
    }
}

/// One level of DWT decomposition: approximation (low-pass, downsampled)
/// and detail (high-pass, downsampled) coefficients.
#[derive(Debug, Clone, PartialEq)]
pub struct DwtLevel {
    /// Approximation coefficients (half the input length).
    pub approx: Vec<f64>,
    /// Detail coefficients (half the input length).
    pub detail: Vec<f64>,
}

/// Single-level DWT with periodic boundary extension. Input length must
/// be even and at least the filter length.
pub fn dwt_step(signal: &[f64], wavelet: Wavelet) -> Result<DwtLevel> {
    let mut approx = Vec::with_capacity(signal.len() / 2);
    let mut detail = Vec::with_capacity(signal.len() / 2);
    dwt_step_into(signal, wavelet, &mut approx, &mut detail)?;
    Ok(DwtLevel { approx, detail })
}

/// [`dwt_step`] writing into caller-provided buffers. `approx` and
/// `detail` are cleared and refilled; with sufficient capacity this
/// performs zero allocations.
pub fn dwt_step_into(
    signal: &[f64],
    wavelet: Wavelet,
    approx: &mut Vec<f64>,
    detail: &mut Vec<f64>,
) -> Result<()> {
    let n = signal.len();
    let h = wavelet.lowpass();
    let g = wavelet.highpass();
    if n < h.len() || !n.is_multiple_of(2) {
        return Err(Error::invalid(format!(
            "DWT input length {n} must be even and >= filter length {}",
            h.len()
        )));
    }
    let half = n / 2;
    approx.clear();
    detail.clear();
    for i in 0..half {
        let mut a = 0.0;
        let mut d = 0.0;
        for (k, (&hk, &gk)) in h.iter().zip(g).enumerate() {
            let idx = (2 * i + k) % n;
            a += hk * signal[idx];
            d += gk * signal[idx];
        }
        approx.push(a);
        detail.push(d);
    }
    Ok(())
}

/// Inverse of a single [`dwt_step`] (periodic).
pub fn idwt_step(level: &DwtLevel, wavelet: Wavelet) -> Result<Vec<f64>> {
    let mut out = Vec::with_capacity(level.approx.len() * 2);
    idwt_step_into(&level.approx, &level.detail, wavelet, &mut out)?;
    Ok(out)
}

/// Inverse of a single [`dwt_step_into`] (periodic), writing into a
/// caller-provided buffer. `out` is cleared and refilled; with
/// sufficient capacity this performs zero allocations.
pub fn idwt_step_into(
    approx: &[f64],
    detail: &[f64],
    wavelet: Wavelet,
    out: &mut Vec<f64>,
) -> Result<()> {
    let half = approx.len();
    if detail.len() != half {
        return Err(Error::invalid("approx/detail length mismatch"));
    }
    let n = half * 2;
    let h = wavelet.lowpass();
    let g = wavelet.highpass();
    out.clear();
    out.resize(n, 0.0);
    for i in 0..half {
        for (k, (&hk, &gk)) in h.iter().zip(g).enumerate() {
            let idx = (2 * i + k) % n;
            out[idx] += hk * approx[i] + gk * detail[i];
        }
    }
    Ok(())
}

/// A multi-level wavelet decomposition (pyramid).
#[derive(Debug, Clone)]
pub struct WaveletDecomposition {
    /// Detail coefficients per level; `details[0]` is the finest scale.
    pub details: Vec<Vec<f64>>,
    /// Final coarse approximation.
    pub approx: Vec<f64>,
    /// The wavelet used.
    pub wavelet: Wavelet,
}

impl WaveletDecomposition {
    /// Decompose `signal` over `levels` scales.
    pub fn analyze(signal: &[f64], wavelet: Wavelet, levels: usize) -> Result<Self> {
        if levels == 0 {
            return Err(Error::invalid("levels must be >= 1"));
        }
        let mut details = Vec::with_capacity(levels);
        let mut current = signal.to_vec();
        for _ in 0..levels {
            let step = dwt_step(&current, wavelet)?;
            details.push(step.detail);
            current = step.approx;
        }
        Ok(WaveletDecomposition {
            details,
            approx: current,
            wavelet,
        })
    }

    /// Reconstruct the original signal. Ping-pongs between two buffers
    /// instead of cloning the approximation and detail at every level.
    pub fn synthesize(&self) -> Result<Vec<f64>> {
        let mut current = Vec::with_capacity(self.approx.len() << self.details.len());
        let mut next = Vec::new();
        current.extend_from_slice(&self.approx);
        for detail in self.details.iter().rev() {
            idwt_step_into(&current, detail, self.wavelet, &mut next)?;
            std::mem::swap(&mut current, &mut next);
        }
        Ok(current)
    }

    /// The *wavelet map* feature (§6.2): relative energy per scale,
    /// `[detail_1 .. detail_L, approx]`, normalized to sum to 1 (all-zero
    /// signals map to all-zero features).
    pub fn energy_map(&self) -> Vec<f64> {
        let mut energies: Vec<f64> = self
            .details
            .iter()
            .map(|d| d.iter().map(|x| x * x).sum::<f64>())
            .collect();
        energies.push(self.approx.iter().map(|x| x * x).sum::<f64>());
        let total: f64 = energies.iter().sum();
        if total > 0.0 {
            for e in energies.iter_mut() {
                *e /= total;
            }
        }
        energies
    }
}

/// A reusable multi-level DWT workspace: pyramid decomposition whose
/// per-level detail buffers, approximation buffer and ping-pong scratch
/// are all retained across calls, so repeated analyses of same-sized
/// blocks perform **zero allocations** in steady state.
///
/// Produces coefficient values bit-identical to
/// [`WaveletDecomposition::analyze`] — the arithmetic and its order are
/// the same; only the storage is recycled.
#[derive(Debug, Clone, Default)]
pub struct MultiLevelDwt {
    /// Detail buffers; `details[l]` is reused level-for-level across
    /// analyses. May hold more (retained) buffers than `levels`.
    details: Vec<Vec<f64>>,
    /// The coarse approximation after the last analysis.
    approx: Vec<f64>,
    /// Ping-pong partner for `approx` during analysis/reconstruction.
    spare: Vec<f64>,
    wavelet: Wavelet,
    levels: usize,
}

impl MultiLevelDwt {
    /// An empty workspace; buffers grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Decompose `signal` over `levels` scales, reusing this workspace's
    /// buffers. Results are readable through [`MultiLevelDwt::details`]
    /// and [`MultiLevelDwt::approx`] until the next call.
    pub fn analyze_into(&mut self, signal: &[f64], wavelet: Wavelet, levels: usize) -> Result<()> {
        if levels == 0 {
            return Err(Error::invalid("levels must be >= 1"));
        }
        self.wavelet = wavelet;
        self.levels = levels;
        while self.details.len() < levels {
            self.details.push(Vec::new());
        }
        self.approx.clear();
        self.approx.extend_from_slice(signal);
        for l in 0..levels {
            dwt_step_into(&self.approx, wavelet, &mut self.spare, &mut self.details[l])?;
            std::mem::swap(&mut self.approx, &mut self.spare);
        }
        Ok(())
    }

    /// Detail coefficients per level from the last analysis;
    /// `details()[0]` is the finest scale.
    pub fn details(&self) -> &[Vec<f64>] {
        &self.details[..self.levels]
    }

    /// The coarse approximation from the last analysis.
    pub fn approx(&self) -> &[f64] {
        &self.approx
    }

    /// The wavelet used by the last analysis.
    pub fn wavelet(&self) -> Wavelet {
        self.wavelet
    }

    /// Number of levels in the last analysis.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// Append the §6.2 wavelet-map feature — relative energy per scale,
    /// `[detail_1 .. detail_L, approx]`, normalized to sum to 1 (all-zero
    /// signals map to all-zero features) — to `out`. Values are
    /// bit-identical to [`WaveletDecomposition::energy_map`].
    pub fn energy_map_into(&self, out: &mut Vec<f64>) {
        let start = out.len();
        for d in self.details() {
            out.push(d.iter().map(|x| x * x).sum::<f64>());
        }
        out.push(self.approx.iter().map(|x| x * x).sum::<f64>());
        let total: f64 = out[start..].iter().sum();
        if total > 0.0 {
            for e in &mut out[start..] {
                *e /= total;
            }
        }
    }

    /// Reconstruct the analyzed signal into `out` (cleared and
    /// refilled), ping-ponging through the internal scratch buffer.
    pub fn reconstruct_into(&mut self, out: &mut Vec<f64>) -> Result<()> {
        out.clear();
        out.extend_from_slice(&self.approx);
        for detail in self.details[..self.levels].iter().rev() {
            idwt_step_into(out, detail, self.wavelet, &mut self.spare)?;
            std::mem::swap(out, &mut self.spare);
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::f64::consts::PI;

    #[test]
    fn filters_are_orthonormal() {
        for w in [Wavelet::Haar, Wavelet::Daubechies4] {
            let h = w.lowpass();
            let g = w.highpass();
            let hh: f64 = h.iter().map(|x| x * x).sum();
            let gg: f64 = g.iter().map(|x| x * x).sum();
            let hg: f64 = h.iter().zip(g).map(|(a, b)| a * b).sum();
            assert!((hh - 1.0).abs() < 1e-12, "{w:?} lowpass norm {hh}");
            assert!((gg - 1.0).abs() < 1e-12);
            assert!(hg.abs() < 1e-12, "{w:?} filters not orthogonal");
            // Low-pass sums to √2; high-pass sums to 0.
            assert!((h.iter().sum::<f64>() - 2.0f64.sqrt()).abs() < 1e-12);
            assert!(g.iter().sum::<f64>().abs() < 1e-12);
        }
    }

    #[test]
    fn haar_step_on_known_values() {
        let lvl = dwt_step(&[1.0, 3.0, 5.0, 7.0], Wavelet::Haar).unwrap();
        let s = 2.0f64.sqrt();
        assert!((lvl.approx[0] - 4.0 / s * 1.0).abs() < 1e-12); // (1+3)/√2
        assert!((lvl.approx[1] - 12.0 / s).abs() < 1e-12); // (5+7)/√2
        assert!((lvl.detail[0] - (1.0 - 3.0) / s).abs() < 1e-12);
    }

    #[test]
    fn constant_signal_has_zero_detail() {
        for w in [Wavelet::Haar, Wavelet::Daubechies4] {
            let lvl = dwt_step(&[3.0; 16], w).unwrap();
            assert!(lvl.detail.iter().all(|d| d.abs() < 1e-12), "{w:?}");
        }
    }

    #[test]
    fn rejects_odd_or_short_input() {
        assert!(dwt_step(&[1.0, 2.0, 3.0], Wavelet::Haar).is_err());
        assert!(dwt_step(&[1.0, 2.0], Wavelet::Daubechies4).is_err());
        assert!(WaveletDecomposition::analyze(&[1.0; 8], Wavelet::Haar, 0).is_err());
    }

    #[test]
    fn transient_energy_concentrates_in_fine_scales() {
        // A click (impulse) is a transitory phenomenon: its energy lands in
        // the fine-scale details, unlike a slow sinusoid.
        let n = 256;
        let mut click = vec![0.0; n];
        click[100] = 1.0;
        let slow: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * i as f64 / n as f64).sin())
            .collect();
        let dc = WaveletDecomposition::analyze(&click, Wavelet::Daubechies4, 4).unwrap();
        let ds = WaveletDecomposition::analyze(&slow, Wavelet::Daubechies4, 4).unwrap();
        let mc = dc.energy_map();
        let ms = ds.energy_map();
        assert!(mc[0] > 0.3, "click fine-scale energy {}", mc[0]);
        assert!(ms[0] < 0.05, "sine fine-scale energy {}", ms[0]);
        assert!(ms[4] > 0.5, "sine coarse energy {}", ms[4]);
    }

    #[test]
    fn energy_map_is_normalized() {
        let sig: Vec<f64> = (0..128).map(|i| (i as f64 * 0.17).sin()).collect();
        let d = WaveletDecomposition::analyze(&sig, Wavelet::Haar, 3).unwrap();
        let m = d.energy_map();
        assert_eq!(m.len(), 4);
        assert!((m.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn zero_signal_energy_map_is_zero() {
        let d = WaveletDecomposition::analyze(&[0.0; 64], Wavelet::Haar, 3).unwrap();
        assert!(d.energy_map().iter().all(|&e| e == 0.0));
    }

    proptest! {
        #[test]
        fn single_step_roundtrip(
            sig in proptest::collection::vec(-10.0..10.0f64, 16..=16)
        ) {
            for w in [Wavelet::Haar, Wavelet::Daubechies4] {
                let lvl = dwt_step(&sig, w).unwrap();
                let back = idwt_step(&lvl, w).unwrap();
                for (a, b) in sig.iter().zip(&back) {
                    prop_assert!((a - b).abs() < 1e-9, "{w:?}");
                }
            }
        }

        #[test]
        fn pyramid_roundtrip(
            sig in proptest::collection::vec(-10.0..10.0f64, 64..=64),
            levels in 1usize..4
        ) {
            let d = WaveletDecomposition::analyze(&sig, Wavelet::Daubechies4, levels).unwrap();
            let back = d.synthesize().unwrap();
            for (a, b) in sig.iter().zip(&back) {
                prop_assert!((a - b).abs() < 1e-8);
            }
        }

        #[test]
        fn energy_preserved_by_one_step(
            sig in proptest::collection::vec(-10.0..10.0f64, 32..=32)
        ) {
            let lvl = dwt_step(&sig, Wavelet::Haar).unwrap();
            let e_in: f64 = sig.iter().map(|x| x * x).sum();
            let e_out: f64 = lvl.approx.iter().chain(&lvl.detail).map(|x| x * x).sum();
            prop_assert!((e_in - e_out).abs() < 1e-8 * e_in.max(1.0));
        }
    }
}

//! Window functions for spectral analysis.
//!
//! Machinery vibration analysis multiplies each acquisition block by a
//! window to control spectral leakage before the FFT (§6.1's "complex
//! spectrum and waveform analysis"). Each window has a *coherent gain*
//! (mean of its coefficients) that amplitude spectra must divide out so
//! that a sinusoid of amplitude A reads A regardless of the window.

use std::f64::consts::PI;

/// Supported window functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Window {
    /// No weighting (rectangular). Best amplitude accuracy for exactly
    /// bin-centered tones, worst leakage.
    Rectangular,
    /// Hann (raised cosine) — the default for machinery spectra.
    Hann,
    /// Hamming.
    Hamming,
    /// Blackman — lower sidelobes, wider main lobe.
    Blackman,
    /// Flat-top — best amplitude accuracy for off-bin tones.
    FlatTop,
}

impl Window {
    /// All supported windows.
    pub const ALL: [Window; 5] = [
        Window::Rectangular,
        Window::Hann,
        Window::Hamming,
        Window::Blackman,
        Window::FlatTop,
    ];

    /// Coefficient `w[i]` for a window of length `n`.
    pub fn coefficient(self, i: usize, n: usize) -> f64 {
        debug_assert!(i < n);
        if n == 1 {
            return 1.0;
        }
        let x = 2.0 * PI * i as f64 / (n - 1) as f64;
        match self {
            Window::Rectangular => 1.0,
            Window::Hann => 0.5 * (1.0 - x.cos()),
            Window::Hamming => 0.54 - 0.46 * x.cos(),
            Window::Blackman => 0.42 - 0.5 * x.cos() + 0.08 * (2.0 * x).cos(),
            Window::FlatTop => {
                0.21557895 - 0.41663158 * x.cos() + 0.277263158 * (2.0 * x).cos()
                    - 0.083578947 * (3.0 * x).cos()
                    + 0.006947368 * (4.0 * x).cos()
            }
        }
    }

    /// Materialize the coefficient vector.
    pub fn coefficients(self, n: usize) -> Vec<f64> {
        (0..n).map(|i| self.coefficient(i, n)).collect()
    }

    /// Coherent gain: the mean coefficient, used to correct amplitude
    /// spectra.
    pub fn coherent_gain(self, n: usize) -> f64 {
        self.coefficients(n).iter().sum::<f64>() / n as f64
    }

    /// Multiply the window into a signal block in place; returns the
    /// coherent gain used.
    pub fn apply(self, signal: &mut [f64]) -> f64 {
        let n = signal.len();
        for (i, s) in signal.iter_mut().enumerate() {
            *s *= self.coefficient(i, n);
        }
        self.coherent_gain(n)
    }

    /// Short name for reports and bench labels.
    pub fn name(self) -> &'static str {
        match self {
            Window::Rectangular => "rectangular",
            Window::Hann => "hann",
            Window::Hamming => "hamming",
            Window::Blackman => "blackman",
            Window::FlatTop => "flattop",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rectangular_is_all_ones() {
        assert!(Window::Rectangular
            .coefficients(16)
            .iter()
            .all(|&c| c == 1.0));
        assert_eq!(Window::Rectangular.coherent_gain(16), 1.0);
    }

    #[test]
    fn hann_endpoints_are_zero_and_center_is_one() {
        let c = Window::Hann.coefficients(9);
        assert!(c[0].abs() < 1e-15);
        assert!(c[8].abs() < 1e-15);
        assert!((c[4] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn hann_coherent_gain_is_half_asymptotically() {
        let g = Window::Hann.coherent_gain(4096);
        assert!((g - 0.5).abs() < 1e-3, "gain {g}");
    }

    #[test]
    fn windows_are_symmetric() {
        for w in Window::ALL {
            let n = 33;
            let c = w.coefficients(n);
            for i in 0..n {
                assert!(
                    (c[i] - c[n - 1 - i]).abs() < 1e-12,
                    "{} asymmetric at {i}",
                    w.name()
                );
            }
        }
    }

    #[test]
    fn coefficients_bounded_by_unity_magnitude() {
        for w in Window::ALL {
            for &c in &w.coefficients(64) {
                assert!(c.abs() <= 1.0 + 1e-9, "{}: {c}", w.name());
            }
        }
    }

    #[test]
    fn apply_scales_signal_and_returns_gain() {
        let mut sig = vec![1.0; 8];
        let gain = Window::Hann.apply(&mut sig);
        assert!((sig.iter().sum::<f64>() / 8.0 - gain).abs() < 1e-12);
    }

    #[test]
    fn length_one_window_is_identity() {
        for w in Window::ALL {
            assert_eq!(w.coefficient(0, 1), 1.0);
        }
    }
}

//! Streaming RMS detectors with programmable alarms.
//!
//! §8.1: "all channels are equipped with an RMS detector which can be
//! configured to provide a digital signal when the RMS of the incoming
//! signal exceeds a programmed value. This allows for real-time and
//! constant alarming for all sensors." The hardware detector is an analog
//! integrator; we model it as an exponentially weighted mean-square
//! tracker whose time constant plays the integrator's role, plus a
//! latching threshold comparator.

use mpros_core::{Error, Result};

/// Exponentially weighted streaming RMS estimator.
#[derive(Debug, Clone)]
pub struct RmsTracker {
    alpha: f64,
    mean_square: f64,
    primed: bool,
}

impl RmsTracker {
    /// Create a tracker whose time constant is `time_constant_samples`
    /// samples (must be ≥ 1).
    pub fn new(time_constant_samples: f64) -> Result<Self> {
        if time_constant_samples.is_nan() || time_constant_samples < 1.0 {
            return Err(Error::invalid("time constant must be >= 1 sample"));
        }
        Ok(RmsTracker {
            alpha: 1.0 / time_constant_samples,
            mean_square: 0.0,
            primed: false,
        })
    }

    /// Feed one sample; returns the updated RMS estimate.
    pub fn update(&mut self, x: f64) -> f64 {
        let sq = x * x;
        if self.primed {
            self.mean_square += self.alpha * (sq - self.mean_square);
        } else {
            self.mean_square = sq;
            self.primed = true;
        }
        self.rms()
    }

    /// Feed a block of samples; returns the RMS after the block.
    pub fn update_block(&mut self, block: &[f64]) -> f64 {
        for &x in block {
            self.update(x);
        }
        self.rms()
    }

    /// Current RMS estimate.
    pub fn rms(&self) -> f64 {
        self.mean_square.sqrt()
    }

    /// Reset to the unprimed state.
    pub fn reset(&mut self) {
        self.mean_square = 0.0;
        self.primed = false;
    }
}

/// A latching RMS alarm: asserts when the tracked RMS exceeds the
/// programmed threshold and stays asserted until explicitly cleared —
/// matching alarm-annunciator hardware semantics.
#[derive(Debug, Clone)]
pub struct RmsAlarm {
    tracker: RmsTracker,
    threshold: f64,
    latched: bool,
}

impl RmsAlarm {
    /// Create an alarm with the given threshold (must be positive) and
    /// tracker time constant.
    pub fn new(threshold: f64, time_constant_samples: f64) -> Result<Self> {
        if threshold.is_nan() || threshold <= 0.0 {
            return Err(Error::invalid("alarm threshold must be positive"));
        }
        Ok(RmsAlarm {
            tracker: RmsTracker::new(time_constant_samples)?,
            threshold,
            latched: false,
        })
    }

    /// Feed one sample; returns true if the alarm is (now) asserted.
    pub fn update(&mut self, x: f64) -> bool {
        if self.tracker.update(x) > self.threshold {
            self.latched = true;
        }
        self.latched
    }

    /// Feed a block; returns the asserted state after the block.
    pub fn update_block(&mut self, block: &[f64]) -> bool {
        for &x in block {
            self.update(x);
        }
        self.latched
    }

    /// Whether the alarm is currently asserted.
    pub fn is_asserted(&self) -> bool {
        self.latched
    }

    /// The programmed threshold.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Reprogram the threshold (takes effect for subsequent samples).
    pub fn set_threshold(&mut self, threshold: f64) -> Result<()> {
        if threshold.is_nan() || threshold <= 0.0 {
            return Err(Error::invalid("alarm threshold must be positive"));
        }
        self.threshold = threshold;
        Ok(())
    }

    /// Clear the latch (operator acknowledge).
    pub fn acknowledge(&mut self) {
        self.latched = false;
    }

    /// Current RMS estimate.
    pub fn rms(&self) -> f64 {
        self.tracker.rms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn tracker_converges_to_sine_rms() {
        let mut t = RmsTracker::new(200.0).unwrap();
        let fs = 1000.0;
        let mut rms = 0.0;
        for i in 0..5000 {
            rms = t.update(3.0 * (2.0 * PI * 50.0 * i as f64 / fs).sin());
        }
        let expected = 3.0 / 2.0f64.sqrt();
        assert!((rms - expected).abs() < 0.1, "rms {rms} vs {expected}");
    }

    #[test]
    fn tracker_first_sample_primes() {
        let mut t = RmsTracker::new(100.0).unwrap();
        assert_eq!(t.update(5.0), 5.0);
    }

    #[test]
    fn tracker_reset() {
        let mut t = RmsTracker::new(10.0).unwrap();
        t.update_block(&[4.0; 50]);
        assert!(t.rms() > 3.9);
        t.reset();
        assert_eq!(t.rms(), 0.0);
    }

    #[test]
    fn alarm_latches_and_acknowledges() {
        let mut a = RmsAlarm::new(1.0, 4.0).unwrap();
        assert!(!a.update_block(&[0.1; 20]));
        assert!(a.update_block(&[5.0; 20]), "should trip on large RMS");
        // Signal returns to quiet but the alarm stays latched.
        assert!(a.update_block(&[0.0; 200]));
        a.acknowledge();
        assert!(!a.is_asserted());
        // Quiet signal does not retrip.
        assert!(!a.update_block(&[0.0; 20]));
    }

    #[test]
    fn alarm_threshold_is_programmable() {
        let mut a = RmsAlarm::new(10.0, 2.0).unwrap();
        assert!(!a.update_block(&[3.0; 50]));
        a.set_threshold(1.0).unwrap();
        assert!(a.update_block(&[3.0; 50]));
        assert!(a.set_threshold(-1.0).is_err());
    }

    #[test]
    fn constructors_validate() {
        assert!(RmsTracker::new(0.5).is_err());
        assert!(RmsTracker::new(f64::NAN).is_err());
        assert!(RmsAlarm::new(0.0, 8.0).is_err());
    }
}

//! Amplitude spectra, peak extraction and shaft-order analysis.
//!
//! The DLI expert system's rules are phrased over *orders* — multiples of
//! the machine's running speed ("some compressors vibrate more at certain
//! frequencies", §6.1; classic 1× imbalance, 2× misalignment, bearing
//! tones at non-integer orders). [`Spectrum`] turns a windowed FFT into a
//! single-sided amplitude spectrum in engineering units and answers the
//! questions the rules ask: amplitude at a frequency/order, band RMS,
//! dominant peaks.

use crate::fft::FftPlan;
use crate::window::Window;
use mpros_core::{Error, Result};

/// A single-sided amplitude spectrum of a real signal.
///
/// The `Default` value is an *empty* spectrum (no bins, zero rates) —
/// it exists so callers can preallocate a `Spectrum` once and refill it
/// through [`crate::context::DspContext::spectrum_into`] without
/// reallocating the amplitude buffer.
#[derive(Debug, Clone, Default)]
pub struct Spectrum {
    /// Amplitude (peak, not RMS) per bin, window-corrected.
    pub(crate) amplitudes: Vec<f64>,
    /// Frequency step between bins, Hz.
    pub(crate) df: f64,
    /// Sample rate of the source block, Hz.
    pub(crate) sample_rate: f64,
}

/// One spectral peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Peak {
    /// Peak frequency, Hz (bin center).
    pub frequency: f64,
    /// Peak amplitude (same units as the time signal).
    pub amplitude: f64,
}

impl Spectrum {
    /// Compute the spectrum of `block` sampled at `sample_rate` Hz, using
    /// `window`. Block length must be a power of two.
    pub fn compute(block: &[f64], sample_rate: f64, window: Window) -> Result<Self> {
        if sample_rate <= 0.0 {
            return Err(Error::invalid("sample rate must be positive"));
        }
        let n = block.len();
        let plan = FftPlan::new(n)?;
        let mut buf: Vec<crate::fft::Complex> = Vec::with_capacity(n);
        let gain = window.coherent_gain(n);
        for (i, &x) in block.iter().enumerate() {
            buf.push(crate::fft::Complex::real(x * window.coefficient(i, n)));
        }
        plan.forward(&mut buf)?;
        // Single-sided amplitude: 2|X[k]| / (N * gain) for 0 < k < N/2,
        // |X[0]| / (N * gain) for DC.
        let half = n / 2;
        let norm = 1.0 / (n as f64 * gain);
        let mut amplitudes = Vec::with_capacity(half + 1);
        amplitudes.push(buf[0].abs() * norm);
        for z in buf.iter().take(half).skip(1) {
            amplitudes.push(2.0 * z.abs() * norm);
        }
        amplitudes.push(buf[half].abs() * norm);
        Ok(Spectrum {
            amplitudes,
            df: sample_rate / n as f64,
            sample_rate,
        })
    }

    /// Amplitudes per bin (index 0 = DC, last = Nyquist).
    pub fn amplitudes(&self) -> &[f64] {
        &self.amplitudes
    }

    /// Frequency resolution (bin width), Hz.
    pub fn resolution(&self) -> f64 {
        self.df
    }

    /// The sample rate of the source block, Hz.
    pub fn sample_rate(&self) -> f64 {
        self.sample_rate
    }

    /// The Nyquist frequency, Hz.
    pub fn nyquist(&self) -> f64 {
        self.sample_rate / 2.0
    }

    /// Center frequency of bin `k`.
    pub fn bin_frequency(&self, k: usize) -> f64 {
        k as f64 * self.df
    }

    /// Amplitude at `freq_hz`, searching bins within `tolerance_hz`
    /// (machinery speed is never exactly known, so rules search a small
    /// neighbourhood). The returned amplitude is parabolically
    /// interpolated around the strongest bin to correct window scalloping
    /// loss for off-grid tones.
    pub fn amplitude_near(&self, freq_hz: f64, tolerance_hz: f64) -> f64 {
        if freq_hz < 0.0 {
            return 0.0;
        }
        let lo = ((freq_hz - tolerance_hz) / self.df).floor().max(0.0) as usize;
        let hi = (((freq_hz + tolerance_hz) / self.df).ceil() as usize)
            .min(self.amplitudes.len().saturating_sub(1));
        let hi = hi.max(lo);
        let k = (lo..=hi)
            .max_by(|&a, &b| {
                self.amplitudes[a]
                    .partial_cmp(&self.amplitudes[b])
                    .expect("amplitudes are finite")
            })
            .expect("range is nonempty");
        self.interpolated_amplitude(k)
    }

    /// Parabolic vertex interpolation of the amplitude around bin `k`.
    fn interpolated_amplitude(&self, k: usize) -> f64 {
        let a = self.amplitudes[k];
        if k == 0 || k + 1 >= self.amplitudes.len() {
            return a;
        }
        let (l, r) = (self.amplitudes[k - 1], self.amplitudes[k + 1]);
        let denom = 2.0 * a - l - r;
        if denom <= 0.0 || a < l || a < r {
            return a; // not a local max: no vertex to fit
        }
        let delta = 0.5 * (r - l) / denom; // vertex offset in bins
        a - 0.25 * (l - r) * delta
    }

    /// Amplitude at `order` × `shaft_hz` with a half-bin-plus-2 % speed
    /// tolerance — the standard order-analysis lookup.
    pub fn amplitude_at_order(&self, shaft_hz: f64, order: f64) -> f64 {
        let f = shaft_hz * order;
        self.amplitude_near(f, (self.df / 2.0) + 0.02 * f)
    }

    /// RMS of the signal content in `[lo_hz, hi_hz]` (band-limited RMS,
    /// as produced by the MUX cards' analog RMS detectors when preceded by
    /// a filter).
    pub fn band_rms(&self, lo_hz: f64, hi_hz: f64) -> f64 {
        let lo = (lo_hz / self.df).ceil().max(0.0) as usize;
        let hi = ((hi_hz / self.df).floor() as usize).min(self.amplitudes.len() - 1);
        if lo > hi {
            return 0.0;
        }
        // Each sinusoid of peak amplitude A contributes A²/2 to mean
        // square (DC contributes A²).
        let mut ms = 0.0;
        for (k, &a) in self.amplitudes.iter().enumerate().take(hi + 1).skip(lo) {
            ms += if k == 0 { a * a } else { a * a / 2.0 };
        }
        ms.sqrt()
    }

    /// Total RMS over the whole band.
    pub fn total_rms(&self) -> f64 {
        self.band_rms(0.0, self.nyquist())
    }

    /// The `count` largest local maxima above `floor` amplitude, sorted by
    /// descending amplitude. DC and Nyquist bins are excluded.
    pub fn dominant_peaks(&self, count: usize, floor: f64) -> Vec<Peak> {
        let mut peaks: Vec<Peak> = Vec::new();
        for k in 1..self.amplitudes.len() - 1 {
            let a = self.amplitudes[k];
            if a > floor && a >= self.amplitudes[k - 1] && a >= self.amplitudes[k + 1] {
                peaks.push(Peak {
                    frequency: self.bin_frequency(k),
                    amplitude: a,
                });
            }
        }
        peaks.sort_by(|x, y| y.amplitude.partial_cmp(&x.amplitude).expect("finite"));
        peaks.truncate(count);
        peaks
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn tone(n: usize, fs: f64, f: f64, amp: f64) -> Vec<f64> {
        (0..n)
            .map(|i| amp * (2.0 * PI * f * i as f64 / fs).sin())
            .collect()
    }

    #[test]
    fn bin_centered_tone_amplitude_is_exact_with_rectangular() {
        let fs = 1024.0;
        let n = 1024;
        // 64 Hz is exactly bin 64.
        let sig = tone(n, fs, 64.0, 3.0);
        let spec = Spectrum::compute(&sig, fs, Window::Rectangular).unwrap();
        assert!((spec.amplitude_near(64.0, 0.5) - 3.0).abs() < 1e-9);
    }

    #[test]
    fn hann_window_recovers_amplitude_after_gain_correction() {
        let fs = 1024.0;
        let sig = tone(1024, fs, 64.0, 3.0);
        let spec = Spectrum::compute(&sig, fs, Window::Hann).unwrap();
        let a = spec.amplitude_near(64.0, 1.5);
        assert!((a - 3.0).abs() < 0.05, "amplitude {a}");
    }

    #[test]
    fn off_bin_tone_flattop_beats_rectangular_accuracy() {
        let fs = 1000.0;
        let n = 1024;
        // 60 Hz is off the bin grid (df ≈ 0.977 Hz).
        let sig = tone(n, fs, 60.4, 2.0);
        let rect = Spectrum::compute(&sig, fs, Window::Rectangular).unwrap();
        let flat = Spectrum::compute(&sig, fs, Window::FlatTop).unwrap();
        let err_rect = (rect.amplitude_near(60.4, 2.0) - 2.0).abs();
        let err_flat = (flat.amplitude_near(60.4, 2.0) - 2.0).abs();
        assert!(
            err_flat < err_rect,
            "flattop {err_flat} should beat rectangular {err_rect}"
        );
    }

    #[test]
    fn order_lookup_finds_harmonics() {
        let fs = 8192.0;
        let n = 4096;
        let shaft = 29.5; // Hz, like a 1770 rpm motor
        let mut sig = tone(n, fs, shaft, 1.0);
        for (i, s) in tone(n, fs, 2.0 * shaft, 0.5).iter().enumerate() {
            sig[i] += s;
        }
        let spec = Spectrum::compute(&sig, fs, Window::Hann).unwrap();
        assert!((spec.amplitude_at_order(shaft, 1.0) - 1.0).abs() < 0.05);
        assert!((spec.amplitude_at_order(shaft, 2.0) - 0.5).abs() < 0.05);
        assert!(spec.amplitude_at_order(shaft, 3.0) < 0.05);
    }

    #[test]
    fn band_rms_matches_time_domain_rms() {
        let fs = 2048.0;
        let sig = tone(2048, fs, 128.0, 2.0); // RMS = 2/√2 = 1.414
        let spec = Spectrum::compute(&sig, fs, Window::Rectangular).unwrap();
        let rms = spec.total_rms();
        assert!((rms - 2.0 / 2.0f64.sqrt()).abs() < 1e-6, "rms {rms}");
        // Out-of-band RMS is ~0.
        assert!(spec.band_rms(300.0, 900.0) < 1e-9);
    }

    #[test]
    fn dominant_peaks_sorted_and_limited() {
        let fs = 4096.0;
        let n = 4096;
        let mut sig = tone(n, fs, 100.0, 3.0);
        for (i, s) in tone(n, fs, 400.0, 1.0).iter().enumerate() {
            sig[i] += s;
        }
        for (i, s) in tone(n, fs, 700.0, 2.0).iter().enumerate() {
            sig[i] += s;
        }
        let spec = Spectrum::compute(&sig, fs, Window::Hann).unwrap();
        let peaks = spec.dominant_peaks(2, 0.1);
        assert_eq!(peaks.len(), 2);
        assert!((peaks[0].frequency - 100.0).abs() < 2.0);
        assert!((peaks[1].frequency - 700.0).abs() < 2.0);
        assert!(peaks[0].amplitude > peaks[1].amplitude);
    }

    #[test]
    fn rejects_bad_inputs() {
        assert!(Spectrum::compute(&[0.0; 100], 1000.0, Window::Hann).is_err());
        assert!(Spectrum::compute(&[0.0; 128], 0.0, Window::Hann).is_err());
    }

    #[test]
    fn resolution_and_nyquist() {
        let spec = Spectrum::compute(&vec![0.0; 2048], 40_000.0, Window::Hann).unwrap();
        assert!((spec.resolution() - 40_000.0 / 2048.0).abs() < 1e-12);
        assert_eq!(spec.nyquist(), 20_000.0);
        assert_eq!(spec.amplitudes().len(), 1025);
    }
}

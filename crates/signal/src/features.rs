//! Time-domain statistics and the §6.2 feature vector.
//!
//! §6.2: "Features extracted from input data are organized into a feature
//! vector, which is fed into the WNN... using information such as the
//! peak of the signal amplitude, standard deviation, cepstrum, DCT
//! coefficients, wavelet maps, temperature, humidity, speed, and mass."
//!
//! [`FeatureVector`] assembles exactly that: waveform statistics, cepstral
//! summary, leading DCT coefficients, the wavelet energy map, and optional
//! scalar process values, in a fixed layout the WNN can train on.

use crate::cepstrum::{dominant_quefrency, real_cepstrum};
use crate::dct::dct_features;
use crate::dwt::{Wavelet, WaveletDecomposition};
use mpros_core::Result;
use serde::{Deserialize, Serialize};

/// Basic waveform statistics.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct WaveformStats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Root mean square.
    pub rms: f64,
    /// Peak absolute amplitude (§6.2 "peak of the signal amplitude").
    pub peak: f64,
    /// Standard deviation (§6.2).
    pub std_dev: f64,
    /// Crest factor `peak / rms` (0 when the signal is all zeros).
    pub crest_factor: f64,
    /// Excess kurtosis; impulsive faults (bearing defects) drive it up.
    pub kurtosis: f64,
    /// Skewness.
    pub skewness: f64,
}

impl WaveformStats {
    /// Compute the statistics of a block. Empty blocks yield all zeros.
    pub fn of(block: &[f64]) -> Self {
        let n = block.len();
        if n == 0 {
            return Self::default();
        }
        let nf = n as f64;
        let mean = block.iter().sum::<f64>() / nf;
        let mut m2 = 0.0;
        let mut m3 = 0.0;
        let mut m4 = 0.0;
        let mut sum_sq = 0.0;
        let mut peak = 0.0f64;
        for &x in block {
            let d = x - mean;
            let d2 = d * d;
            m2 += d2;
            m3 += d2 * d;
            m4 += d2 * d2;
            sum_sq += x * x;
            peak = peak.max(x.abs());
        }
        m2 /= nf;
        m3 /= nf;
        m4 /= nf;
        let rms = (sum_sq / nf).sqrt();
        let std_dev = m2.sqrt();
        let kurtosis = if m2 > 0.0 { m4 / (m2 * m2) - 3.0 } else { 0.0 };
        let skewness = if m2 > 0.0 { m3 / m2.powf(1.5) } else { 0.0 };
        WaveformStats {
            mean,
            rms,
            peak,
            std_dev,
            crest_factor: if rms > 0.0 { peak / rms } else { 0.0 },
            kurtosis,
            skewness,
        }
    }
}

/// Layout parameters of a [`FeatureVector`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FeatureConfig {
    /// How many leading DCT coefficients to keep.
    pub dct_coefficients: usize,
    /// How many DWT levels for the wavelet energy map.
    pub wavelet_levels: usize,
    /// Wavelet family for the energy map.
    pub wavelet: Wavelet,
}

impl Default for FeatureConfig {
    fn default() -> Self {
        FeatureConfig {
            dct_coefficients: 8,
            wavelet_levels: 4,
            wavelet: Wavelet::Daubechies4,
        }
    }
}

/// The assembled §6.2 feature vector.
///
/// The `Default` value is empty; preallocate one and refill it through
/// [`crate::context::DspContext::feature_vector_into`] to keep the
/// extraction loop allocation-free.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FeatureVector {
    pub(crate) values: Vec<f64>,
}

impl FeatureVector {
    /// Extract features from a waveform block (power-of-two length) plus
    /// optional scalar process values (temperature, speed, load, ...).
    pub fn extract(block: &[f64], config: &FeatureConfig, process_scalars: &[f64]) -> Result<Self> {
        let stats = WaveformStats::of(block);
        let cep = real_cepstrum(block)?;
        let max_q = block.len() / 2;
        let q = dominant_quefrency(&cep, 2, max_q).unwrap_or(0);
        let cep_peak = cep.get(q).copied().unwrap_or(0.0);
        let dct = dct_features(block, config.dct_coefficients);
        let wmap = WaveletDecomposition::analyze(block, config.wavelet, config.wavelet_levels)?
            .energy_map();

        let mut values = Vec::with_capacity(7 + 2 + dct.len() + wmap.len() + process_scalars.len());
        values.extend_from_slice(&[
            stats.mean,
            stats.rms,
            stats.peak,
            stats.std_dev,
            stats.crest_factor,
            stats.kurtosis,
            stats.skewness,
        ]);
        values.push(q as f64 / block.len() as f64); // normalized quefrency
        values.push(cep_peak);
        values.extend_from_slice(&dct);
        values.extend_from_slice(&wmap);
        values.extend_from_slice(process_scalars);
        Ok(FeatureVector { values })
    }

    /// The flat feature values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Feature dimensionality.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if no features are present.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The expected dimensionality for a config and scalar count, without
    /// extracting; WNN layer sizing uses this.
    pub fn dimension(config: &FeatureConfig, process_scalar_count: usize) -> usize {
        7 + 2 + config.dct_coefficients + (config.wavelet_levels + 1) + process_scalar_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn stats_of_known_sine() {
        let n = 4096;
        let sig: Vec<f64> = (0..n)
            .map(|i| 2.0 * (2.0 * PI * 16.0 * i as f64 / n as f64).sin())
            .collect();
        let s = WaveformStats::of(&sig);
        assert!(s.mean.abs() < 1e-12);
        assert!((s.rms - 2.0 / 2.0f64.sqrt()).abs() < 1e-9);
        assert!((s.peak - 2.0).abs() < 1e-3);
        assert!((s.crest_factor - 2.0f64.sqrt()).abs() < 1e-3);
        // Sine kurtosis is -1.5 (excess).
        assert!((s.kurtosis + 1.5).abs() < 1e-2);
        assert!(s.skewness.abs() < 1e-9);
    }

    #[test]
    fn stats_of_empty_and_constant() {
        assert_eq!(WaveformStats::of(&[]), WaveformStats::default());
        let s = WaveformStats::of(&[3.0; 100]);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.kurtosis, 0.0);
        assert_eq!(s.crest_factor, 1.0);
    }

    #[test]
    fn impulsive_signal_has_high_kurtosis_and_crest() {
        let mut sig = vec![0.01; 1024];
        sig[500] = 5.0;
        let s = WaveformStats::of(&sig);
        assert!(s.kurtosis > 100.0, "kurtosis {}", s.kurtosis);
        assert!(s.crest_factor > 10.0, "crest {}", s.crest_factor);
    }

    #[test]
    fn feature_vector_has_predicted_dimension() {
        let cfg = FeatureConfig::default();
        let sig: Vec<f64> = (0..256).map(|i| (i as f64 * 0.1).sin()).collect();
        let fv = FeatureVector::extract(&sig, &cfg, &[20.0, 0.8]).unwrap();
        assert_eq!(fv.len(), FeatureVector::dimension(&cfg, 2));
        assert!(!fv.is_empty());
        // Process scalars land at the tail.
        let v = fv.values();
        assert_eq!(v[v.len() - 2], 20.0);
        assert_eq!(v[v.len() - 1], 0.8);
    }

    #[test]
    fn feature_vector_distinguishes_steady_from_transient() {
        let cfg = FeatureConfig::default();
        let n = 512;
        let steady: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 8.0 * i as f64 / n as f64).sin())
            .collect();
        let mut transient = steady.clone();
        for sample in &mut transient[200..208] {
            *sample += 4.0;
        }
        let fs = FeatureVector::extract(&steady, &cfg, &[]).unwrap();
        let ft = FeatureVector::extract(&transient, &cfg, &[]).unwrap();
        // Kurtosis (index 5) and fine-scale wavelet energy differ markedly.
        assert!(ft.values()[5] > fs.values()[5] + 1.0);
    }

    #[test]
    fn rejects_non_power_of_two_block() {
        let cfg = FeatureConfig::default();
        assert!(FeatureVector::extract(&[0.0; 300], &cfg, &[]).is_err());
    }

    #[test]
    fn all_features_finite_on_zero_block() {
        let cfg = FeatureConfig::default();
        let fv = FeatureVector::extract(&[0.0; 128], &cfg, &[0.0]).unwrap();
        assert!(fv.values().iter().all(|v| v.is_finite()));
    }
}

//! # mpros-signal
//!
//! The digital-signal-processing substrate of MPROS.
//!
//! The paper's data concentrator performs "standard machinery vibration
//! FFT analysis" (§6.1) at sampling rates above 40 kHz (§8.1), and the
//! wavelet neural network consumes features "such as the peak of the
//! signal amplitude, standard deviation, cepstrum, DCT coefficients,
//! wavelet maps" (§6.2). None of that machinery can be assumed to exist,
//! so this crate implements it from scratch:
//!
//! * complex radix-2 FFT / inverse FFT ([`fft`]),
//! * window functions with coherent-gain correction ([`window`]),
//! * amplitude/power spectra, peak and shaft-order extraction
//!   ([`spectrum`]),
//! * real cepstrum ([`cepstrum`]), DCT-II ([`dct`]),
//! * Haar / Daubechies-4 discrete wavelet transform and energy maps
//!   ([`dwt`]),
//! * Hilbert-transform envelope for bearing analysis ([`envelope`]),
//! * streaming RMS detectors with programmable alarms modeling the MUX
//!   card hardware ([`rms`]),
//! * sliding-window trend fitting with threshold-crossing projection
//!   ([`trend`]),
//! * time-domain statistical features and the §6.2 feature vector
//!   ([`features`]),
//! * a reusable zero-allocation DSP execution context with cached FFT
//!   plans and a scratch arena ([`context`]).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cepstrum;
pub mod context;
pub mod dct;
pub mod dwt;
pub mod envelope;
pub mod features;
pub mod fft;
pub mod rms;
pub mod spectrum;
pub mod trend;
pub mod window;

pub use context::{DspContext, DspScratch, DspStats};
pub use dwt::MultiLevelDwt;
pub use fft::Complex;
pub use spectrum::Spectrum;
pub use window::Window;

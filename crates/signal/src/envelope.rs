//! Signal envelope via the Hilbert transform.
//!
//! Rolling-element bearing defects excite high-frequency structural
//! resonances that are *amplitude-modulated* at the defect repetition
//! rate (BPFO/BPFI/...). Standard practice — and the reason DLI-style
//! rule sets can see bearing tones at all — is envelope analysis: band-
//! pass around the resonance, take the envelope, and look for the defect
//! frequency in the envelope spectrum. The analytic-signal envelope is
//! computed here with an FFT-based Hilbert transform.

use crate::fft::{Complex, FftPlan};
use mpros_core::Result;

/// The amplitude envelope of `signal` via the analytic signal
/// (FFT → zero negative frequencies, double positive → IFFT → |·|).
/// Length must be a power of two.
pub fn hilbert_envelope(signal: &[f64]) -> Result<Vec<f64>> {
    let n = signal.len();
    let plan = FftPlan::new(n)?;
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::real(x)).collect();
    plan.forward(&mut buf)?;
    // Analytic signal weights: keep DC and Nyquist, double 1..n/2-1,
    // zero the negative-frequency half.
    let half = n / 2;
    for (k, z) in buf.iter_mut().enumerate() {
        if k == 0 || k == half {
            // unchanged
        } else if k < half {
            *z = z.scale(2.0);
        } else {
            *z = Complex::ZERO;
        }
    }
    plan.inverse(&mut buf)?;
    Ok(buf.into_iter().map(|z| z.abs()).collect())
}

/// Band-pass `signal` to `[lo_hz, hi_hz]` in the frequency domain (ideal
/// brick-wall filter), then return the envelope. This is the classic
/// bearing-demodulation chain.
pub fn bandpass_envelope(
    signal: &[f64],
    sample_rate: f64,
    lo_hz: f64,
    hi_hz: f64,
) -> Result<Vec<f64>> {
    let n = signal.len();
    let plan = FftPlan::new(n)?;
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::real(x)).collect();
    plan.forward(&mut buf)?;
    let df = sample_rate / n as f64;
    let half = n / 2;
    for (k, z) in buf.iter_mut().enumerate() {
        // Frequency of bin k (mirrored for the upper half).
        let f = if k <= half {
            k as f64 * df
        } else {
            (n - k) as f64 * df
        };
        if f < lo_hz || f > hi_hz {
            *z = Complex::ZERO;
        }
    }
    plan.inverse(&mut buf)?;
    let filtered: Vec<f64> = buf.into_iter().map(|z| z.re).collect();
    hilbert_envelope(&filtered)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spectrum::Spectrum;
    use crate::window::Window;
    use std::f64::consts::PI;

    #[test]
    fn envelope_of_pure_tone_is_its_amplitude() {
        let fs = 1024.0;
        let n = 1024;
        let sig: Vec<f64> = (0..n)
            .map(|i| 2.0 * (2.0 * PI * 128.0 * i as f64 / fs).sin())
            .collect();
        let env = hilbert_envelope(&sig).unwrap();
        // Away from the block edges the envelope is flat at 2.0.
        for &e in &env[64..n - 64] {
            assert!((e - 2.0).abs() < 0.02, "envelope {e}");
        }
    }

    #[test]
    fn envelope_recovers_modulation_frequency() {
        // Carrier 2 kHz modulated at 97 Hz — the shape of a bearing
        // resonance excited by BPFO impacts.
        let fs = 16_384.0;
        let n = 8192;
        let (fc, fm) = (2_000.0, 97.0);
        let sig: Vec<f64> = (0..n)
            .map(|i| {
                let t = i as f64 / fs;
                (1.0 + 0.8 * (2.0 * PI * fm * t).cos()) * (2.0 * PI * fc * t).sin()
            })
            .collect();
        let env = bandpass_envelope(&sig, fs, 1_500.0, 2_500.0).unwrap();
        // Remove the DC of the envelope, then its spectrum should peak at fm.
        let mean = env.iter().sum::<f64>() / env.len() as f64;
        let ac: Vec<f64> = env.iter().map(|e| e - mean).collect();
        let spec = Spectrum::compute(&ac, fs, Window::Hann).unwrap();
        let peaks = spec.dominant_peaks(1, 0.01);
        assert!(!peaks.is_empty());
        assert!(
            (peaks[0].frequency - fm).abs() < 4.0,
            "envelope peak at {} Hz, expected {fm}",
            peaks[0].frequency
        );
    }

    #[test]
    fn bandpass_rejects_out_of_band_tone() {
        let fs = 8192.0;
        let n = 4096;
        let sig: Vec<f64> = (0..n)
            .map(|i| (2.0 * PI * 100.0 * i as f64 / fs).sin())
            .collect();
        let env = bandpass_envelope(&sig, fs, 2_000.0, 3_000.0).unwrap();
        let rms = (env.iter().map(|e| e * e).sum::<f64>() / env.len() as f64).sqrt();
        assert!(rms < 1e-9, "out-of-band leakage rms {rms}");
    }

    #[test]
    fn rejects_non_power_of_two() {
        assert!(hilbert_envelope(&[0.0; 100]).is_err());
    }
}

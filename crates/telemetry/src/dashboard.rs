//! Text dashboard renderer.
//!
//! Renders a [`TelemetrySnapshot`] as the fixed-width console view the
//! `shipboard_monitoring` example prints: pipeline stage timings first
//! (the paper's acquisition → fusion chain), then counters, gauges,
//! non-span histograms, and the tail of the event journal.

use crate::snapshot::TelemetrySnapshot;
use crate::span::Stage;
use mpros_core::SimDuration;
use std::fmt::Write;

/// Human-format a span of seconds (wall or simulated).
fn fmt_secs(s: f64) -> String {
    if s < 1e-6 {
        format!("{:.1} ns", s * 1e9)
    } else if s < 1e-3 {
        format!("{:.2} µs", s * 1e6)
    } else if s < 1.0 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{s:.3} s")
    }
}

fn fmt_opt(v: Option<f64>) -> String {
    v.map(fmt_secs).unwrap_or_else(|| "—".to_owned())
}

/// Render the snapshot as a fixed-width text dashboard.
pub fn render(snap: &TelemetrySnapshot) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "MPROS telemetry dashboard (schema v{}, t = {})",
        snap.schema_version,
        SimDuration::from_secs(snap.at_secs)
    );
    let _ = writeln!(out, "{}", "=".repeat(72));

    // Pipeline stages: wall-clock quantiles plus the simulated-time
    // median where the stage has one (bus transit, end-to-end ingest).
    let _ = writeln!(
        out,
        "{:<14} {:>8} {:>12} {:>12} {:>12} {:>12}",
        "stage", "count", "wall p50", "wall p95", "wall p99", "sim p50"
    );
    for stage in Stage::ALL {
        let wall = snap.histogram("span", &format!("{stage}.wall_s"));
        let sim = snap.histogram("span", &format!("{stage}.sim_s"));
        let count = wall
            .map(|h| h.count)
            .unwrap_or(0)
            .max(sim.map(|h| h.count).unwrap_or(0));
        let sim_p50 = sim
            .and_then(|h| h.p50)
            .map(|s| SimDuration::from_secs(s).to_string())
            .unwrap_or_else(|| "—".to_owned());
        let _ = writeln!(
            out,
            "{:<14} {:>8} {:>12} {:>12} {:>12} {:>12}",
            stage.as_str(),
            count,
            fmt_opt(wall.and_then(|h| h.p50)),
            fmt_opt(wall.and_then(|h| h.p95)),
            fmt_opt(wall.and_then(|h| h.p99)),
            sim_p50,
        );
    }

    if !snap.counters.is_empty() {
        let _ = writeln!(out, "\ncounters");
        for c in &snap.counters {
            let _ = writeln!(
                out,
                "  {:<40} {:>10}",
                format!("{}.{}", c.component, c.name),
                c.value
            );
        }
    }

    if !snap.gauges.is_empty() {
        let _ = writeln!(out, "\ngauges");
        for g in &snap.gauges {
            let _ = writeln!(
                out,
                "  {:<40} {:>10.3}",
                format!("{}.{}", g.component, g.name),
                g.value
            );
        }
    }

    let other: Vec<_> = snap
        .histograms
        .iter()
        .filter(|h| h.component != "span")
        .collect();
    if !other.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<30} {:>8} {:>12} {:>12} {:>12}",
            "histogram", "count", "p50", "p95", "p99"
        );
        for h in other {
            let _ = writeln!(
                out,
                "{:<30} {:>8} {:>12} {:>12} {:>12}",
                format!("{}.{}", h.component, h.name),
                h.count,
                fmt_opt(h.p50),
                fmt_opt(h.p95),
                fmt_opt(h.p99),
            );
        }
    }

    // Trace-log health: how full the bounded hop log got, and whether
    // it ever refused a hop (after which canonical exports are partial).
    let watermark = snap
        .gauge("trace", "hops_retained_watermark")
        .unwrap_or(0.0);
    let evicted = snap.counter("trace", "hops_evicted");
    let _ = writeln!(
        out,
        "\ntraces: retained watermark {watermark:.0} hops, {evicted} evicted{}",
        if evicted > 0 {
            " (canonical exports partial)"
        } else {
            ""
        }
    );

    let shown = snap.events.len().min(8);
    let _ = writeln!(
        out,
        "\nevents (last {shown} of {}, {} evicted)",
        snap.events.len(),
        snap.events_dropped
    );
    for e in snap.events.iter().rev().take(shown).rev() {
        let _ = writeln!(
            out,
            "  [{:>5}] t+{:.1}s {} {}: {}",
            e.seq, e.at_secs, e.component, e.kind, e.detail
        );
    }
    out
}

//! mpros-telemetry — fleet-scale observability for MPROS.
//!
//! The paper scales to "hundreds of DCs per ship" feeding one PDME
//! (§8.1); operating that fleet needs visibility into every hop of the
//! acquisition → fusion pipeline without perturbing it. This crate
//! provides the shared observability substrate the rest of the workspace
//! threads through its hot paths:
//!
//! * a lock-free [`metrics`] registry — atomic counters, gauges, and
//!   log-bucketed histograms keyed by `(component, metric)`;
//! * [`span`] timing for the pipeline stages, recording both wall-clock
//!   seconds (host cost) and simulated seconds (scenario latency);
//! * a bounded ring-buffer event [`journal`] for rare happenings (drops,
//!   partitions, quarantined channels, fusion conflict renormalizations);
//! * a versioned JSON [`snapshot`] exporter and a text [`dashboard`]
//!   renderer for the shipboard examples and CI artifacts;
//! * deterministic per-report causal tracing ([`trace`]) with Chrome
//!   trace-event / JSONL exporters ([`export`]) and a declarative SLO
//!   watchdog ([`slo`]).
//!
//! Everything is interior-mutable: one [`Telemetry`] handle is created
//! per scenario, cloned into every component, and recorded into from
//! `&self`. Under simulated time the recorded *simulated* durations are
//! fully deterministic; wall-clock durations describe the host.

#![forbid(unsafe_code)]

pub mod dashboard;
pub mod export;
pub mod exposition;
pub mod journal;
pub mod metrics;
pub mod recorder;
pub mod slo;
pub mod snapshot;
pub mod span;
pub mod trace;
pub mod worker;

pub use exposition::ExpositionStats;
pub use journal::{Event, Journal};
pub use metrics::{Counter, Gauge, Histogram, Registry};
pub use recorder::{
    incident_id, CounterDelta, FlightRecorder, GaugeSample, HopRecord, Incident, IncidentSummary,
    IncidentTrigger, JournalBatch, RecorderConfig, StepRecord, INCIDENT_SCHEMA_VERSION,
};
pub use slo::{SloCheck, SloPolicy, SloRule, SloVerdict, SloWatchdog};
pub use snapshot::{
    CounterSnapshot, EventSnapshot, GaugeSnapshot, HistogramSnapshot, TelemetrySnapshot,
    TELEMETRY_SCHEMA_VERSION,
};
pub use span::{Stage, WallTimer};
pub use trace::{HopKind, SpanId, TraceContext, TraceHop, TraceId, TraceLog};
pub use worker::SpanBatch;

use mpros_core::{SimDuration, SimTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Default journal capacity.
const DEFAULT_JOURNAL_CAPACITY: usize = 256;

/// A component that records into a [`Telemetry`] domain.
///
/// Every MPROS component is born observing a private domain and joins
/// the scenario's shared one at wiring time. Implementations of
/// [`Instrumented::set_telemetry`] must be **carry-over** joins: counter
/// totals accumulated in the old domain are added into the new domain's
/// counters so no activity is lost, and joining the domain the
/// component already observes is a no-op. Call at wiring time, before
/// traffic flows, so histograms stay complete.
pub trait Instrumented {
    /// Join a shared telemetry domain, carrying totals over.
    fn set_telemetry(&mut self, telemetry: &Telemetry);

    /// The telemetry domain the component currently records into.
    fn telemetry(&self) -> &Telemetry;
}

#[derive(Debug)]
struct Inner {
    registry: Registry,
    journal: Journal,
    /// Current simulated time (f64 bits), stamped onto journal events.
    sim_now_bits: AtomicU64,
    /// Wall-clock span histograms, one per [`Stage`], pre-registered so
    /// recording a span never touches the registry lock.
    span_wall: Vec<Arc<Histogram>>,
    /// Simulated-time span histograms, one per [`Stage`].
    span_sim: Vec<Arc<Histogram>>,
    /// Per-report causal hop log (see [`trace`]).
    trace: TraceLog,
    /// Hops the trace log refused because it was at capacity;
    /// pre-registered so the hot path never touches the registry lock.
    hops_evicted: Arc<Counter>,
    /// High-water mark of retained hops (watermark semantics via
    /// [`Gauge::set_max`]) — with [`Inner::hops_evicted`] it tells an
    /// operator how close a long run came to the trace cap.
    trace_watermark: Arc<Gauge>,
}

/// The shared observability handle: cheap to clone, records from
/// `&self`, safe to share across threads.
#[derive(Debug, Clone)]
pub struct Telemetry {
    inner: Arc<Inner>,
}

impl Default for Telemetry {
    fn default() -> Self {
        Telemetry::new()
    }
}

impl Telemetry {
    /// A fresh telemetry domain with the default journal capacity.
    pub fn new() -> Self {
        Telemetry::with_journal_capacity(DEFAULT_JOURNAL_CAPACITY)
    }

    /// A fresh telemetry domain retaining at most `capacity` journal
    /// events.
    pub fn with_journal_capacity(capacity: usize) -> Self {
        let registry = Registry::new();
        let span_wall = Stage::ALL
            .iter()
            .map(|s| registry.histogram("span", &format!("{s}.wall_s")))
            .collect();
        let span_sim = Stage::ALL
            .iter()
            .map(|s| registry.histogram("span", &format!("{s}.sim_s")))
            .collect();
        let hops_evicted = registry.counter("trace", "hops_evicted");
        let trace_watermark = registry.gauge("trace", "hops_retained_watermark");
        Telemetry {
            inner: Arc::new(Inner {
                registry,
                journal: Journal::new(capacity),
                sim_now_bits: AtomicU64::new(0f64.to_bits()),
                span_wall,
                span_sim,
                trace: TraceLog::default(),
                hops_evicted,
                trace_watermark,
            }),
        }
    }

    /// Whether two handles observe the same domain.
    pub fn same_domain(&self, other: &Telemetry) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }

    /// The underlying registry (for snapshotting and handle lookup).
    pub fn registry(&self) -> &Registry {
        &self.inner.registry
    }

    /// The counter `(component, name)` — look up once, record forever.
    pub fn counter(&self, component: &str, name: &str) -> Arc<Counter> {
        self.inner.registry.counter(component, name)
    }

    /// The gauge `(component, name)`.
    pub fn gauge(&self, component: &str, name: &str) -> Arc<Gauge> {
        self.inner.registry.gauge(component, name)
    }

    /// The histogram `(component, name)`.
    pub fn histogram(&self, component: &str, name: &str) -> Arc<Histogram> {
        self.inner.registry.histogram(component, name)
    }

    /// Advance the journal timestamp source; the scenario driver calls
    /// this once per step so events carry simulated time.
    pub fn set_sim_now(&self, now: SimTime) {
        self.inner
            .sim_now_bits
            .store(now.as_secs().to_bits(), Ordering::Relaxed);
    }

    /// The last simulated instant the driver announced.
    pub fn sim_now(&self) -> SimTime {
        SimTime::from_secs(f64::from_bits(
            self.inner.sim_now_bits.load(Ordering::Relaxed),
        ))
    }

    /// Journal an event at the current simulated time.
    pub fn event(&self, component: &str, kind: &str, detail: impl Into<String>) {
        self.inner
            .journal
            .record(self.sim_now(), component, kind, detail.into());
    }

    /// Journal an event at an explicit simulated time.
    pub fn event_at(&self, at: SimTime, component: &str, kind: &str, detail: impl Into<String>) {
        self.inner
            .journal
            .record(at, component, kind, detail.into());
    }

    /// The retained journal events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.inner.journal.events()
    }

    /// Record a stage's wall-clock cost.
    #[inline]
    pub fn record_span_wall(&self, stage: Stage, wall: Duration) {
        self.inner.span_wall[stage.index()].record(wall.as_secs_f64());
    }

    /// Record a stage's simulated-time latency.
    #[inline]
    pub fn record_span_sim(&self, stage: Stage, sim: SimDuration) {
        self.inner.span_sim[stage.index()].record(sim.as_secs());
    }

    /// Record both clocks for one stage occurrence.
    pub fn record_span(&self, stage: Stage, wall: Duration, sim: SimDuration) {
        self.record_span_wall(stage, wall);
        self.record_span_sim(stage, sim);
    }

    /// The wall-clock histogram of one stage.
    pub fn span_wall(&self, stage: Stage) -> Arc<Histogram> {
        Arc::clone(&self.inner.span_wall[stage.index()])
    }

    /// The simulated-time histogram of one stage.
    pub fn span_sim(&self, stage: Stage) -> Arc<Histogram> {
        Arc::clone(&self.inner.span_sim[stage.index()])
    }

    /// Record one causal hop into the trace log. A hop refused by the
    /// full log is surfaced as the `trace.hops_evicted` counter; the
    /// `trace.hops_retained_watermark` gauge tracks how full the log
    /// has ever been.
    #[inline]
    pub fn record_hop(&self, hop: TraceHop) {
        if self.inner.trace.record(hop) {
            self.inner
                .trace_watermark
                .set_max(self.inner.trace.watermark() as f64);
        } else {
            self.inner.hops_evicted.inc();
        }
    }

    /// The trace log (for canonical exports and per-trace queries).
    pub fn trace_log(&self) -> &TraceLog {
        &self.inner.trace
    }

    /// All recorded hops in canonical (scheduling-independent) order.
    pub fn trace_hops(&self) -> Vec<TraceHop> {
        self.inner.trace.canonical_hops()
    }

    /// Capture the full state as a versioned snapshot document.
    pub fn snapshot(&self) -> TelemetrySnapshot {
        let registry = &self.inner.registry;
        TelemetrySnapshot {
            schema_version: TELEMETRY_SCHEMA_VERSION,
            at_secs: self.sim_now().as_secs(),
            counters: registry
                .counters()
                .into_iter()
                .map(|(component, name, c)| CounterSnapshot {
                    component,
                    name,
                    value: c.get(),
                })
                .collect(),
            gauges: registry
                .gauges()
                .into_iter()
                .map(|(component, name, g)| GaugeSnapshot {
                    component,
                    name,
                    value: g.get(),
                })
                .collect(),
            histograms: registry
                .histograms()
                .into_iter()
                .map(|(component, name, h)| HistogramSnapshot {
                    component,
                    name,
                    count: h.count(),
                    min: h.min(),
                    max: h.max(),
                    mean: h.mean(),
                    p50: h.p50(),
                    p95: h.p95(),
                    p99: h.p99(),
                })
                .collect(),
            events: self
                .inner
                .journal
                .events()
                .into_iter()
                .map(|e| EventSnapshot {
                    seq: e.seq,
                    at_secs: e.at.as_secs(),
                    component: e.component,
                    kind: e.kind,
                    detail: e.detail,
                })
                .collect(),
            events_dropped: self.inner.journal.dropped(),
        }
    }

    /// Render the current state as the text dashboard.
    pub fn render_dashboard(&self) -> String {
        dashboard::render(&self.snapshot())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_one_domain() {
        let t = Telemetry::new();
        let u = t.clone();
        assert!(t.same_domain(&u));
        t.counter("net", "sent").add(3);
        assert_eq!(u.counter("net", "sent").get(), 3);
        assert!(!t.same_domain(&Telemetry::new()));
    }

    #[test]
    fn spans_land_in_preregistered_histograms() {
        let t = Telemetry::new();
        t.record_span(Stage::Fft, Duration::from_micros(150), SimDuration::ZERO);
        t.record_span_sim(Stage::BusTransit, SimDuration::from_millis(30.0));
        assert_eq!(t.span_wall(Stage::Fft).count(), 1);
        assert_eq!(t.span_sim(Stage::Fft).count(), 1);
        assert_eq!(t.span_sim(Stage::BusTransit).count(), 1);
        let p50 = t.span_sim(Stage::BusTransit).p50().unwrap();
        assert!((p50 - 0.030).abs() < 1e-12, "exact for one sample: {p50}");
    }

    #[test]
    fn events_carry_sim_time() {
        let t = Telemetry::new();
        t.set_sim_now(SimTime::from_secs(42.0));
        t.event("net", "partition", "Dc(1) unreachable");
        let events = t.events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].at.as_secs(), 42.0);
        assert_eq!(events[0].kind, "partition");
    }

    #[test]
    fn snapshot_roundtrips_through_serde_json() {
        let t = Telemetry::new();
        t.set_sim_now(SimTime::from_secs(900.25));
        t.counter("dc1", "reports_emitted").add(12);
        t.gauge("pdme", "dc_staleness_max").set(4.5);
        for i in 0..50 {
            t.record_span(
                Stage::PdmeIngest,
                Duration::from_nanos(500 + 40 * i),
                SimDuration::from_millis(20.0 + i as f64),
            );
        }
        t.event("fusion", "conflict_renorm", "machine 1 k=0.42");
        let snap = t.snapshot();
        let json = snap.to_json().unwrap();
        let back = TelemetrySnapshot::from_json(&json).unwrap();
        assert_eq!(snap, back);
        assert_eq!(back.counter("dc1", "reports_emitted"), 12);
        assert_eq!(back.gauge("pdme", "dc_staleness_max"), Some(4.5));
        let h = back.histogram("span", "pdme_ingest.sim_s").unwrap();
        assert_eq!(h.count, 50);
        assert!(h.p50.unwrap() <= h.p95.unwrap());
        assert!(h.p95.unwrap() <= h.p99.unwrap());
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let t = Telemetry::new();
        let mut snap = t.snapshot();
        snap.schema_version = 99;
        let json = snap.to_json().unwrap();
        assert!(TelemetrySnapshot::from_json(&json).is_err());
    }

    #[test]
    fn hop_eviction_surfaces_as_counter_and_watermark() {
        let t = Telemetry::new();
        let trace = TraceId(1);
        for attempt in 0..3 {
            t.record_hop(TraceHop::new(
                trace,
                HopKind::Send,
                attempt,
                None,
                "net",
                0.0,
                0.0,
                "",
            ));
        }
        assert_eq!(t.counter("trace", "hops_evicted").get(), 0);
        assert_eq!(t.gauge("trace", "hops_retained_watermark").get(), 3.0);
        assert_eq!(t.trace_log().watermark(), 3);
    }

    #[test]
    fn dashboard_names_every_stage() {
        let t = Telemetry::new();
        t.record_span_wall(Stage::Acquire, Duration::from_micros(3));
        t.event("dc1", "quarantine", "channel 4 silent");
        let text = t.render_dashboard();
        for stage in Stage::ALL {
            assert!(text.contains(stage.as_str()), "missing {stage}");
        }
        assert!(text.contains("quarantine"));
    }
}

//! Versioned JSON export of the telemetry state.
//!
//! Mirrors the `mpros-pdme::icas` interchange style: plain serde structs
//! with a `schema_version` field, rendered with `serde_json` so another
//! shipboard system (or a CI artifact consumer) can read the fleet's
//! observability state without linking against MPROS.

use serde::{Deserialize, Serialize};

/// Telemetry interchange schema version.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;

/// One counter reading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Owning component.
    pub component: String,
    /// Metric name.
    pub name: String,
    /// Count at snapshot time.
    pub value: u64,
}

/// One gauge reading.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSnapshot {
    /// Owning component.
    pub component: String,
    /// Metric name.
    pub name: String,
    /// Value at snapshot time.
    pub value: f64,
}

/// One histogram summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Owning component.
    pub component: String,
    /// Metric name.
    pub name: String,
    /// Number of recorded samples.
    pub count: u64,
    /// Exact minimum (absent while empty).
    pub min: Option<f64>,
    /// Exact maximum (absent while empty).
    pub max: Option<f64>,
    /// Mean (absent while empty).
    pub mean: Option<f64>,
    /// Estimated median.
    pub p50: Option<f64>,
    /// Estimated 95th percentile.
    pub p95: Option<f64>,
    /// Estimated 99th percentile.
    pub p99: Option<f64>,
}

/// One journaled event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EventSnapshot {
    /// Monotone sequence number.
    pub seq: u64,
    /// Simulated seconds the event was recorded at.
    pub at_secs: f64,
    /// Emitting component.
    pub component: String,
    /// Machine-readable kind.
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

/// The full telemetry document.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Schema version (see [`TELEMETRY_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Simulated seconds at snapshot time.
    pub at_secs: f64,
    /// Every registered counter, sorted by `(component, name)`.
    pub counters: Vec<CounterSnapshot>,
    /// Every registered gauge, sorted by `(component, name)`.
    pub gauges: Vec<GaugeSnapshot>,
    /// Every registered histogram, sorted by `(component, name)`.
    pub histograms: Vec<HistogramSnapshot>,
    /// Retained journal events, oldest first.
    pub events: Vec<EventSnapshot>,
    /// Journal events evicted to respect the ring capacity.
    pub events_dropped: u64,
}

impl TelemetrySnapshot {
    /// The histogram named `(component, name)`, if present.
    pub fn histogram(&self, component: &str, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|h| h.component == component && h.name == name)
    }

    /// The counter value for `(component, name)`, 0 when absent.
    pub fn counter(&self, component: &str, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.component == component && c.name == name)
            .map(|c| c.value)
            .unwrap_or(0)
    }

    /// The gauge value for `(component, name)`, if present.
    pub fn gauge(&self, component: &str, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|g| g.component == component && g.name == name)
            .map(|g| g.value)
    }

    /// Render as pretty-printed JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parse a document produced by [`TelemetrySnapshot::to_json`].
    /// Rejects documents from a different schema version.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        let snap: TelemetrySnapshot = serde_json::from_str(s)?;
        if snap.schema_version != TELEMETRY_SCHEMA_VERSION {
            return Err(serde::DeError::custom(format!(
                "unsupported telemetry schema version {} (expected {})",
                snap.schema_version, TELEMETRY_SCHEMA_VERSION
            ))
            .into());
        }
        Ok(snap)
    }
}

//! Prometheus-style text exposition of the metric registry.
//!
//! The gateway's `GetMetrics` response carries, alongside the
//! structured snapshot, a plain-text rendering that any scrape-style
//! collector can ingest. The format is a deterministic subset of the
//! Prometheus text format:
//!
//! ```text
//! exposition   = block*
//! block        = "# TYPE " name " " kind "\n" sample+
//! kind         = "counter" | "gauge" | "summary"
//! sample       = name [labels] " " value "\n"
//! name         = "mpros_" component "_" metric [ "_total" ]   ; counters get _total
//! labels       = "{quantile=\"0.5|0.95|0.99\"}"               ; summaries only
//! ```
//!
//! Histograms render as summaries: the three quantiles (omitted when
//! the histogram is empty), then `_count` and `_sum` rows. Within each
//! kind, series keep the registry's `(component, name)` sort order, so
//! the output for a given snapshot is unique — [`validate`] enforces
//! exactly that (no duplicate series, no unsorted series, every line
//! well-formed), and the `exposition_lint` CI bin runs it against a
//! live gateway.
//!
//! Determinism: values are rendered with Rust's `f64` `Display`, which
//! is exact shortest-roundtrip formatting — two runs producing the same
//! snapshot produce the same bytes.

use crate::snapshot::{CounterSnapshot, GaugeSnapshot, HistogramSnapshot};
use mpros_core::{Error, Result};
use std::fmt::Write as _;

/// Map a `(component, name)` pair onto a Prometheus-legal series name:
/// `mpros_<component>_<name>` with every non-alphanumeric character
/// folded to `_`.
pub fn series_name(component: &str, name: &str) -> String {
    let mut out = String::with_capacity(6 + component.len() + 1 + name.len());
    out.push_str("mpros_");
    for ch in component
        .chars()
        .chain(std::iter::once('_'))
        .chain(name.chars())
    {
        if ch.is_ascii_alphanumeric() {
            out.push(ch);
        } else {
            out.push('_');
        }
    }
    out
}

/// Render counters, gauges and histograms as the text exposition.
/// Within each kind, series are emitted in the order of their
/// *rendered* name (suffixes included) — the registry's raw
/// `(component, name)` order does not survive the `_`-folding and the
/// counters' `_total` suffix, and [`validate`] checks the rendered
/// names.
pub fn render(
    counters: &[CounterSnapshot],
    gauges: &[GaugeSnapshot],
    histograms: &[HistogramSnapshot],
) -> String {
    let mut counters: Vec<(String, &CounterSnapshot)> = counters
        .iter()
        .map(|c| (format!("{}_total", series_name(&c.component, &c.name)), c))
        .collect();
    counters.sort_by(|a, b| a.0.cmp(&b.0));
    let mut gauges: Vec<(String, &GaugeSnapshot)> = gauges
        .iter()
        .map(|g| (series_name(&g.component, &g.name), g))
        .collect();
    gauges.sort_by(|a, b| a.0.cmp(&b.0));
    let mut histograms: Vec<(String, &HistogramSnapshot)> = histograms
        .iter()
        .map(|h| (series_name(&h.component, &h.name), h))
        .collect();
    histograms.sort_by(|a, b| a.0.cmp(&b.0));

    let mut out = String::new();
    for (name, c) in &counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {}", c.value);
    }
    for (name, g) in &gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {}", g.value);
    }
    for (name, h) in &histograms {
        let _ = writeln!(out, "# TYPE {name} summary");
        for (q, v) in [("0.5", h.p50), ("0.95", h.p95), ("0.99", h.p99)] {
            if let Some(v) = v {
                let _ = writeln!(out, "{name}{{quantile=\"{q}\"}} {v}");
            }
        }
        let _ = writeln!(out, "{name}_count {}", h.count);
        let _ = writeln!(
            out,
            "{name}_sum {}",
            h.mean.map_or(0.0, |m| m * h.count as f64)
        );
    }
    out
}

/// Aggregate statistics from a validated exposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExpositionStats {
    /// `# TYPE ... counter` blocks.
    pub counters: usize,
    /// `# TYPE ... gauge` blocks.
    pub gauges: usize,
    /// `# TYPE ... summary` blocks.
    pub summaries: usize,
    /// Total sample lines across all blocks.
    pub samples: usize,
}

fn invalid(line_no: usize, line: &str, why: &str) -> Error {
    Error::invalid(format!("exposition line {}: {why}: {line:?}", line_no + 1))
}

/// Parse and check a text exposition produced by [`render`]: every
/// line must be a well-formed `# TYPE` header or sample, every sample
/// must belong to the preceding header's series, series names must not
/// repeat, and within each kind they must appear in sorted order.
pub fn validate(text: &str) -> Result<ExpositionStats> {
    let mut stats = ExpositionStats::default();
    let mut seen: Vec<String> = Vec::new();
    let mut last_by_kind: [Option<String>; 3] = [None, None, None];
    let mut current: Option<(String, usize, usize)> = None;
    for (line_no, line) in text.lines().enumerate() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((name, _, samples)) = current.take() {
                if samples == 0 {
                    return Err(Error::invalid(format!(
                        "exposition: series {name} declared without samples"
                    )));
                }
            }
            let (name, kind) = rest
                .split_once(' ')
                .ok_or_else(|| invalid(line_no, line, "malformed TYPE header"))?;
            let kind_ix = match kind {
                "counter" => 0,
                "gauge" => 1,
                "summary" => 2,
                _ => return Err(invalid(line_no, line, "unknown metric kind")),
            };
            match kind_ix {
                0 => stats.counters += 1,
                1 => stats.gauges += 1,
                _ => stats.summaries += 1,
            }
            if seen.iter().any(|s| s == name) {
                return Err(invalid(line_no, line, "duplicate series"));
            }
            if let Some(prev) = &last_by_kind[kind_ix] {
                if prev.as_str() >= name {
                    return Err(invalid(line_no, line, "unsorted series"));
                }
            }
            last_by_kind[kind_ix] = Some(name.to_owned());
            seen.push(name.to_owned());
            current = Some((name.to_owned(), kind_ix, 0));
        } else if line.is_empty() {
            return Err(invalid(line_no, line, "blank line"));
        } else {
            let (name_and_labels, value) = line
                .rsplit_once(' ')
                .ok_or_else(|| invalid(line_no, line, "malformed sample"))?;
            value
                .parse::<f64>()
                .map_err(|_| invalid(line_no, line, "unparseable value"))?;
            let base = name_and_labels
                .split_once('{')
                .map_or(name_and_labels, |(b, _)| b);
            let (series, kind_ix, samples) = current
                .as_mut()
                .ok_or_else(|| invalid(line_no, line, "sample before any TYPE header"))?;
            // Counters and gauges carry exactly one sample; a second
            // line for the same series is a duplicate, not a rollup.
            if *kind_ix < 2 && *samples > 0 {
                return Err(invalid(line_no, line, "duplicate sample"));
            }
            let belongs = match *kind_ix {
                0 | 1 => base == series,
                _ => {
                    base == series
                        || base == format!("{series}_count")
                        || base == format!("{series}_sum")
                }
            };
            if !belongs {
                return Err(invalid(line_no, line, "sample outside its TYPE block"));
            }
            *samples += 1;
            stats.samples += 1;
        }
    }
    if let Some((name, _, samples)) = current {
        if samples == 0 {
            return Err(Error::invalid(format!(
                "exposition: series {name} declared without samples"
            )));
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counter(component: &str, name: &str, value: u64) -> CounterSnapshot {
        CounterSnapshot {
            component: component.to_owned(),
            name: name.to_owned(),
            value,
        }
    }

    fn gauge(component: &str, name: &str, value: f64) -> GaugeSnapshot {
        GaugeSnapshot {
            component: component.to_owned(),
            name: name.to_owned(),
            value,
        }
    }

    #[test]
    fn renders_counters_gauges_and_summaries() {
        let h = HistogramSnapshot {
            component: "net".into(),
            name: "transit_s".into(),
            count: 4,
            min: Some(0.5),
            max: Some(2.0),
            mean: Some(1.0),
            p50: Some(1.0),
            p95: Some(2.0),
            p99: Some(2.0),
        };
        let text = render(
            &[counter("net", "frames.sent", 12)],
            &[gauge("pdme", "queue.depth", 3.0)],
            &[h],
        );
        assert!(text.contains("# TYPE mpros_net_frames_sent_total counter\n"));
        assert!(text.contains("mpros_net_frames_sent_total 12\n"));
        assert!(text.contains("# TYPE mpros_pdme_queue_depth gauge\n"));
        assert!(text.contains("mpros_pdme_queue_depth 3\n"));
        assert!(text.contains("# TYPE mpros_net_transit_s summary\n"));
        assert!(text.contains("mpros_net_transit_s{quantile=\"0.5\"} 1\n"));
        assert!(text.contains("mpros_net_transit_s_count 4\n"));
        assert!(text.contains("mpros_net_transit_s_sum 4\n"));
        let stats = validate(&text).unwrap();
        assert_eq!(stats.counters, 1);
        assert_eq!(stats.gauges, 1);
        assert_eq!(stats.summaries, 1);
        assert_eq!(stats.samples, 7);
    }

    #[test]
    fn empty_exposition_is_valid() {
        let text = render(&[], &[], &[]);
        assert!(text.is_empty());
        assert_eq!(validate(&text).unwrap(), ExpositionStats::default());
    }

    #[test]
    fn validate_rejects_duplicate_series() {
        let text = "# TYPE mpros_a_b_total counter\nmpros_a_b_total 1\n\
                    # TYPE mpros_a_b_total counter\nmpros_a_b_total 2\n";
        assert!(validate(text).is_err());
    }

    #[test]
    fn validate_rejects_unsorted_series() {
        let text = "# TYPE mpros_b_x_total counter\nmpros_b_x_total 1\n\
                    # TYPE mpros_a_x_total counter\nmpros_a_x_total 2\n";
        assert!(validate(text).is_err());
    }

    #[test]
    fn validate_rejects_stray_and_malformed_lines() {
        assert!(validate("mpros_orphan 1\n").is_err());
        assert!(validate("# TYPE mpros_a gauge\nmpros_a notanumber\n").is_err());
        assert!(validate("# TYPE mpros_a gauge\nmpros_other 1\n").is_err());
        assert!(validate("# TYPE mpros_a widget\nmpros_a 1\n").is_err());
        assert!(validate("# TYPE mpros_a gauge\n").is_err());
    }
}

//! Deterministic causal tracing for the report pipeline.
//!
//! Every condition report that leaves a Data Concentrator gets a
//! [`TraceId`], and every hop of its journey — emission, outbox
//! enqueue, each send attempt, bus delivery, PDME ingest, fusion,
//! OOSM update, plus the failure paths (expiry, crash loss, replay
//! dedup) — is recorded as a [`TraceHop`]. The result is a
//! Dapper-style per-report trace that answers "where did report N
//! spend its time" under retries, crashes and parallel stepping.
//!
//! ## Determinism contract
//!
//! All identifiers are *pure functions* of scenario state, derived with
//! the same splitmix64 stream machinery (`mpros_core::derive_stream_seed`)
//! that seeds every other stochastic element:
//!
//! * a DC's **trace seed** is `dc_trace_seed(master, dc_raw, epoch)` —
//!   the crash epoch is folded in because a rebuilt DC resets its report
//!   id allocator, and two reports with the same raw id in different
//!   epochs must not collide;
//! * a report's [`TraceId`] is `TraceId::for_report(trace_seed, report_raw)`;
//! * every [`SpanId`] is `SpanId::derive(trace, kind, attempt)` — any
//!   layer can (re)derive any span without plumbing ids through calls.
//!
//! Because ids carry no randomness and hops record **simulated** time,
//! the canonical export ([`TraceLog::canonical_hops`]) is byte-identical
//! across `Sequential` and `Parallel{2,4,8}` execution. Wall-clock
//! nanoseconds are captured per hop for local inspection but are never
//! part of a canonical export.

use mpros_core::derive_stream_seed;
pub use mpros_core::seed::{dc_trace_seed, TRACE_STREAM_SALT};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::{Mutex, PoisonError};

/// Default bound on retained hops; see [`TraceLog`].
pub const DEFAULT_TRACE_CAPACITY: usize = 65_536;

/// Identifier of one report's end-to-end journey.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct TraceId(pub u64);

impl TraceId {
    /// The trace id of a report, derived from its DC's trace seed and
    /// the report's raw id. Pure: every layer that knows the pair
    /// computes the same id.
    pub fn for_report(trace_seed: u64, report_raw: u64) -> TraceId {
        TraceId(derive_stream_seed(trace_seed, report_raw))
    }

    /// Raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Identifier of one hop (span) within a trace.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct SpanId(pub u64);

impl SpanId {
    /// The span id of hop `kind` (attempt `attempt`) of `trace`. Pure
    /// function — a retry's span differs from the first attempt's only
    /// through `attempt`.
    pub fn derive(trace: TraceId, kind: HopKind, attempt: u32) -> SpanId {
        SpanId(derive_stream_seed(
            trace.0,
            (kind.code() << 32) | u64::from(attempt),
        ))
    }

    /// Raw 64-bit value.
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// The kind of pipeline hop a [`TraceHop`] records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum HopKind {
    /// A DC algorithm suite emitted the report (trace root).
    DcEmit,
    /// The report entered the DC's outbox.
    Enqueue,
    /// One transmission attempt left the outbox (attempt ≥ 1; retries
    /// show as further `Send` hops on the *same* trace).
    Send,
    /// The outbox gave up: retry budget exhausted or queue overflow.
    Expire,
    /// The report was lost when its DC crashed with the batch pending.
    CrashLost,
    /// The ship network delivered the frame (sim span = bus transit).
    Deliver,
    /// The PDME accepted the report and posted it to the OOSM.
    Ingest,
    /// The PDME dropped a duplicate delivery (replay guard).
    Replay,
    /// Knowledge fusion folded the report into the fused picture.
    Fuse,
    /// The fused belief refresh the report triggered in the OOSM.
    OosmUpdate,
}

impl HopKind {
    /// Every kind, in pipeline order.
    pub const ALL: [HopKind; 10] = [
        HopKind::DcEmit,
        HopKind::Enqueue,
        HopKind::Send,
        HopKind::Expire,
        HopKind::CrashLost,
        HopKind::Deliver,
        HopKind::Ingest,
        HopKind::Replay,
        HopKind::Fuse,
        HopKind::OosmUpdate,
    ];

    /// Stable numeric code (folded into [`SpanId::derive`]).
    pub const fn code(self) -> u64 {
        match self {
            HopKind::DcEmit => 1,
            HopKind::Enqueue => 2,
            HopKind::Send => 3,
            HopKind::Expire => 4,
            HopKind::CrashLost => 5,
            HopKind::Deliver => 6,
            HopKind::Ingest => 7,
            HopKind::Replay => 8,
            HopKind::Fuse => 9,
            HopKind::OosmUpdate => 10,
        }
    }

    /// Stable snake_case name (used in exports).
    pub const fn as_str(self) -> &'static str {
        match self {
            HopKind::DcEmit => "dc_emit",
            HopKind::Enqueue => "enqueue",
            HopKind::Send => "send",
            HopKind::Expire => "expire",
            HopKind::CrashLost => "crash_lost",
            HopKind::Deliver => "deliver",
            HopKind::Ingest => "ingest",
            HopKind::Replay => "replay",
            HopKind::Fuse => "fuse",
            HopKind::OosmUpdate => "oosm_update",
        }
    }
}

impl fmt::Display for HopKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The per-report trace context carried on the wire (codec v3).
///
/// `parent` is the span of the **enqueue** hop — the last hop that is
/// constant across retransmissions, so every retry and the eventual
/// delivery attach to the same trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct TraceContext {
    /// The report's trace.
    pub trace: TraceId,
    /// Span the receiving side should parent its hops under.
    pub parent: SpanId,
}

impl TraceContext {
    /// The context a sender attaches once the report is enqueued.
    pub fn for_enqueued(trace: TraceId) -> TraceContext {
        TraceContext {
            trace,
            parent: SpanId::derive(trace, HopKind::Enqueue, 0),
        }
    }
}

/// One recorded hop of a report's journey.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceHop {
    /// The report's trace.
    pub trace: TraceId,
    /// This hop's span (always `SpanId::derive(trace, kind, attempt)`).
    pub span: SpanId,
    /// Causal parent span; `None` only for the [`HopKind::DcEmit`] root.
    pub parent: Option<SpanId>,
    /// What happened.
    pub kind: HopKind,
    /// Attempt number (meaningful for `Send`/`Deliver`; 0 elsewhere).
    pub attempt: u32,
    /// Export track: `dc{N}`, `net` or `pdme`.
    pub track: String,
    /// Simulated start time, seconds.
    pub sim_start: f64,
    /// Simulated end time, seconds (≥ `sim_start`).
    pub sim_end: f64,
    /// Wall-clock nanoseconds spent recording-side. Diagnostic only;
    /// **never** part of a canonical export.
    pub wall_ns: u64,
    /// Free-form annotation (machine, drop reason, …).
    pub detail: String,
}

impl TraceHop {
    /// Build a hop with the span derived from `(trace, kind, attempt)`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        trace: TraceId,
        kind: HopKind,
        attempt: u32,
        parent: Option<SpanId>,
        track: impl Into<String>,
        sim_start: f64,
        sim_end: f64,
        detail: impl Into<String>,
    ) -> TraceHop {
        TraceHop {
            trace,
            span: SpanId::derive(trace, kind, attempt),
            parent,
            kind,
            attempt,
            track: track.into(),
            sim_start,
            sim_end,
            wall_ns: 0,
            detail: detail.into(),
        }
    }
}

/// Canonical sort key: simulated time first, then trace/kind/attempt so
/// ties break identically no matter which worker recorded first.
fn canonical_key(h: &TraceHop) -> (u64, u64, u64, u64, u32, String) {
    (
        h.sim_start.to_bits(),
        h.sim_end.to_bits(),
        h.trace.0,
        h.kind.code(),
        h.attempt,
        h.detail.clone(),
    )
}

#[derive(Debug, Default)]
struct State {
    hops: Vec<TraceHop>,
    dropped: u64,
    watermark: usize,
}

/// Bounded, thread-safe hop log.
///
/// Worker threads record concurrently; insertion order therefore varies
/// with scheduling, and readers must use [`TraceLog::canonical_hops`]
/// for anything compared across runs. When the capacity is exhausted
/// new hops are counted in `dropped` and discarded (dropping the *new*
/// hop, not evicting an old one, keeps retained content independent of
/// insertion order); canonical exports are only guaranteed identical
/// across worker counts while `dropped == 0`.
#[derive(Debug)]
pub struct TraceLog {
    capacity: usize,
    state: Mutex<State>,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new(DEFAULT_TRACE_CAPACITY)
    }
}

impl TraceLog {
    /// A log retaining at most `capacity` hops.
    pub fn new(capacity: usize) -> TraceLog {
        TraceLog {
            capacity,
            state: Mutex::new(State::default()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Record one hop. Returns `true` if the hop was retained, `false`
    /// if the log was full and the hop was counted as dropped — callers
    /// (the [`crate::Telemetry`] handle) surface the drop as the
    /// `trace.hops_evicted` counter instead of losing it silently.
    pub fn record(&self, hop: TraceHop) -> bool {
        let mut s = self.lock();
        if s.hops.len() >= self.capacity {
            s.dropped += 1;
            return false;
        }
        s.hops.push(hop);
        s.watermark = s.watermark.max(s.hops.len());
        true
    }

    /// Number of retained hops.
    pub fn len(&self) -> usize {
        self.lock().hops.len()
    }

    /// The retention bound the log was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// High-water mark of retained hops over the log's lifetime.
    /// Together with [`TraceLog::capacity`] this tells an operator how
    /// close a long run came to the cap (and `dropped` says whether it
    /// hit it).
    pub fn watermark(&self) -> usize {
        self.lock().watermark
    }

    /// The hops recorded at raw index `start` and beyond, in insertion
    /// order, together with the new log length (the cursor for the next
    /// call). Insertion order is scheduling-dependent — cursor readers
    /// (the flight recorder) canonical-sort each delta themselves.
    pub fn hops_from(&self, start: usize) -> (Vec<TraceHop>, usize) {
        let s = self.lock();
        let from = start.min(s.hops.len());
        (s.hops[from..].to_vec(), s.hops.len())
    }

    /// Whether no hop has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hops discarded because the log was full.
    pub fn dropped(&self) -> u64 {
        self.lock().dropped
    }

    /// All retained hops in canonical (deterministic) order.
    pub fn canonical_hops(&self) -> Vec<TraceHop> {
        let mut hops = self.lock().hops.clone();
        hops.sort_by_key(canonical_key);
        hops
    }

    /// The hops of one trace, in canonical order.
    pub fn trace(&self, trace: TraceId) -> Vec<TraceHop> {
        let mut hops: Vec<TraceHop> = self
            .lock()
            .hops
            .iter()
            .filter(|h| h.trace == trace)
            .cloned()
            .collect();
        hops.sort_by_key(canonical_key);
        hops
    }
}

/// End-to-end latency (seconds of simulated time) of every *completed*
/// trace in `hops`: last [`HopKind::Fuse`] end minus the
/// [`HopKind::DcEmit`] start. Traces still in flight (or lost) are
/// skipped. Sorted ascending — ready for percentile reads.
pub fn e2e_latencies(hops: &[TraceHop]) -> Vec<f64> {
    use std::collections::BTreeMap;
    let mut emit: BTreeMap<u64, f64> = BTreeMap::new();
    let mut fused: BTreeMap<u64, f64> = BTreeMap::new();
    for h in hops {
        match h.kind {
            HopKind::DcEmit => {
                emit.entry(h.trace.0).or_insert(h.sim_start);
            }
            HopKind::Fuse => {
                let e = fused.entry(h.trace.0).or_insert(h.sim_end);
                if h.sim_end > *e {
                    *e = h.sim_end;
                }
            }
            _ => {}
        }
    }
    let mut out: Vec<f64> = fused
        .iter()
        .filter_map(|(t, end)| emit.get(t).map(|start| (end - start).max(0.0)))
        .collect();
    out.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_derivation_is_pure_and_kind_attempt_sensitive() {
        let t = TraceId::for_report(7, 42);
        assert_eq!(
            SpanId::derive(t, HopKind::Send, 1),
            SpanId::derive(t, HopKind::Send, 1)
        );
        assert_ne!(
            SpanId::derive(t, HopKind::Send, 1),
            SpanId::derive(t, HopKind::Send, 2)
        );
        assert_ne!(
            SpanId::derive(t, HopKind::Send, 1),
            SpanId::derive(t, HopKind::Deliver, 1)
        );
    }

    #[test]
    fn trace_seed_distinguishes_epochs_and_dcs() {
        let mut seen = std::collections::HashSet::new();
        for dc in 1..=8u64 {
            for epoch in 0..4u64 {
                assert!(seen.insert(dc_trace_seed(5, dc, epoch)));
            }
        }
    }

    #[test]
    fn hop_kind_codes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for k in HopKind::ALL {
            assert!(seen.insert(k.code()), "duplicate code for {k}");
            assert!(!k.as_str().is_empty());
        }
    }

    #[test]
    fn log_canonical_order_ignores_insertion_order() {
        let t1 = TraceId(10);
        let t2 = TraceId(20);
        let a = TraceHop::new(t1, HopKind::DcEmit, 0, None, "dc1", 1.0, 1.0, "");
        let b = TraceHop::new(t2, HopKind::DcEmit, 0, None, "dc2", 1.0, 1.0, "");
        let log1 = TraceLog::default();
        log1.record(a.clone());
        log1.record(b.clone());
        let log2 = TraceLog::default();
        log2.record(b);
        log2.record(a);
        assert_eq!(log1.canonical_hops(), log2.canonical_hops());
    }

    #[test]
    fn full_log_drops_new_hops_and_counts_them() {
        let log = TraceLog::new(1);
        let t = TraceId(1);
        log.record(TraceHop::new(
            t,
            HopKind::DcEmit,
            0,
            None,
            "dc1",
            0.0,
            0.0,
            "",
        ));
        log.record(TraceHop::new(
            t,
            HopKind::Enqueue,
            0,
            None,
            "net",
            1.0,
            1.0,
            "",
        ));
        assert_eq!(log.len(), 1);
        assert_eq!(log.dropped(), 1);
        assert_eq!(log.canonical_hops()[0].kind, HopKind::DcEmit);
        assert_eq!(log.watermark(), 1);
        assert_eq!(log.capacity(), 1);
    }

    #[test]
    fn record_reports_retention_and_hops_from_pages_in_insertion_order() {
        let log = TraceLog::new(2);
        let t = TraceId(1);
        let mk = |kind| TraceHop::new(t, kind, 0, None, "dc1", 0.0, 0.0, "");
        assert!(log.record(mk(HopKind::DcEmit)));
        let (delta, cursor) = log.hops_from(0);
        assert_eq!(delta.len(), 1);
        assert_eq!(cursor, 1);
        assert!(log.record(mk(HopKind::Enqueue)));
        assert!(!log.record(mk(HopKind::Send)));
        let (delta, cursor) = log.hops_from(cursor);
        assert_eq!(delta.len(), 1);
        assert_eq!(delta[0].kind, HopKind::Enqueue);
        assert_eq!(cursor, 2);
        // A stale past-the-end cursor is clamped, not a panic.
        assert_eq!(log.hops_from(99).0.len(), 0);
        assert_eq!(log.watermark(), 2);
    }

    #[test]
    fn e2e_latency_spans_emit_to_last_fuse() {
        let t = TraceId(9);
        let hops = vec![
            TraceHop::new(t, HopKind::DcEmit, 0, None, "dc1", 10.0, 10.0, ""),
            TraceHop::new(t, HopKind::Fuse, 0, None, "pdme", 12.5, 12.5, ""),
            // An incomplete second trace contributes nothing.
            TraceHop::new(TraceId(11), HopKind::DcEmit, 0, None, "dc1", 11.0, 11.0, ""),
        ];
        assert_eq!(e2e_latencies(&hops), vec![2.5]);
    }
}

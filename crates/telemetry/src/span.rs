//! Pipeline stages and span timing.
//!
//! MPROS processes every condition report through a fixed pipeline
//! (Fig. 1): the DC acquires a survey, runs the FFT and the algorithm
//! suites, emits reports onto the ship network, and the PDME ingests,
//! posts to the OOSM, and fuses. [`Stage`] names those hops; each stage
//! records two distributions — wall-clock seconds (how expensive the
//! stage is on the host) and simulated seconds (how long the stage takes
//! in scenario time, meaningful for bus transit and end-to-end latency).

use std::fmt;
use std::time::{Duration, Instant};

/// A hop of the acquisition → fusion pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Stage {
    /// Sensor/MUX acquisition of a vibration survey.
    Acquire,
    /// FFT + spectral feature extraction.
    Fft,
    /// DLI vibration expert system pass.
    Dli,
    /// SBFR model-based reasoning cycle.
    Sbfr,
    /// Wavelet neural network classification pass.
    Wnn,
    /// Fuzzy-logic process analysis pass.
    Fuzzy,
    /// Report assembly and emission from the DC.
    Emit,
    /// Ship-network transit (simulated seconds dominate here).
    BusTransit,
    /// PDME message ingest (simulated seconds are end-to-end report
    /// latency: emission timestamp → ingest).
    PdmeIngest,
    /// OOSM report posting.
    OosmPost,
    /// Knowledge-fusion update.
    Fusion,
    /// One DC's whole per-tick step (command handling + scheduled
    /// analyses), as executed by the scatter-gather engine — the unit
    /// of work the worker pool parallelizes.
    DcStep,
    /// One gateway query served against a published state snapshot
    /// (decode request → serve → encode response).
    GatewayServe,
}

impl Stage {
    /// Every stage, in pipeline order.
    pub const ALL: [Stage; 13] = [
        Stage::Acquire,
        Stage::Fft,
        Stage::Dli,
        Stage::Sbfr,
        Stage::Wnn,
        Stage::Fuzzy,
        Stage::Emit,
        Stage::BusTransit,
        Stage::PdmeIngest,
        Stage::OosmPost,
        Stage::Fusion,
        Stage::DcStep,
        Stage::GatewayServe,
    ];

    /// Stable snake_case name (used in metric keys and JSON snapshots).
    pub fn as_str(self) -> &'static str {
        match self {
            Stage::Acquire => "acquire",
            Stage::Fft => "fft",
            Stage::Dli => "dli",
            Stage::Sbfr => "sbfr",
            Stage::Wnn => "wnn",
            Stage::Fuzzy => "fuzzy",
            Stage::Emit => "emit",
            Stage::BusTransit => "bus_transit",
            Stage::PdmeIngest => "pdme_ingest",
            Stage::OosmPost => "oosm_post",
            Stage::Fusion => "fusion",
            Stage::DcStep => "dc_step",
            Stage::GatewayServe => "gateway_serve",
        }
    }

    /// Position in [`Stage::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A started wall-clock measurement. Cheap to create; read it with
/// [`WallTimer::elapsed`] and hand the duration to
/// `Telemetry::record_span_wall`.
#[derive(Debug, Clone, Copy)]
pub struct WallTimer {
    started: Instant,
}

impl WallTimer {
    /// Start timing now.
    pub fn start() -> Self {
        WallTimer {
            started: Instant::now(),
        }
    }

    /// Wall time since [`WallTimer::start`].
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stage_names_are_unique_and_indexed() {
        let mut seen = std::collections::HashSet::new();
        for (i, s) in Stage::ALL.iter().enumerate() {
            assert_eq!(s.index(), i);
            assert!(seen.insert(s.as_str()), "duplicate name {s}");
        }
    }

    #[test]
    fn wall_timer_is_monotone() {
        let t = WallTimer::start();
        let a = t.elapsed();
        let b = t.elapsed();
        assert!(b >= a);
    }
}

//! The bounded event journal.
//!
//! Rare-but-interesting happenings — dropped frames, network partitions,
//! quarantined channels, fusion conflict renormalizations, DCs going
//! silent — are appended to a fixed-capacity ring buffer. When the ring
//! is full the oldest entry is evicted and a drop counter advances, so
//! the journal can never grow without bound on a long cruise. Events are
//! rare by construction, so this sits behind a plain mutex rather than
//! the lock-free registry machinery.

use mpros_core::SimTime;
use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// One journaled event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Monotone sequence number (never reused, survives eviction).
    pub seq: u64,
    /// Simulated time the event was recorded at.
    pub at: SimTime,
    /// Emitting component (`"net"`, `"dc1"`, `"pdme"`, `"fusion"`...).
    pub component: String,
    /// Short machine-readable kind (`"drop"`, `"partition"`,
    /// `"quarantine"`, `"conflict_renorm"`, `"stale_dc"`...).
    pub kind: String,
    /// Human-readable detail.
    pub detail: String,
}

#[derive(Debug, Default)]
struct State {
    next_seq: u64,
    dropped: u64,
    events: VecDeque<Event>,
}

/// Fixed-capacity ring buffer of [`Event`]s.
#[derive(Debug)]
pub struct Journal {
    capacity: usize,
    state: Mutex<State>,
}

impl Journal {
    /// An empty journal holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Journal {
            capacity: capacity.max(1),
            state: Mutex::new(State::default()),
        }
    }

    /// Append an event, evicting the oldest entry when full.
    pub fn record(&self, at: SimTime, component: &str, kind: &str, detail: String) {
        let mut s = self.state.lock().unwrap_or_else(PoisonError::into_inner);
        let seq = s.next_seq;
        s.next_seq += 1;
        if s.events.len() == self.capacity {
            s.events.pop_front();
            s.dropped += 1;
        }
        s.events.push_back(Event {
            seq,
            at,
            component: component.to_owned(),
            kind: kind.to_owned(),
            detail,
        });
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<Event> {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .events
            .iter()
            .cloned()
            .collect()
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .events
            .len()
    }

    /// Whether no events are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of events evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .dropped
    }

    /// Maximum retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let j = Journal::new(3);
        for i in 0..5u64 {
            j.record(
                SimTime::from_secs(i as f64),
                "net",
                "drop",
                format!("frame {i}"),
            );
        }
        let events = j.events();
        assert_eq!(events.len(), 3);
        assert_eq!(j.dropped(), 2);
        assert_eq!(events[0].seq, 2, "oldest two evicted");
        assert_eq!(events[2].seq, 4);
        assert_eq!(events[2].detail, "frame 4");
        assert_eq!(j.capacity(), 3);
        assert!(!j.is_empty());
    }
}

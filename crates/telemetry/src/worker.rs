//! Per-worker span batching for parallel execution engines.
//!
//! The shared [`Telemetry`] domain is safe to record
//! into from any thread, but every `record_span_wall` is an atomic RMW
//! on histogram buckets other workers are hitting too. A worker that
//! times many small units of work inside one scatter-gather job would
//! pay that cache-line contention per unit. [`SpanBatch`] gives each
//! worker a plain, thread-local accumulation buffer: samples are pushed
//! with no synchronization at all and merged into the shared domain in
//! one pass at the end of the job (or whenever the worker chooses to
//! flush), so contention is bounded by jobs, not by samples.

use crate::span::Stage;
use crate::Telemetry;
use std::time::Duration;

/// A thread-local buffer of span samples, flushed to a shared
/// [`Telemetry`] domain in one pass.
///
/// Dropping a non-empty batch without flushing loses the samples by
/// design (observability must never block or fail the pipeline); call
/// [`SpanBatch::flush`] at job boundaries.
#[derive(Debug, Default)]
pub struct SpanBatch {
    samples: Vec<(Stage, Duration)>,
}

impl SpanBatch {
    /// An empty batch.
    pub fn new() -> Self {
        SpanBatch::default()
    }

    /// Buffer one wall-clock span sample. No synchronization.
    #[inline]
    pub fn record_wall(&mut self, stage: Stage, wall: Duration) {
        self.samples.push((stage, wall));
    }

    /// Samples currently buffered.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Merge every buffered sample into `telemetry`'s span histograms
    /// and clear the buffer. Returns the number of samples flushed.
    pub fn flush(&mut self, telemetry: &Telemetry) -> usize {
        let n = self.samples.len();
        for (stage, wall) in self.samples.drain(..) {
            telemetry.record_span_wall(stage, wall);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_accumulates_then_flushes_in_one_pass() {
        let t = Telemetry::new();
        let mut batch = SpanBatch::new();
        for i in 1..=10u64 {
            batch.record_wall(Stage::DcStep, Duration::from_micros(i));
        }
        assert_eq!(batch.len(), 10);
        assert_eq!(t.span_wall(Stage::DcStep).count(), 0, "nothing shared yet");
        assert_eq!(batch.flush(&t), 10);
        assert!(batch.is_empty());
        assert_eq!(t.span_wall(Stage::DcStep).count(), 10);
        // Extremes survive the batch hop exactly.
        assert_eq!(t.span_wall(Stage::DcStep).min(), Some(1e-6));
        assert_eq!(t.span_wall(Stage::DcStep).max(), Some(10e-6));
    }

    #[test]
    fn flush_on_empty_batch_is_a_noop() {
        let t = Telemetry::new();
        let mut batch = SpanBatch::new();
        assert_eq!(batch.flush(&t), 0);
        assert_eq!(t.span_wall(Stage::DcStep).count(), 0);
    }

    #[test]
    fn concurrent_workers_merge_without_loss() {
        let t = Telemetry::new();
        crossbeam::thread::scope(|s| {
            for w in 0..4 {
                let tel = t.clone();
                s.spawn(move |_| {
                    let mut batch = SpanBatch::new();
                    for i in 0..1000u64 {
                        batch.record_wall(Stage::DcStep, Duration::from_nanos(w * 1000 + i + 1));
                    }
                    batch.flush(&tel);
                });
            }
        })
        .unwrap();
        assert_eq!(t.span_wall(Stage::DcStep).count(), 4000);
    }
}

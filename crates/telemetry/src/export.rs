//! Trace exporters: Chrome trace-event JSON and JSONL.
//!
//! Both exporters consume hops in canonical order (see
//! [`crate::trace::TraceLog::canonical_hops`]) and emit **simulated**
//! time only, so the bytes they produce are identical across
//! `Sequential` and `Parallel{N}` runs of the same seeded scenario.
//!
//! * [`chrome_trace`] produces a trace-event JSON object loadable in
//!   Perfetto (<https://ui.perfetto.dev>) or `chrome://tracing`: one
//!   `pid`, one named `tid` track per source (`dc{N}`, `net`, `pdme`),
//!   `"X"` complete events with `ts`/`dur` in microseconds of simulated
//!   time, and the trace/span/parent ids in `args`.
//! * [`jsonl`] produces one JSON object per hop per line — grep-able,
//!   streamable, and the format the `trace_e2e` tests reconstruct
//!   journeys from.

use crate::trace::TraceHop;
use serde_json::{Map, Number, Value};

fn s(v: impl Into<String>) -> Value {
    Value::String(v.into())
}

fn u(v: u64) -> Value {
    Value::Number(Number::from_u64(v))
}

fn f(v: f64) -> Value {
    Value::Number(Number::from_f64(v))
}

/// Microseconds of simulated time, as an integer tick.
fn micros(sim_s: f64) -> u64 {
    (sim_s * 1e6).round().max(0.0) as u64
}

/// The distinct tracks of `hops`, sorted, with `dc*` tracks first, then
/// everything else alphabetically — a stable tid assignment.
fn tracks(hops: &[TraceHop]) -> Vec<String> {
    let mut tracks: Vec<String> = Vec::new();
    for h in hops {
        if !tracks.contains(&h.track) {
            tracks.push(h.track.clone());
        }
    }
    tracks.sort_by_key(|t| {
        let dc_rank = t.strip_prefix("dc").and_then(|n| n.parse::<u64>().ok());
        (dc_rank.is_none(), dc_rank.unwrap_or(0), t.clone())
    });
    tracks
}

fn hop_args(h: &TraceHop) -> Value {
    let mut args = Map::new();
    args.insert("trace".into(), s(h.trace.to_string()));
    args.insert("span".into(), s(h.span.to_string()));
    args.insert(
        "parent".into(),
        match h.parent {
            Some(p) => s(p.to_string()),
            None => Value::Null,
        },
    );
    args.insert("attempt".into(), u(u64::from(h.attempt)));
    if !h.detail.is_empty() {
        args.insert("detail".into(), s(h.detail.clone()));
    }
    Value::Object(args)
}

/// Render hops as a Chrome trace-event JSON document.
pub fn chrome_trace(hops: &[TraceHop]) -> String {
    let tracks = tracks(hops);
    let tid_of = |track: &str| tracks.iter().position(|t| t == track).unwrap_or(0) as u64;
    let mut events: Vec<Value> = Vec::with_capacity(tracks.len() + hops.len());
    for (tid, track) in tracks.iter().enumerate() {
        let mut m = Map::new();
        m.insert("ph".into(), s("M"));
        m.insert("pid".into(), u(1));
        m.insert("tid".into(), u(tid as u64));
        m.insert("name".into(), s("thread_name"));
        let mut args = Map::new();
        args.insert("name".into(), s(track.clone()));
        m.insert("args".into(), Value::Object(args));
        events.push(Value::Object(m));
    }
    for h in hops {
        let ts = micros(h.sim_start);
        let dur = micros(h.sim_end).saturating_sub(ts);
        let mut m = Map::new();
        m.insert("ph".into(), s("X"));
        m.insert("pid".into(), u(1));
        m.insert("tid".into(), u(tid_of(&h.track)));
        m.insert("name".into(), s(h.kind.as_str()));
        m.insert("cat".into(), s("mpros"));
        m.insert("ts".into(), u(ts));
        m.insert("dur".into(), u(dur));
        m.insert("args".into(), hop_args(h));
        events.push(Value::Object(m));
    }
    let mut doc = Map::new();
    doc.insert("traceEvents".into(), Value::Array(events));
    doc.insert("displayTimeUnit".into(), s("ms"));
    serde_json::to_string(&Value::Object(doc)).expect("value tree serializes")
}

/// Render hops as JSONL: one compact JSON object per hop per line,
/// trailing newline included (empty string for no hops).
pub fn jsonl(hops: &[TraceHop]) -> String {
    let mut out = String::new();
    for h in hops {
        let mut m = Map::new();
        m.insert("trace".into(), s(h.trace.to_string()));
        m.insert("span".into(), s(h.span.to_string()));
        m.insert(
            "parent".into(),
            match h.parent {
                Some(p) => s(p.to_string()),
                None => Value::Null,
            },
        );
        m.insert("kind".into(), s(h.kind.as_str()));
        m.insert("attempt".into(), u(u64::from(h.attempt)));
        m.insert("track".into(), s(h.track.clone()));
        m.insert("sim_start".into(), f(h.sim_start));
        m.insert("sim_end".into(), f(h.sim_end));
        if !h.detail.is_empty() {
            m.insert("detail".into(), s(h.detail.clone()));
        }
        out.push_str(&serde_json::to_string(&Value::Object(m)).expect("value tree serializes"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{HopKind, SpanId, TraceHop, TraceId};

    fn sample() -> Vec<TraceHop> {
        let t = TraceId(0xABCD);
        let root = SpanId::derive(t, HopKind::DcEmit, 0);
        vec![
            TraceHop::new(t, HopKind::DcEmit, 0, None, "dc2", 30.0, 30.0, "bearing"),
            TraceHop::new(t, HopKind::Enqueue, 0, Some(root), "net", 30.0, 30.0, ""),
            TraceHop::new(t, HopKind::Deliver, 1, None, "net", 30.0, 30.02, ""),
            TraceHop::new(t, HopKind::Ingest, 0, None, "pdme", 30.02, 30.02, ""),
        ]
    }

    #[test]
    fn chrome_trace_is_valid_json_with_named_tracks() {
        let doc = chrome_trace(&sample());
        let v: Value = serde_json::from_str(&doc).expect("valid JSON");
        let events = match &v["traceEvents"] {
            Value::Array(a) => a,
            other => panic!("traceEvents not an array: {other:?}"),
        };
        // 3 tracks (dc2, net, pdme) → 3 metadata events + 4 hops.
        assert_eq!(events.len(), 7);
        let metas: Vec<&Value> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("M"))
            .collect();
        assert_eq!(metas.len(), 3);
        assert_eq!(metas[0]["args"]["name"].as_str(), Some("dc2"));
        assert_eq!(metas[1]["args"]["name"].as_str(), Some("net"));
        assert_eq!(metas[2]["args"]["name"].as_str(), Some("pdme"));
        let xs: Vec<&Value> = events
            .iter()
            .filter(|e| e["ph"].as_str() == Some("X"))
            .collect();
        assert_eq!(xs[0]["ts"].as_u64(), Some(30_000_000));
        assert_eq!(xs[2]["dur"].as_u64(), Some(20_000));
        assert_eq!(xs[0]["args"]["detail"].as_str(), Some("bearing"));
    }

    #[test]
    fn dc_tracks_sort_numerically_before_infrastructure() {
        let t = TraceId(1);
        let hops: Vec<TraceHop> = vec![
            TraceHop::new(t, HopKind::Ingest, 0, None, "pdme", 0.0, 0.0, ""),
            TraceHop::new(t, HopKind::DcEmit, 0, None, "dc10", 0.0, 0.0, ""),
            TraceHop::new(t, HopKind::DcEmit, 0, None, "dc2", 0.0, 0.0, ""),
            TraceHop::new(t, HopKind::Enqueue, 0, None, "net", 0.0, 0.0, ""),
        ];
        assert_eq!(tracks(&hops), vec!["dc2", "dc10", "net", "pdme"]);
    }

    #[test]
    fn jsonl_emits_one_parseable_line_per_hop() {
        let text = jsonl(&sample());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        for line in &lines {
            let v: Value = serde_json::from_str(line).expect("line parses");
            assert!(v["trace"].as_str().is_some());
            assert!(v["kind"].as_str().is_some());
        }
        let first: Value = serde_json::from_str(lines[0]).unwrap();
        assert_eq!(first["parent"], Value::Null);
        let second: Value = serde_json::from_str(lines[1]).unwrap();
        assert!(second["parent"].as_str().is_some());
    }

    #[test]
    fn exports_are_deterministic_for_equal_input() {
        let a = sample();
        let b = sample();
        assert_eq!(chrome_trace(&a), chrome_trace(&b));
        assert_eq!(jsonl(&a), jsonl(&b));
    }
}

//! The flight recorder: bounded per-step capture and incident sealing.
//!
//! An unattended shipboard PDME needs the *evidence around an event*,
//! not just live counters: when an SLO trips or a DC goes dark, the
//! operator who dials in hours later wants the journal entries, trace
//! hops, counter movement and SLO verdicts from the steps surrounding
//! the trigger. The [`FlightRecorder`] provides exactly that black-box
//! capability:
//!
//! * every simulation step, the control thread calls
//!   [`FlightRecorder::observe_step`], which captures one [`StepRecord`]
//!   — the journal events, trace hops, counter/gauge deltas and SLO
//!   verdict of that step — into a bounded ring (oldest-drop, so a
//!   cruise of any length holds a constant amount of history);
//! * on a **trigger edge** ([`IncidentTrigger`]: an SLO violation, a DC
//!   crash, a PDME crash-restore, or an explicit API call) the recorder
//!   opens a capture: the ring's tail becomes the *pre* context window,
//!   the following steps fill the *post* window, and when the post
//!   window closes the capture seals into an immutable [`Incident`];
//! * sealed incidents carry a deterministic id — splitmix64 over
//!   `master seed ⊕ trigger ⊕ step` via
//!   [`mpros_core::derive_stream_seed`] — and export as versioned JSON.
//!
//! ## Determinism contract
//!
//! Everything captured is restricted to the *simulation domain*: the
//! scheduling-only `exec` component and the serving-side `gateway`
//! component are filtered from counter/gauge capture, trace hops are
//! stored without their wall-clock nanoseconds, and each step's journal
//! events are normalized by `(time, component)` (within one component
//! the order is deterministic; cross-component interleaving within a
//! step is scheduling noise). A sealed incident's JSON is therefore
//! **byte-identical** across `Sequential` and `Parallel{2,4,8}`
//! execution — the same contract the ICAS export and canonical trace
//! exports already make, extended to post-mortem bundles.
//!
//! The recorder also maintains a bounded, cursor-addressable journal
//! tail ([`FlightRecorder::journal_tail`]) over the same normalized
//! event stream, which is what the gateway's `StreamJournal` request
//! serves.

use crate::snapshot::EventSnapshot;
use crate::{SloVerdict, Telemetry, TraceHop};
use mpros_core::derive_stream_seed;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::sync::{Mutex, PoisonError};

/// Incident interchange schema version.
pub const INCIDENT_SCHEMA_VERSION: u32 = 1;

/// Components excluded from counter/gauge capture: `exec` is
/// scheduling metadata (exists only in parallel mode) and `gateway`
/// tracks host-side client timing — both would break the cross-mode
/// byte-identity contract.
fn sim_domain(component: &str) -> bool {
    component != "exec" && component != "gateway"
}

/// What fired an incident capture.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum IncidentTrigger {
    /// The SLO watchdog's verdict flipped from pass to fail.
    SloViolation,
    /// A DC crash window opened.
    DcCrashed {
        /// Raw id of the crashed DC.
        dc: u64,
    },
    /// The PDME was torn down and rebuilt from its durable store.
    PdmeCrashRestore,
    /// An explicit capture request through the API.
    Manual {
        /// Caller-supplied label.
        label: String,
    },
}

impl IncidentTrigger {
    /// Stable snake_case name (used in exports and summaries).
    pub fn kind(&self) -> &'static str {
        match self {
            IncidentTrigger::SloViolation => "slo_violation",
            IncidentTrigger::DcCrashed { .. } => "dc_crashed",
            IncidentTrigger::PdmeCrashRestore => "pdme_crash_restore",
            IncidentTrigger::Manual { .. } => "manual",
        }
    }

    /// Deterministic 64-bit code folded into the incident id: the
    /// trigger kind's ordinal mixed with its payload (crashed DC id,
    /// manual label hash) so two different triggers at the same step
    /// seal distinct incidents.
    pub fn code(&self) -> u64 {
        match self {
            IncidentTrigger::SloViolation => derive_stream_seed(1, 0),
            IncidentTrigger::DcCrashed { dc } => derive_stream_seed(2, *dc),
            IncidentTrigger::PdmeCrashRestore => derive_stream_seed(3, 0),
            IncidentTrigger::Manual { label } => {
                derive_stream_seed(4, mpros_core::seed::fnv1a(label))
            }
        }
    }
}

/// The deterministic incident id: splitmix64 over
/// `master seed ⊕ trigger ⊕ step` (two [`derive_stream_seed`] rounds).
/// Pure — any observer who knows the scenario seed, the trigger and the
/// step can (re)compute the id without seeing the bundle.
pub fn incident_id(master_seed: u64, trigger: &IncidentTrigger, step: u64) -> u64 {
    mpros_core::seed::incident_id(master_seed, trigger.code(), step)
}

/// One trace hop as captured into records and served over the wire:
/// every field of [`TraceHop`] except the diagnostic-only wall-clock
/// nanoseconds, which would break cross-mode byte identity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HopRecord {
    /// The report's trace id.
    pub trace: u64,
    /// This hop's span id.
    pub span: u64,
    /// Causal parent span, absent only for the emit root.
    pub parent: Option<u64>,
    /// Hop kind, as its stable snake_case name.
    pub kind: String,
    /// Attempt number.
    pub attempt: u32,
    /// Export track (`dc{N}`, `net`, `pdme`).
    pub track: String,
    /// Simulated start time, seconds.
    pub sim_start: f64,
    /// Simulated end time, seconds.
    pub sim_end: f64,
    /// Free-form annotation.
    pub detail: String,
}

impl From<&TraceHop> for HopRecord {
    fn from(h: &TraceHop) -> Self {
        HopRecord {
            trace: h.trace.raw(),
            span: h.span.raw(),
            parent: h.parent.map(|p| p.raw()),
            kind: h.kind.as_str().to_owned(),
            attempt: h.attempt,
            track: h.track.clone(),
            sim_start: h.sim_start,
            sim_end: h.sim_end,
            detail: h.detail.clone(),
        }
    }
}

/// One counter's movement during a step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CounterDelta {
    /// Owning component.
    pub component: String,
    /// Metric name.
    pub name: String,
    /// Increments observed this step.
    pub delta: u64,
    /// Running total after the step.
    pub total: u64,
}

/// One gauge reading at the end of a step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GaugeSample {
    /// Owning component.
    pub component: String,
    /// Metric name.
    pub name: String,
    /// Value at capture time.
    pub value: f64,
}

/// Everything the recorder captured for one simulation step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepRecord {
    /// Step ordinal (the sim's step count after the step ran).
    pub step: u64,
    /// Simulated seconds at capture.
    pub at_secs: f64,
    /// Journal events recorded during the step, normalized by
    /// `(time, component)`.
    pub events: Vec<EventSnapshot>,
    /// Trace hops recorded during the step, canonically ordered.
    pub hops: Vec<HopRecord>,
    /// Sim-domain counters that moved this step.
    pub counter_deltas: Vec<CounterDelta>,
    /// Sim-domain gauge readings at the end of the step.
    pub gauges: Vec<GaugeSample>,
    /// The SLO watchdog's verdict for the step, if a policy is active.
    pub slo: Option<SloVerdict>,
}

/// A sealed, immutable incident bundle: the trigger, the step it fired
/// on, and the pre/post context windows around it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Incident {
    /// Schema version (see [`INCIDENT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Deterministic id (see [`incident_id`]).
    pub id: u64,
    /// What fired the capture.
    pub trigger: IncidentTrigger,
    /// The step the trigger was observed on.
    pub step: u64,
    /// Simulated seconds at the trigger step.
    pub at_secs: f64,
    /// Steps of context captured before the trigger step.
    pub pre_steps: usize,
    /// Steps of context captured after the trigger step.
    pub post_steps: usize,
    /// The context window: `pre_steps` records, then the trigger step's
    /// record, then `post_steps` records.
    pub records: Vec<StepRecord>,
}

impl Incident {
    /// Render as pretty-printed JSON (the interchange form).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parse a document produced by [`Incident::to_json`]. Rejects
    /// documents from a different schema version.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        let incident: Incident = serde_json::from_str(s)?;
        if incident.schema_version != INCIDENT_SCHEMA_VERSION {
            return Err(serde::DeError::custom(format!(
                "unsupported incident schema version {} (expected {})",
                incident.schema_version, INCIDENT_SCHEMA_VERSION
            ))
            .into());
        }
        Ok(incident)
    }

    /// The summary row served by `ListIncidents`.
    pub fn summary(&self) -> IncidentSummary {
        IncidentSummary {
            id: self.id,
            trigger: self.trigger.clone(),
            step: self.step,
            at_secs: self.at_secs,
            records: self.records.len(),
        }
    }
}

/// One row of the incident index.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IncidentSummary {
    /// Deterministic incident id.
    pub id: u64,
    /// What fired the capture.
    pub trigger: IncidentTrigger,
    /// The step the trigger was observed on.
    pub step: u64,
    /// Simulated seconds at the trigger step.
    pub at_secs: f64,
    /// Number of step records in the sealed bundle.
    pub records: usize,
}

/// One page of the journal tail (see [`FlightRecorder::journal_tail`]).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalBatch {
    /// Cursor to pass on the next poll (one past the last event served).
    pub next_cursor: u64,
    /// Events the cursor missed: evicted from the bounded tail (or from
    /// the source journal ring) before this poll read them.
    pub dropped: u64,
    /// The served events, oldest first, with recorder stream sequence
    /// numbers.
    pub events: Vec<EventSnapshot>,
}

/// Flight recorder tuning knobs, builder-style like the other MPROS
/// configs.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct RecorderConfig {
    /// Step records retained in the ring (the maximum *pre* context any
    /// future incident can capture).
    pub ring_capacity: usize,
    /// Records of context captured before a trigger step.
    pub pre_steps: usize,
    /// Records of context captured after a trigger step; the capture
    /// seals once this many further steps are observed.
    pub post_steps: usize,
    /// Sealed incidents retained (oldest-drop).
    pub max_incidents: usize,
    /// Normalized journal events retained for cursor-based tailing.
    pub journal_tail_capacity: usize,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            ring_capacity: 64,
            pre_steps: 8,
            post_steps: 4,
            max_incidents: 16,
            journal_tail_capacity: 512,
        }
    }
}

impl RecorderConfig {
    /// The default configuration (64-record ring, 8 pre / 4 post,
    /// 16 incidents, 512 tail events).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the step-record ring capacity (clamped to at least 1).
    pub fn with_ring_capacity(mut self, capacity: usize) -> Self {
        self.ring_capacity = capacity.max(1);
        self
    }

    /// Set the pre-trigger context window, in steps.
    pub fn with_pre_steps(mut self, pre_steps: usize) -> Self {
        self.pre_steps = pre_steps;
        self
    }

    /// Set the post-trigger context window, in steps.
    pub fn with_post_steps(mut self, post_steps: usize) -> Self {
        self.post_steps = post_steps;
        self
    }

    /// Set the sealed-incident retention bound (clamped to at least 1).
    pub fn with_max_incidents(mut self, max_incidents: usize) -> Self {
        self.max_incidents = max_incidents.max(1);
        self
    }

    /// Set the journal-tail retention bound (clamped to at least 1).
    pub fn with_journal_tail_capacity(mut self, capacity: usize) -> Self {
        self.journal_tail_capacity = capacity.max(1);
        self
    }
}

/// An open capture accumulating its post window.
#[derive(Debug)]
struct PendingIncident {
    trigger: IncidentTrigger,
    step: u64,
    at_secs: f64,
    pre_steps: usize,
    records: Vec<StepRecord>,
    remaining_post: usize,
}

#[derive(Debug, Default)]
struct RecorderState {
    /// The bounded per-step ring, oldest first.
    ring: VecDeque<StepRecord>,
    /// Normalized journal tail with recorder stream sequence numbers.
    tail: VecDeque<EventSnapshot>,
    tail_next_seq: u64,
    tail_dropped: u64,
    /// Next raw journal sequence number to capture.
    journal_cursor: u64,
    /// Raw journal events that were evicted before capture could read
    /// them (capture lags by at most one step, so this stays 0 unless a
    /// single step journals more than the source ring holds).
    journal_missed: u64,
    /// Next raw trace-log index to capture.
    trace_cursor: usize,
    /// Last observed totals of sim-domain counters.
    counter_totals: BTreeMap<(String, String), u64>,
    /// Open captures, in trigger order.
    pending: Vec<PendingIncident>,
    /// Sealed incidents, oldest first (bounded).
    incidents: VecDeque<Incident>,
    /// Incidents sealed over the recorder's lifetime.
    sealed_total: u64,
    /// Steps observed over the recorder's lifetime.
    steps_observed: u64,
}

/// The bounded, allocation-stable flight recorder. One per scenario,
/// fed by the simulation's control thread between steps and read
/// concurrently by the serving gateway.
#[derive(Debug)]
pub struct FlightRecorder {
    config: RecorderConfig,
    master_seed: u64,
    state: Mutex<RecorderState>,
}

impl FlightRecorder {
    /// A recorder for a scenario with the given master seed (folded
    /// into every incident id).
    pub fn new(config: RecorderConfig, master_seed: u64) -> Self {
        FlightRecorder {
            config,
            master_seed,
            state: Mutex::new(RecorderState::default()),
        }
    }

    /// The configuration the recorder was built with.
    pub fn config(&self) -> &RecorderConfig {
        &self.config
    }

    /// The scenario master seed incident ids derive from.
    pub fn master_seed(&self) -> u64 {
        self.master_seed
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RecorderState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Capture one step: drain the journal and trace log since the last
    /// capture, compute counter deltas, record the SLO verdict, advance
    /// open captures and seal any whose post window closed, and open a
    /// new capture per trigger. Called by the scenario's control thread
    /// once per step, after the step's work (engine quiet).
    pub fn observe_step(
        &self,
        step: u64,
        at_secs: f64,
        telemetry: &Telemetry,
        slo: Option<&SloVerdict>,
        triggers: &[IncidentTrigger],
    ) {
        // Read the telemetry domain before taking the recorder lock —
        // the journal/trace/registry have their own locks and the
        // gateway may be reading the recorder concurrently.
        let raw_events = telemetry.events();
        let trace_log = telemetry.trace_log();
        let mut s = self.lock();
        s.steps_observed += 1;

        // Journal: take everything at or past the cursor, count what
        // the source ring evicted before we could read it, and
        // normalize by (time, component) — within one component the
        // sequence is deterministic; cross-component interleaving
        // within a step varies with worker scheduling.
        let mut fresh: Vec<&crate::Event> = raw_events
            .iter()
            .filter(|e| e.seq >= s.journal_cursor)
            .collect();
        if let Some(first) = fresh.first() {
            s.journal_missed += first.seq - s.journal_cursor;
        }
        fresh.sort_by(|a, b| {
            (a.at.as_secs().to_bits(), &a.component, a.seq).cmp(&(
                b.at.as_secs().to_bits(),
                &b.component,
                b.seq,
            ))
        });
        if let Some(last) = raw_events.last() {
            s.journal_cursor = last.seq + 1;
        }
        let mut events = Vec::with_capacity(fresh.len());
        for e in fresh {
            let seq = s.tail_next_seq;
            s.tail_next_seq += 1;
            let snap = EventSnapshot {
                seq,
                at_secs: e.at.as_secs(),
                component: e.component.clone(),
                kind: e.kind.clone(),
                detail: e.detail.clone(),
            };
            if s.tail.len() == self.config.journal_tail_capacity {
                s.tail.pop_front();
                s.tail_dropped += 1;
            }
            s.tail.push_back(snap.clone());
            events.push(snap);
        }

        // Trace hops recorded since the last capture: the *set* is
        // deterministic per step (each step's recording is), the raw
        // order is not — canonical-sort the delta.
        let (new_hops, new_len) = trace_log.hops_from(s.trace_cursor);
        s.trace_cursor = new_len;
        let mut hops: Vec<HopRecord> = new_hops.iter().map(HopRecord::from).collect();
        hops.sort_by(|a, b| {
            (
                a.sim_start.to_bits(),
                a.sim_end.to_bits(),
                a.trace,
                &a.kind,
                a.attempt,
                &a.detail,
            )
                .cmp(&(
                    b.sim_start.to_bits(),
                    b.sim_end.to_bits(),
                    b.trace,
                    &b.kind,
                    b.attempt,
                    &b.detail,
                ))
        });

        // Sim-domain counter movement and gauge readings.
        let registry = telemetry.registry();
        let mut counter_deltas = Vec::new();
        for (component, name, counter) in registry.counters() {
            if !sim_domain(&component) {
                continue;
            }
            let total = counter.get();
            let key = (component, name);
            let prev = s.counter_totals.get(&key).copied().unwrap_or(0);
            if total != prev {
                counter_deltas.push(CounterDelta {
                    component: key.0.clone(),
                    name: key.1.clone(),
                    delta: total.saturating_sub(prev),
                    total,
                });
            }
            s.counter_totals.insert(key, total);
        }
        let gauges = registry
            .gauges()
            .into_iter()
            .filter(|(component, _, _)| sim_domain(component))
            .map(|(component, name, g)| GaugeSample {
                component,
                name,
                value: g.get(),
            })
            .collect();

        let record = StepRecord {
            step,
            at_secs,
            events,
            hops,
            counter_deltas,
            gauges,
            slo: slo.cloned(),
        };

        // Advance open captures with the fresh record; seal the closed
        // ones in trigger order.
        let mut sealed = Vec::new();
        s.pending.retain_mut(|p| {
            p.records.push(record.clone());
            if p.remaining_post == 0 {
                sealed.push(Incident {
                    schema_version: INCIDENT_SCHEMA_VERSION,
                    id: incident_id(self.master_seed, &p.trigger, p.step),
                    trigger: p.trigger.clone(),
                    step: p.step,
                    at_secs: p.at_secs,
                    pre_steps: p.pre_steps,
                    post_steps: p.records.len() - p.pre_steps - 1,
                    records: std::mem::take(&mut p.records),
                });
                false
            } else {
                p.remaining_post -= 1;
                true
            }
        });
        for incident in sealed {
            if s.incidents.len() == self.config.max_incidents {
                s.incidents.pop_front();
            }
            s.incidents.push_back(incident);
            s.sealed_total += 1;
        }

        // Open one capture per (deduplicated) trigger: the ring tail is
        // the pre window, this step's record is the trigger record.
        let mut seen: Vec<&IncidentTrigger> = Vec::new();
        for trigger in triggers {
            if seen.contains(&trigger) || s.pending.len() >= self.config.max_incidents {
                continue;
            }
            seen.push(trigger);
            let pre: Vec<StepRecord> = {
                let skip = s.ring.len().saturating_sub(self.config.pre_steps);
                s.ring.iter().skip(skip).cloned().collect()
            };
            let pre_steps = pre.len();
            let mut records = pre;
            records.push(record.clone());
            // A zero-post capture seals immediately.
            if self.config.post_steps == 0 {
                let incident = Incident {
                    schema_version: INCIDENT_SCHEMA_VERSION,
                    id: incident_id(self.master_seed, trigger, step),
                    trigger: trigger.clone(),
                    step,
                    at_secs,
                    pre_steps,
                    post_steps: 0,
                    records,
                };
                if s.incidents.len() == self.config.max_incidents {
                    s.incidents.pop_front();
                }
                s.incidents.push_back(incident);
                s.sealed_total += 1;
            } else {
                s.pending.push(PendingIncident {
                    trigger: trigger.clone(),
                    step,
                    at_secs,
                    pre_steps,
                    records,
                    remaining_post: self.config.post_steps - 1,
                });
            }
        }

        // Finally, the fresh record enters the ring.
        if s.ring.len() == self.config.ring_capacity {
            s.ring.pop_front();
        }
        s.ring.push_back(record);
    }

    /// Steps observed over the recorder's lifetime.
    pub fn steps_observed(&self) -> u64 {
        self.lock().steps_observed
    }

    /// Step records currently retained in the ring.
    pub fn ring_len(&self) -> usize {
        self.lock().ring.len()
    }

    /// Captures currently accumulating their post window.
    pub fn pending_captures(&self) -> usize {
        self.lock().pending.len()
    }

    /// Incidents sealed over the recorder's lifetime (retention may
    /// have evicted early ones).
    pub fn sealed_total(&self) -> u64 {
        self.lock().sealed_total
    }

    /// Summaries of the retained sealed incidents, oldest first.
    pub fn incidents(&self) -> Vec<IncidentSummary> {
        self.lock()
            .incidents
            .iter()
            .map(Incident::summary)
            .collect()
    }

    /// The retained sealed incident with the given id.
    pub fn incident(&self, id: u64) -> Option<Incident> {
        self.lock().incidents.iter().find(|i| i.id == id).cloned()
    }

    /// One page of the normalized journal tail, starting at `cursor`
    /// (a recorder stream sequence number; pass 0 to start from the
    /// oldest retained event, then feed `next_cursor` back in). At most
    /// `max` events are returned; `dropped` counts events the cursor
    /// missed to the bounded tail's oldest-drop eviction.
    pub fn journal_tail(&self, cursor: u64, max: usize) -> JournalBatch {
        let s = self.lock();
        let oldest = s.tail.front().map(|e| e.seq).unwrap_or(s.tail_next_seq);
        let dropped = oldest.saturating_sub(cursor);
        let events: Vec<EventSnapshot> = s
            .tail
            .iter()
            .filter(|e| e.seq >= cursor)
            .take(max)
            .cloned()
            .collect();
        let next_cursor = events
            .last()
            .map(|e| e.seq + 1)
            .unwrap_or(oldest.max(cursor));
        JournalBatch {
            next_cursor,
            dropped,
            events,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpros_core::SimTime;

    fn observe(rec: &FlightRecorder, t: &Telemetry, step: u64, triggers: &[IncidentTrigger]) {
        t.set_sim_now(SimTime::from_secs(step as f64));
        rec.observe_step(step, step as f64, t, None, triggers);
    }

    #[test]
    fn ring_is_bounded_and_oldest_drop() {
        let rec = FlightRecorder::new(RecorderConfig::new().with_ring_capacity(4), 7);
        let t = Telemetry::new();
        for step in 1..=10 {
            observe(&rec, &t, step, &[]);
        }
        assert_eq!(rec.ring_len(), 4);
        assert_eq!(rec.steps_observed(), 10);
    }

    #[test]
    fn trigger_seals_incident_with_pre_and_post_windows() {
        let config = RecorderConfig::new()
            .with_pre_steps(2)
            .with_post_steps(2)
            .with_ring_capacity(8);
        let rec = FlightRecorder::new(config, 7);
        let t = Telemetry::new();
        for step in 1..=4 {
            observe(&rec, &t, step, &[]);
        }
        t.event("sim", "boom", "it happened");
        observe(
            &rec,
            &t,
            5,
            &[IncidentTrigger::Manual { label: "op".into() }],
        );
        assert_eq!(rec.pending_captures(), 1);
        assert!(rec.incidents().is_empty());
        observe(&rec, &t, 6, &[]);
        observe(&rec, &t, 7, &[]);
        assert_eq!(rec.pending_captures(), 0);
        let incidents = rec.incidents();
        assert_eq!(incidents.len(), 1);
        let incident = rec.incident(incidents[0].id).unwrap();
        assert_eq!(incident.step, 5);
        assert_eq!(incident.pre_steps, 2);
        assert_eq!(incident.post_steps, 2);
        let steps: Vec<u64> = incident.records.iter().map(|r| r.step).collect();
        assert_eq!(steps, vec![3, 4, 5, 6, 7]);
        // The trigger step's record carries the journaled event.
        assert_eq!(incident.records[2].events.len(), 1);
        assert_eq!(incident.records[2].events[0].kind, "boom");
        // Roundtrip through the interchange form.
        let back = Incident::from_json(&incident.to_json().unwrap()).unwrap();
        assert_eq!(back, incident);
    }

    #[test]
    fn incident_id_is_deterministic_and_trigger_sensitive() {
        let a = IncidentTrigger::DcCrashed { dc: 2 };
        let b = IncidentTrigger::DcCrashed { dc: 3 };
        assert_eq!(incident_id(7, &a, 80), incident_id(7, &a, 80));
        assert_ne!(incident_id(7, &a, 80), incident_id(7, &b, 80));
        assert_ne!(incident_id(7, &a, 80), incident_id(7, &a, 81));
        assert_ne!(incident_id(7, &a, 80), incident_id(8, &a, 80));
        assert_ne!(
            incident_id(7, &IncidentTrigger::SloViolation, 80),
            incident_id(7, &IncidentTrigger::PdmeCrashRestore, 80)
        );
    }

    #[test]
    fn journal_tail_is_cursor_addressable_and_bounded() {
        let rec = FlightRecorder::new(RecorderConfig::new().with_journal_tail_capacity(3), 7);
        let t = Telemetry::new();
        for step in 1..=5u64 {
            t.event("net", "drop", format!("frame {step}"));
            observe(&rec, &t, step, &[]);
        }
        // 5 events through a capacity-3 tail: the first two evicted.
        let batch = rec.journal_tail(0, 16);
        assert_eq!(batch.dropped, 2);
        assert_eq!(batch.events.len(), 3);
        assert_eq!(batch.events[0].detail, "frame 3");
        assert_eq!(batch.next_cursor, 5);
        // Resuming from the returned cursor sees nothing new.
        let empty = rec.journal_tail(batch.next_cursor, 16);
        assert_eq!(empty.dropped, 0);
        assert!(empty.events.is_empty());
        assert_eq!(empty.next_cursor, batch.next_cursor);
        // New events appear at the cursor.
        t.event("net", "drop", "frame 6");
        observe(&rec, &t, 6, &[]);
        let more = rec.journal_tail(batch.next_cursor, 16);
        assert_eq!(more.events.len(), 1);
        assert_eq!(more.events[0].detail, "frame 6");
    }

    #[test]
    fn exec_and_gateway_components_are_filtered_from_capture() {
        let rec = FlightRecorder::new(RecorderConfig::new().with_post_steps(0), 7);
        let t = Telemetry::new();
        t.counter("exec", "jobs").add(5);
        t.counter("gateway", "requests").add(9);
        t.counter("net", "sent").add(3);
        observe(&rec, &t, 1, &[IncidentTrigger::SloViolation]);
        let incident = rec.incident(rec.incidents()[0].id).unwrap();
        let record = incident.records.last().unwrap();
        let components: Vec<&str> = record
            .counter_deltas
            .iter()
            .map(|d| d.component.as_str())
            .collect();
        assert_eq!(components, vec!["net"]);
    }
}

//! Declarative service-level objectives over telemetry snapshots.
//!
//! The paper's pitch for MPROS is operational: condition reports must
//! reach the PDME *in time to matter*. [`SloPolicy`] states that
//! contract as data — a small rule grammar over the metric registry —
//! and [`SloWatchdog`] evaluates it each supervise pass, journaling
//! edge-triggered `slo_violation` / `slo_recovered` events and keeping
//! a machine-readable [`SloVerdict`] for CI gates.
//!
//! Rules reference only **simulated-time** metrics (latency histograms
//! in sim seconds, staleness gauges, loss counters), so a verdict is
//! deterministic for a seeded scenario regardless of worker count or
//! host speed.

use crate::snapshot::TelemetrySnapshot;
use crate::Telemetry;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// One declarative objective over the metric registry.
#[derive(Debug, Clone, PartialEq)]
pub enum SloRule {
    /// The histogram `(component, name)` must have p95 ≤ `max`.
    /// Passes vacuously while the histogram is empty.
    HistogramP95Max {
        /// Owning component.
        component: String,
        /// Histogram name.
        name: String,
        /// Inclusive p95 budget.
        max: f64,
    },
    /// The gauge `(component, name)` must be ≤ `max`. Passes while the
    /// gauge is unregistered.
    GaugeMax {
        /// Owning component.
        component: String,
        /// Gauge name.
        name: String,
        /// Inclusive budget.
        max: f64,
    },
    /// The counter `(component, name)` must still be zero.
    CounterZero {
        /// Owning component.
        component: String,
        /// Counter name.
        name: String,
    },
    /// The ratio of two counters must be ≤ `max` (0 when the
    /// denominator is 0).
    CounterRatioMax {
        /// Numerator `(component, name)`.
        num: (String, String),
        /// Denominator `(component, name)`.
        den: (String, String),
        /// Inclusive ratio budget.
        max: f64,
    },
}

impl SloRule {
    /// Stable label naming the objective in verdicts and journal events.
    pub fn label(&self) -> String {
        match self {
            SloRule::HistogramP95Max {
                component, name, ..
            } => format!("p95({component}.{name})"),
            SloRule::GaugeMax {
                component, name, ..
            } => format!("max({component}.{name})"),
            SloRule::CounterZero { component, name } => format!("zero({component}.{name})"),
            SloRule::CounterRatioMax { num, den, .. } => {
                format!("ratio({}.{}/{}.{})", num.0, num.1, den.0, den.1)
            }
        }
    }

    /// Evaluate against one snapshot.
    pub fn evaluate(&self, snap: &TelemetrySnapshot) -> SloCheck {
        let (value, limit) = match self {
            SloRule::HistogramP95Max {
                component,
                name,
                max,
            } => {
                let p95 = snap
                    .histogram(component, name)
                    .and_then(|h| h.p95)
                    .unwrap_or(0.0);
                (p95, *max)
            }
            SloRule::GaugeMax {
                component,
                name,
                max,
            } => (snap.gauge(component, name).unwrap_or(0.0), *max),
            SloRule::CounterZero { component, name } => (snap.counter(component, name) as f64, 0.0),
            SloRule::CounterRatioMax { num, den, max } => {
                let d = snap.counter(&den.0, &den.1);
                let n = snap.counter(&num.0, &num.1);
                let ratio = if d == 0 { 0.0 } else { n as f64 / d as f64 };
                (ratio, *max)
            }
        };
        SloCheck {
            rule: self.label(),
            pass: value <= limit,
            value,
            limit,
        }
    }
}

/// One rule's outcome within a verdict.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloCheck {
    /// The rule's [`SloRule::label`].
    pub rule: String,
    /// Whether the objective held.
    pub pass: bool,
    /// Observed value.
    pub value: f64,
    /// Inclusive budget the value was compared against.
    pub limit: f64,
}

/// Machine-readable outcome of one watchdog pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SloVerdict {
    /// Simulated seconds the policy was evaluated at.
    pub at_secs: f64,
    /// Whether every rule held.
    pub pass: bool,
    /// Per-rule outcomes, in policy order.
    pub checks: Vec<SloCheck>,
}

impl SloVerdict {
    /// A passing verdict of an empty policy.
    pub fn empty(at_secs: f64) -> SloVerdict {
        SloVerdict {
            at_secs,
            pass: true,
            checks: Vec::new(),
        }
    }

    /// Render as pretty-printed JSON.
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// The failing rule labels.
    pub fn failing(&self) -> Vec<&str> {
        self.checks
            .iter()
            .filter(|c| !c.pass)
            .map(|c| c.rule.as_str())
            .collect()
    }
}

/// An ordered set of objectives. The default policy is empty (every
/// scenario passes vacuously); opt in with [`SloPolicy::standard`] or
/// by pushing rules.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SloPolicy {
    /// The rules, evaluated in order.
    pub rules: Vec<SloRule>,
}

impl SloPolicy {
    /// No objectives.
    pub fn none() -> SloPolicy {
        SloPolicy::default()
    }

    /// Whether any objective is configured.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// The shipboard contract from the ISSUE: p95 end-to-end report
    /// latency, maximum DC staleness, zero expired (undeliverable)
    /// reports, and a bounded fusion-conflict rate.
    pub fn standard(
        latency_p95_max_s: f64,
        staleness_max_s: f64,
        conflict_rate_max: f64,
    ) -> SloPolicy {
        SloPolicy {
            rules: vec![
                SloRule::HistogramP95Max {
                    component: "pdme".into(),
                    name: "report_latency_s".into(),
                    max: latency_p95_max_s,
                },
                SloRule::GaugeMax {
                    component: "pdme".into(),
                    name: "dc_staleness_max".into(),
                    max: staleness_max_s,
                },
                SloRule::CounterZero {
                    component: "net".into(),
                    name: "expired".into(),
                },
                SloRule::CounterRatioMax {
                    num: ("fusion".into(), "conflicts".into()),
                    den: ("fusion".into(), "reports_ingested".into()),
                    max: conflict_rate_max,
                },
            ],
        }
    }

    /// Append a rule (builder-style).
    pub fn with_rule(mut self, rule: SloRule) -> SloPolicy {
        self.rules.push(rule);
        self
    }
}

/// Evaluates an [`SloPolicy`] against live telemetry, journaling
/// violation/recovery *edges* (not every failing pass) under the `slo`
/// component.
#[derive(Debug, Clone)]
pub struct SloWatchdog {
    policy: SloPolicy,
    failing: BTreeSet<String>,
    last: Option<SloVerdict>,
}

impl SloWatchdog {
    /// A watchdog for one policy.
    pub fn new(policy: SloPolicy) -> SloWatchdog {
        SloWatchdog {
            policy,
            failing: BTreeSet::new(),
            last: None,
        }
    }

    /// The policy under evaluation.
    pub fn policy(&self) -> &SloPolicy {
        &self.policy
    }

    /// The most recent verdict, if any pass has run.
    pub fn last_verdict(&self) -> Option<&SloVerdict> {
        self.last.as_ref()
    }

    /// Evaluate every rule against a fresh snapshot of `telemetry`,
    /// journal edges, and return (a clone of) the verdict.
    pub fn evaluate(&mut self, telemetry: &Telemetry) -> SloVerdict {
        let snap = telemetry.snapshot();
        let checks: Vec<SloCheck> = self
            .policy
            .rules
            .iter()
            .map(|r| r.evaluate(&snap))
            .collect();
        for c in &checks {
            if !c.pass && self.failing.insert(c.rule.clone()) {
                telemetry.event(
                    "slo",
                    "slo_violation",
                    format!("{} value={:.6} limit={:.6}", c.rule, c.value, c.limit),
                );
            } else if c.pass && self.failing.remove(&c.rule) {
                telemetry.event(
                    "slo",
                    "slo_recovered",
                    format!("{} value={:.6} limit={:.6}", c.rule, c.value, c.limit),
                );
            }
        }
        let verdict = SloVerdict {
            at_secs: snap.at_secs,
            pass: checks.iter().all(|c| c.pass),
            checks,
        };
        self.last = Some(verdict.clone());
        verdict
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpros_core::SimTime;

    #[test]
    fn empty_policy_always_passes() {
        let t = Telemetry::new();
        let mut w = SloWatchdog::new(SloPolicy::none());
        let v = w.evaluate(&t);
        assert!(v.pass);
        assert!(v.checks.is_empty());
        assert!(t.events().is_empty());
    }

    #[test]
    fn counter_zero_trips_and_recovers_on_edges_only() {
        let t = Telemetry::new();
        t.set_sim_now(SimTime::from_secs(10.0));
        let mut w = SloWatchdog::new(SloPolicy::none().with_rule(SloRule::CounterZero {
            component: "net".into(),
            name: "expired".into(),
        }));
        assert!(w.evaluate(&t).pass);
        t.counter("net", "expired").add(2);
        assert!(!w.evaluate(&t).pass);
        assert!(!w.evaluate(&t).pass);
        let violations = t
            .events()
            .iter()
            .filter(|e| e.kind == "slo_violation")
            .count();
        assert_eq!(violations, 1, "edge-triggered, not per-pass");
        assert_eq!(
            w.last_verdict().unwrap().failing(),
            vec!["zero(net.expired)"]
        );
    }

    #[test]
    fn histogram_rule_vacuous_when_empty_then_enforced() {
        let t = Telemetry::new();
        let mut w = SloWatchdog::new(SloPolicy::none().with_rule(SloRule::HistogramP95Max {
            component: "pdme".into(),
            name: "report_latency_s".into(),
            max: 0.1,
        }));
        assert!(w.evaluate(&t).pass, "empty histogram passes vacuously");
        for _ in 0..100 {
            t.histogram("pdme", "report_latency_s").record(0.5);
        }
        let v = w.evaluate(&t);
        assert!(!v.pass);
        assert!(v.checks[0].value > 0.1);
    }

    #[test]
    fn ratio_rule_handles_zero_denominator() {
        let t = Telemetry::new();
        let rule = SloRule::CounterRatioMax {
            num: ("fusion".into(), "conflicts".into()),
            den: ("fusion".into(), "reports_ingested".into()),
            max: 0.25,
        };
        let mut w = SloWatchdog::new(SloPolicy::none().with_rule(rule));
        assert!(w.evaluate(&t).pass, "0/0 treated as 0");
        t.counter("fusion", "reports_ingested").add(4);
        t.counter("fusion", "conflicts").add(2);
        assert!(!w.evaluate(&t).pass, "2/4 exceeds 0.25");
        let recovered = {
            t.counter("fusion", "reports_ingested").add(96);
            w.evaluate(&t)
        };
        assert!(recovered.pass, "2/100 within budget");
        assert_eq!(
            t.events()
                .iter()
                .filter(|e| e.kind == "slo_recovered")
                .count(),
            1
        );
    }

    #[test]
    fn standard_policy_names_the_four_contract_rules() {
        let p = SloPolicy::standard(120.0, 90.0, 0.5);
        let labels: Vec<String> = p.rules.iter().map(|r| r.label()).collect();
        assert_eq!(
            labels,
            vec![
                "p95(pdme.report_latency_s)",
                "max(pdme.dc_staleness_max)",
                "zero(net.expired)",
                "ratio(fusion.conflicts/fusion.reports_ingested)",
            ]
        );
    }

    #[test]
    fn verdict_serializes_to_json() {
        let t = Telemetry::new();
        let mut w = SloWatchdog::new(SloPolicy::standard(1.0, 1.0, 1.0));
        let v = w.evaluate(&t);
        let json = v.to_json().unwrap();
        assert!(json.contains("\"pass\": true"));
        assert!(json.contains("zero(net.expired)"));
    }
}

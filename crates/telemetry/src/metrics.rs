//! The lock-free metrics registry.
//!
//! Three instrument kinds, all interior-mutable through plain atomics so
//! the hot paths (DC survey loop, network delivery, PDME ingest) never
//! take a lock once they hold a handle:
//!
//! * [`Counter`] — monotone `u64`;
//! * [`Gauge`] — latest-wins `f64` (with a monotone-max variant for
//!   watermarks like `pdme.dc_staleness_max`);
//! * [`Histogram`] — log-bucketed `f64` distribution with `p50`/`p95`/
//!   `p99` estimation, used for latencies in seconds.
//!
//! The [`Registry`] maps `(component, metric)` keys to shared handles.
//! Registration takes a lock (it happens once, at wiring time);
//! recording afterwards is lock-free on the `Arc` handles.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Counter::default()
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.value.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A latest-value instrument (stored as `f64` bits in an atomic).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Raise the value to `v` if `v` is larger (watermark semantics).
    pub fn set_max(&self, v: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        while v > f64::from_bits(cur) {
            match self.bits.compare_exchange_weak(
                cur,
                v.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// Number of histogram buckets.
pub const HISTOGRAM_BUCKETS: usize = 96;
/// Upper bound of bucket 0, in the histogram's unit (seconds for all the
/// latency histograms MPROS registers).
const LOWEST: f64 = 1e-9;
/// Geometric growth per bucket: five buckets per decade, so 95 buckets
/// span 19 decades — nanoseconds to decades of simulated time.
const GROWTH: f64 = 1.584_893_192_461_113_5; // 10^(1/5)

/// Upper bound of bucket `i`.
fn bucket_upper(i: usize) -> f64 {
    LOWEST * GROWTH.powi(i as i32)
}

/// Bucket index for a (non-negative, finite) value.
fn bucket_index(v: f64) -> usize {
    if v <= LOWEST {
        return 0;
    }
    let idx = ((v / LOWEST).log10() * 5.0).ceil() as isize;
    idx.clamp(0, HISTOGRAM_BUCKETS as isize - 1) as usize
}

/// A log-bucketed distribution of non-negative `f64` samples.
///
/// Quantiles are estimated as the upper bound of the bucket where the
/// cumulative count crosses the target rank, clamped to the exactly
/// tracked `[min, max]`, which keeps every reported quantile inside the
/// observed range and monotone in the requested probability.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Record one sample. Negative samples are clamped to zero; NaN is
    /// ignored.
    pub fn record(&self, v: f64) {
        if v.is_nan() {
            return;
        }
        let v = v.max(0.0);
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        // f64 accumulate / min / max via CAS on the bit patterns.
        Self::update(&self.sum_bits, |cur| cur + v);
        Self::update(&self.min_bits, |cur| cur.min(v));
        Self::update(&self.max_bits, |cur| cur.max(v));
    }

    fn update(bits: &AtomicU64, f: impl Fn(f64) -> f64) {
        let mut cur = bits.load(Ordering::Relaxed);
        loop {
            let next = f(f64::from_bits(cur)).to_bits();
            if next == cur {
                return;
            }
            match bits.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample, if any.
    pub fn min(&self) -> Option<f64> {
        (self.count() > 0).then(|| f64::from_bits(self.min_bits.load(Ordering::Relaxed)))
    }

    /// Largest recorded sample, if any.
    pub fn max(&self) -> Option<f64> {
        (self.count() > 0).then(|| f64::from_bits(self.max_bits.load(Ordering::Relaxed)))
    }

    /// Mean of recorded samples, if any.
    pub fn mean(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| f64::from_bits(self.sum_bits.load(Ordering::Relaxed)) / n as f64)
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`), `None` while empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let n = self.count();
        if n == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = ((q * n as f64).ceil() as u64).clamp(1, n);
        let mut cumulative = 0u64;
        let mut estimate = bucket_upper(HISTOGRAM_BUCKETS - 1);
        for (i, b) in self.buckets.iter().enumerate() {
            cumulative += b.load(Ordering::Relaxed);
            if cumulative >= rank {
                estimate = bucket_upper(i);
                break;
            }
        }
        let (lo, hi) = (self.min()?, self.max()?);
        Some(estimate.clamp(lo, hi))
    }

    /// Median estimate.
    pub fn p50(&self) -> Option<f64> {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    pub fn p95(&self) -> Option<f64> {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    pub fn p99(&self) -> Option<f64> {
        self.quantile(0.99)
    }
}

type Key = (String, String);

/// Shared map from `(component, metric)` to instrument handles.
///
/// Components look their handles up once at wiring time and then record
/// through the `Arc` without touching the registry again.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<Key, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<Key, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<Key, Arc<Histogram>>>,
}

fn get_or_insert<T: Default>(
    map: &RwLock<BTreeMap<Key, Arc<T>>>,
    component: &str,
    name: &str,
) -> Arc<T> {
    let key = (component.to_owned(), name.to_owned());
    if let Some(existing) = map.read().unwrap_or_else(PoisonError::into_inner).get(&key) {
        return Arc::clone(existing);
    }
    let mut w = map.write().unwrap_or_else(PoisonError::into_inner);
    Arc::clone(w.entry(key).or_default())
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The counter `(component, name)`, created on first use.
    pub fn counter(&self, component: &str, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, component, name)
    }

    /// The gauge `(component, name)`, created on first use.
    pub fn gauge(&self, component: &str, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, component, name)
    }

    /// The histogram `(component, name)`, created on first use.
    pub fn histogram(&self, component: &str, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, component, name)
    }

    /// Every counter, sorted by key.
    pub fn counters(&self) -> Vec<(String, String, Arc<Counter>)> {
        self.counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|((c, n), v)| (c.clone(), n.clone(), Arc::clone(v)))
            .collect()
    }

    /// Every gauge, sorted by key.
    pub fn gauges(&self) -> Vec<(String, String, Arc<Gauge>)> {
        self.gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|((c, n), v)| (c.clone(), n.clone(), Arc::clone(v)))
            .collect()
    }

    /// Every histogram, sorted by key.
    pub fn histograms(&self) -> Vec<(String, String, Arc<Histogram>)> {
        self.histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|((c, n), v)| (c.clone(), n.clone(), Arc::clone(v)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
        g.set_max(1.0); // lower: ignored
        assert_eq!(g.get(), 2.5);
        g.set_max(7.0);
        assert_eq!(g.get(), 7.0);
    }

    #[test]
    fn histogram_tracks_exact_extremes_and_mean() {
        let h = Histogram::new();
        assert!(h.quantile(0.5).is_none());
        for v in [0.001, 0.002, 0.004, 0.100] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.min(), Some(0.001));
        assert_eq!(h.max(), Some(0.100));
        let mean = h.mean().unwrap();
        assert!((mean - 0.026_75).abs() < 1e-12);
        let p50 = h.p50().unwrap();
        assert!((0.001..=0.100).contains(&p50));
        // p99 is pulled down to the exact max.
        assert_eq!(h.p99(), Some(0.100));
    }

    #[test]
    fn histogram_ignores_nan_and_clamps_negatives() {
        let h = Histogram::new();
        h.record(f64::NAN);
        assert_eq!(h.count(), 0);
        h.record(-3.0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.min(), Some(0.0));
    }

    #[test]
    fn bucket_index_is_monotone() {
        let mut last = 0;
        let mut v = 1e-10;
        while v < 1e9 {
            let i = bucket_index(v);
            assert!(i >= last, "index regressed at {v}");
            last = i;
            v *= 1.31;
        }
    }

    #[test]
    fn registry_reuses_handles() {
        let r = Registry::new();
        let a = r.counter("net", "sent");
        let b = r.counter("net", "sent");
        a.inc();
        assert_eq!(b.get(), 1);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(r.counters().len(), 1);
        let (c, n, _) = &r.counters()[0];
        assert_eq!((c.as_str(), n.as_str()), ("net", "sent"));
    }
}

//! Property and concurrency tests for the telemetry substrate.
//!
//! * Histogram quantiles must be monotone in `q` and bounded by the
//!   exact observed min/max, whatever the sample distribution.
//! * Counters and histograms must stay exact when hammered from many
//!   threads at once (the DC-per-worker fleet shape of `exp_throughput`).

use crossbeam::thread;
use mpros_telemetry::{Histogram, Stage, Telemetry};
use proptest::prelude::*;

proptest! {
    #[test]
    fn quantiles_are_monotone_and_bounded(
        samples in proptest::collection::vec(0.0f64..1.0e6, 1..200),
        qa in 0.0f64..=1.0,
        qb in 0.0f64..=1.0,
    ) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let (qlo, qhi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        let vlo = h.quantile(qlo).unwrap();
        let vhi = h.quantile(qhi).unwrap();
        prop_assert!(vlo <= vhi, "quantile not monotone: q{qlo}={vlo} > q{qhi}={vhi}");
        for v in [vlo, vhi] {
            prop_assert!(v >= lo, "quantile {v} below observed min {lo}");
            prop_assert!(v <= hi, "quantile {v} above observed max {hi}");
        }
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    #[test]
    fn extremes_are_exact(samples in proptest::collection::vec(0.0f64..1.0e9, 1..100)) {
        let h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let lo = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(h.min(), Some(lo));
        prop_assert_eq!(h.max(), Some(hi));
    }
}

#[test]
fn counters_survive_scoped_thread_hammering() {
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let t = Telemetry::new();
    let counter = t.counter("net", "sent");
    thread::scope(|s| {
        for _ in 0..THREADS {
            let tel = t.clone();
            let c = std::sync::Arc::clone(&counter);
            s.spawn(move |_| {
                let h = tel.histogram("net", "bus_transit_s");
                for i in 0..PER_THREAD {
                    c.inc();
                    h.record(i as f64 * 1e-6);
                    tel.record_span_wall(Stage::Fft, std::time::Duration::from_nanos(i));
                }
            });
        }
    })
    .expect("workers join");
    let expected = (THREADS as u64) * PER_THREAD;
    assert_eq!(counter.get(), expected);
    assert_eq!(t.histogram("net", "bus_transit_s").count(), expected);
    assert_eq!(t.span_wall(Stage::Fft).count(), expected);
    let h = t.histogram("net", "bus_transit_s");
    assert_eq!(h.min(), Some(0.0));
    assert_eq!(h.max(), Some((PER_THREAD - 1) as f64 * 1e-6));
    let p50 = h.p50().unwrap();
    let p99 = h.p99().unwrap();
    assert!(p50 <= p99);
}

//! Severity scores and the DLI gradient categories.
//!
//! §6.1 of the paper: the DLI expert system "has provided a numerical
//! severity score along with the fault diagnosis. This numerical score is
//! interpreted through empirical methods which map it into four gradient
//! categories... Slight, Moderate, Serious and Extreme and correspond to
//! expected lengths of time to failure described loosely as: no foreseeable
//! failure, failure in months, weeks, and days of operation."
//!
//! §7.2 normalizes severity onto `[0, 1]` for the reporting protocol.

use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A normalized severity score in `[0, 1]` (§7.2: "Maximal severity is
/// 1.0").
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Severity(f64);

impl Severity {
    /// No degradation at all.
    pub const NONE: Severity = Severity(0.0);
    /// Maximal severity.
    pub const MAX: Severity = Severity(1.0);

    /// Construct, clamping into `[0, 1]`. Panics on NaN.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "severity cannot be NaN");
        Severity(v.clamp(0.0, 1.0))
    }

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Map the numerical score onto the four DLI gradient categories. The
    /// empirical thresholds (0.25 / 0.5 / 0.75) split the unit interval
    /// evenly; the exact DLI break-points are proprietary, but the
    /// *mapping structure* (monotone score → four ordered grades) is what
    /// the paper specifies.
    pub fn grade(self) -> SeverityGrade {
        if self.0 < 0.25 {
            SeverityGrade::Slight
        } else if self.0 < 0.5 {
            SeverityGrade::Moderate
        } else if self.0 < 0.75 {
            SeverityGrade::Serious
        } else {
            SeverityGrade::Extreme
        }
    }

    /// The larger of two severities.
    pub fn max(self, other: Severity) -> Severity {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }
}

impl From<f64> for Severity {
    fn from(v: f64) -> Self {
        Severity::new(v)
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} ({})", self.0, self.grade())
    }
}

/// The four DLI gradient categories (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum SeverityGrade {
    /// No foreseeable failure.
    Slight,
    /// Failure expected within months.
    Moderate,
    /// Failure expected within weeks.
    Serious,
    /// Failure expected within days.
    Extreme,
}

impl SeverityGrade {
    /// All four grades in increasing order of urgency.
    pub const ALL: [SeverityGrade; 4] = [
        SeverityGrade::Slight,
        SeverityGrade::Moderate,
        SeverityGrade::Serious,
        SeverityGrade::Extreme,
    ];

    /// The loose time-to-failure interpretation the paper assigns to each
    /// grade.
    pub fn time_to_failure(self) -> TimeToFailure {
        match self {
            SeverityGrade::Slight => TimeToFailure::NoForeseeableFailure,
            SeverityGrade::Moderate => TimeToFailure::Months,
            SeverityGrade::Serious => TimeToFailure::Weeks,
            SeverityGrade::Extreme => TimeToFailure::Days,
        }
    }
}

impl fmt::Display for SeverityGrade {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            SeverityGrade::Slight => "Slight",
            SeverityGrade::Moderate => "Moderate",
            SeverityGrade::Serious => "Serious",
            SeverityGrade::Extreme => "Extreme",
        })
    }
}

/// Loose expected time to failure (§6.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeToFailure {
    /// "No foreseeable failure."
    NoForeseeableFailure,
    /// "Failure in months."
    Months,
    /// "Failure in weeks."
    Weeks,
    /// "Failure in days."
    Days,
}

impl TimeToFailure {
    /// A representative horizon for prognostic-vector construction: the
    /// nominal center of the loose category (6 months / 1.5 months /
    /// 2 weeks / 3 days). `None` for no-foreseeable-failure.
    pub fn nominal_horizon(self) -> Option<SimDuration> {
        match self {
            TimeToFailure::NoForeseeableFailure => None,
            TimeToFailure::Months => Some(SimDuration::from_months(1.5)),
            TimeToFailure::Weeks => Some(SimDuration::from_weeks(2.0)),
            TimeToFailure::Days => Some(SimDuration::from_days(3.0)),
        }
    }
}

impl fmt::Display for TimeToFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TimeToFailure::NoForeseeableFailure => "no foreseeable failure",
            TimeToFailure::Months => "failure in months",
            TimeToFailure::Weeks => "failure in weeks",
            TimeToFailure::Days => "failure in days",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn grades_cover_unit_interval_in_order() {
        assert_eq!(Severity::new(0.0).grade(), SeverityGrade::Slight);
        assert_eq!(Severity::new(0.3).grade(), SeverityGrade::Moderate);
        assert_eq!(Severity::new(0.6).grade(), SeverityGrade::Serious);
        assert_eq!(Severity::new(0.9).grade(), SeverityGrade::Extreme);
        assert_eq!(Severity::MAX.grade(), SeverityGrade::Extreme);
    }

    #[test]
    fn paper_grade_to_ttf_mapping() {
        // §6.1: Slight/Moderate/Serious/Extreme ↔ none/months/weeks/days.
        use SeverityGrade::*;
        assert_eq!(
            Slight.time_to_failure(),
            TimeToFailure::NoForeseeableFailure
        );
        assert_eq!(Moderate.time_to_failure(), TimeToFailure::Months);
        assert_eq!(Serious.time_to_failure(), TimeToFailure::Weeks);
        assert_eq!(Extreme.time_to_failure(), TimeToFailure::Days);
    }

    #[test]
    fn nominal_horizons_are_ordered() {
        let months = TimeToFailure::Months.nominal_horizon().unwrap();
        let weeks = TimeToFailure::Weeks.nominal_horizon().unwrap();
        let days = TimeToFailure::Days.nominal_horizon().unwrap();
        assert!(months > weeks && weeks > days);
        assert!(TimeToFailure::NoForeseeableFailure
            .nominal_horizon()
            .is_none());
    }

    #[test]
    fn severity_clamps() {
        assert_eq!(Severity::new(7.0).value(), 1.0);
        assert_eq!(Severity::new(-7.0).value(), 0.0);
    }

    proptest! {
        #[test]
        fn grade_is_monotone(a in 0.0..=1.0f64, b in 0.0..=1.0f64) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(Severity::new(lo).grade() <= Severity::new(hi).grade());
        }
    }
}

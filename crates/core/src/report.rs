//! The failure-prediction reporting protocol (§5.5, §7).
//!
//! "A standard protocol has been defined for reporting failure predictions
//! to the PDME for fusion and display" (§7.1). A [`ConditionReport`]
//! carries every field of §7.2 (diagnostic data) and §7.3 (prognostics
//! vector); the optional free-text fields may be blank, exactly as the
//! protocol allows.

use crate::belief::Belief;
use crate::condition::MachineCondition;
use crate::id::{DcId, KnowledgeSourceId, MachineId, ReportId};
use crate::prognostic::PrognosticVector;
use crate::severity::Severity;
use crate::time::SimTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A failure-prediction report as defined by §7 of the paper.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConditionReport {
    /// Unique id of this report instance (assigned by the emitting DC).
    pub id: ReportId,
    /// "DC ID – Identifier of the data concentrator source of this
    /// report" (§5.5).
    pub dc: DcId,
    /// "KnowledgeSourceID: The unique MPROS object ID for the instance of
    /// the knowledge source" (§7.2 item 1).
    pub knowledge_source: KnowledgeSourceId,
    /// "SensedObjectID: The unique MPROS object ID for the sensed object
    /// to which this report applies" (§7.2 item 2).
    pub machine: MachineId,
    /// "MachineConditionID: The unique MPROS object ID for the diagnosed
    /// machine condition" (§7.2 item 3).
    pub condition: MachineCondition,
    /// "Severity: Numeric value in range 0.0 to 1.0" (§7.2 item 4).
    pub severity: Severity,
    /// "Belief: Numeric value in range 0.0 to 1.0 indicating belief that
    /// this diagnosis is true" (§7.2 item 5).
    pub belief: Belief,
    /// "Timestamp: The timestamp for when this report should be considered
    /// 'effective'" (§7.2 item 8).
    pub timestamp: SimTime,
    /// "Explanation: An optional text string ... providing human-readable
    /// description of the diagnosis" (§7.2 item 6). Empty when absent.
    pub explanation: String,
    /// "Recommendations: An optional text string ... of the recommended
    /// actions to take" (§7.2 item 7). Empty when absent.
    pub recommendation: String,
    /// "Additional Information: An optional text string" (§7.2 item 9).
    pub additional_info: String,
    /// "Prognostic vector – This vector of time point, probability pairs
    /// indicate projected likelihood of failure" (§5.5, §7.3). May be
    /// empty for purely diagnostic reports.
    pub prognostic: PrognosticVector,
}

impl ConditionReport {
    /// Start building a report. `condition` and `belief` are the only
    /// semantically mandatory diagnostic payload; everything else has
    /// protocol-conformant defaults (§5.5: "not all reports need use all
    /// fields").
    pub fn builder(
        machine: MachineId,
        condition: MachineCondition,
        belief: impl Into<Belief>,
    ) -> ReportBuilder {
        ReportBuilder {
            report: ConditionReport {
                id: ReportId::new(0),
                dc: DcId::new(0),
                knowledge_source: KnowledgeSourceId::new(0),
                machine,
                condition,
                severity: Severity::NONE,
                belief: belief.into(),
                timestamp: SimTime::ZERO,
                explanation: String::new(),
                recommendation: String::new(),
                additional_info: String::new(),
                prognostic: PrognosticVector::empty(),
            },
        }
    }

    /// True if this report carries prognostic information in addition to
    /// the diagnosis.
    pub fn has_prognostic(&self) -> bool {
        !self.prognostic.is_empty()
    }

    /// The logical failure group of the diagnosed condition, used to route
    /// the report to the right Dempster–Shafer frame (§5.3).
    pub fn group(&self) -> crate::condition::FailureGroup {
        self.condition.group()
    }
}

impl fmt::Display for ConditionReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {} on {}: belief {}, severity {}",
            self.timestamp,
            self.dc,
            self.knowledge_source,
            self.condition,
            self.machine,
            self.belief,
            self.severity
        )?;
        if self.has_prognostic() {
            write!(f, ", prognostic {}", self.prognostic)?;
        }
        Ok(())
    }
}

/// Fluent builder for [`ConditionReport`].
#[derive(Debug, Clone)]
pub struct ReportBuilder {
    report: ConditionReport,
}

impl ReportBuilder {
    /// Set the report instance id.
    pub fn id(mut self, id: ReportId) -> Self {
        self.report.id = id;
        self
    }

    /// Set the originating data concentrator.
    pub fn dc(mut self, dc: DcId) -> Self {
        self.report.dc = dc;
        self
    }

    /// Set the emitting knowledge source.
    pub fn knowledge_source(mut self, ks: KnowledgeSourceId) -> Self {
        self.report.knowledge_source = ks;
        self
    }

    /// Set the severity score.
    pub fn severity(mut self, s: impl Into<Severity>) -> Self {
        self.report.severity = s.into();
        self
    }

    /// Set the effective timestamp.
    pub fn timestamp(mut self, t: SimTime) -> Self {
        self.report.timestamp = t;
        self
    }

    /// Attach a human-readable explanation.
    pub fn explanation(mut self, text: impl Into<String>) -> Self {
        self.report.explanation = text.into();
        self
    }

    /// Attach a recommended action.
    pub fn recommendation(mut self, text: impl Into<String>) -> Self {
        self.report.recommendation = text.into();
        self
    }

    /// Attach additional free-form information.
    pub fn additional_info(mut self, text: impl Into<String>) -> Self {
        self.report.additional_info = text.into();
        self
    }

    /// Attach a prognostic vector.
    pub fn prognostic(mut self, v: PrognosticVector) -> Self {
        self.report.prognostic = v;
        self
    }

    /// Finish building.
    pub fn build(self) -> ConditionReport {
        self.report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::prognostic::PrognosticVector;

    fn sample() -> ConditionReport {
        ConditionReport::builder(MachineId::new(1), MachineCondition::MotorImbalance, 0.8)
            .id(ReportId::new(7))
            .dc(DcId::new(2))
            .knowledge_source(KnowledgeSourceId::new(3))
            .severity(0.6)
            .timestamp(SimTime::from_secs(100.0))
            .explanation("1x radial line dominant")
            .recommendation("balance rotor at next availability")
            .prognostic(PrognosticVector::from_months(&[(2.0, 0.5)]).unwrap())
            .build()
    }

    #[test]
    fn builder_sets_all_protocol_fields() {
        let r = sample();
        assert_eq!(r.id, ReportId::new(7));
        assert_eq!(r.dc, DcId::new(2));
        assert_eq!(r.knowledge_source, KnowledgeSourceId::new(3));
        assert_eq!(r.machine, MachineId::new(1));
        assert_eq!(r.condition, MachineCondition::MotorImbalance);
        assert_eq!(r.severity.value(), 0.6);
        assert_eq!(r.belief.value(), 0.8);
        assert_eq!(r.timestamp.as_secs(), 100.0);
        assert!(r.has_prognostic());
    }

    #[test]
    fn optional_fields_default_blank() {
        // §7.2: explanation/recommendation "allowed to be blank".
        let r = ConditionReport::builder(MachineId::new(1), MachineCondition::CompressorSurge, 0.5)
            .build();
        assert!(r.explanation.is_empty());
        assert!(r.recommendation.is_empty());
        assert!(r.additional_info.is_empty());
        assert!(!r.has_prognostic());
    }

    #[test]
    fn group_routing_follows_condition() {
        let r = sample();
        assert_eq!(r.group(), crate::condition::FailureGroup::RotorDynamics);
    }

    #[test]
    fn serde_roundtrip_preserves_report() {
        let r = sample();
        let json = serde_json::to_string(&r).unwrap();
        let back: ConditionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn display_is_informative() {
        let s = sample().to_string();
        assert!(s.contains("motor imbalance"));
        assert!(s.contains("80%"));
        assert!(s.contains("M-0001"));
    }
}

//! Belief values.
//!
//! §7.2 of the paper: "Belief: Numeric value in range 0.0 to 1.0 indicating
//! belief that this diagnosis is true. Maximal belief is 1.0." The same
//! unit interval carries Dempster–Shafer masses and DLI believability
//! factors, so it gets a validated newtype.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A degree of belief in `[0, 1]`.
///
/// Construction clamps out-of-range finite values and rejects NaN, so a
/// `Belief` is always a valid probability-like quantity.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Belief(f64);

impl Belief {
    /// Zero belief.
    pub const ZERO: Belief = Belief(0.0);
    /// Full belief.
    pub const CERTAIN: Belief = Belief(1.0);

    /// Construct, clamping into `[0, 1]`. Panics on NaN.
    pub fn new(v: f64) -> Self {
        assert!(!v.is_nan(), "belief cannot be NaN");
        Belief(v.clamp(0.0, 1.0))
    }

    /// Construct only if the value is already in range.
    pub fn try_new(v: f64) -> Option<Self> {
        (v.is_finite() && (0.0..=1.0).contains(&v)).then_some(Belief(v))
    }

    /// The raw value.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Complement `1 - b`.
    pub fn complement(self) -> Belief {
        Belief(1.0 - self.0)
    }

    /// Product of beliefs (independent conjunction), still in range.
    pub fn and(self, other: Belief) -> Belief {
        Belief(self.0 * other.0)
    }

    /// Noisy-or of beliefs: `1 - (1-a)(1-b)`.
    pub fn or(self, other: Belief) -> Belief {
        Belief(1.0 - (1.0 - self.0) * (1.0 - other.0))
    }

    /// The larger of two beliefs.
    pub fn max(self, other: Belief) -> Belief {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The smaller of two beliefs.
    pub fn min(self, other: Belief) -> Belief {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl From<f64> for Belief {
    fn from(v: f64) -> Self {
        Belief::new(v)
    }
}

impl fmt::Display for Belief {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}%", self.0 * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn clamping_construction() {
        assert_eq!(Belief::new(-0.5).value(), 0.0);
        assert_eq!(Belief::new(1.5).value(), 1.0);
        assert_eq!(Belief::new(0.4).value(), 0.4);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Belief::new(f64::NAN);
    }

    #[test]
    fn try_new_rejects_out_of_range() {
        assert!(Belief::try_new(0.5).is_some());
        assert!(Belief::try_new(-0.1).is_none());
        assert!(Belief::try_new(1.1).is_none());
        assert!(Belief::try_new(f64::NAN).is_none());
        assert!(Belief::try_new(f64::INFINITY).is_none());
    }

    #[test]
    fn display_as_percent() {
        assert_eq!(Belief::new(0.4).to_string(), "40%");
        assert_eq!(Belief::CERTAIN.to_string(), "100%");
    }

    proptest! {
        #[test]
        fn combinators_stay_in_range(a in 0.0..=1.0f64, b in 0.0..=1.0f64) {
            let (ba, bb) = (Belief::new(a), Belief::new(b));
            for v in [ba.and(bb), ba.or(bb), ba.complement(), ba.max(bb), ba.min(bb)] {
                prop_assert!((0.0..=1.0).contains(&v.value()));
            }
        }

        #[test]
        fn or_dominates_and(a in 0.0..=1.0f64, b in 0.0..=1.0f64) {
            let (ba, bb) = (Belief::new(a), Belief::new(b));
            prop_assert!(ba.or(bb) >= ba.and(bb));
        }

        #[test]
        fn double_complement_is_identity(a in 0.0..=1.0f64) {
            let b = Belief::new(a);
            prop_assert!((b.complement().complement().value() - a).abs() < 1e-12);
        }
    }
}

//! The `Durable` serialization trait: the persistence counterpart of the
//! wire codec.
//!
//! The paper's OOSM provides "relational persistence" (§4); anything that
//! must survive a PDME process restart — condition reports, fused beliefs,
//! maintenance histories — needs a byte representation that is *stable*
//! (a snapshot written by one run decodes identically in the next) and
//! *canonical* (the same state always encodes to the same bytes, so
//! crash-restore equivalence can be checked byte-for-byte). JSON via
//! serde gives neither for free (map ordering, float formatting), so
//! durable state uses the same hand-rolled binary discipline as the
//! network codec:
//!
//! * integers are little-endian, fixed width;
//! * `f64` travels as its IEEE-754 bit pattern (`to_bits`), so every
//!   value — including negative zero — round-trips exactly;
//! * strings and sequences are length-prefixed (`u64` count, then
//!   elements);
//! * enums encode a stable small-integer tag (their catalog index).
//!
//! Decoding is strict: trailing bytes, out-of-range tags and
//! out-of-range numeric values are errors, never silently repaired.

use crate::belief::Belief;
use crate::condition::{FailureGroup, MachineCondition};
use crate::error::{Error, Result};
use crate::id::{DcId, KnowledgeSourceId, MachineId, ObjectId, ReportId, SensorId};
use crate::prognostic::{PrognosticPoint, PrognosticVector};
use crate::report::ConditionReport;
use crate::severity::Severity;
use crate::time::{SimDuration, SimTime};

/// A type with a stable, canonical binary form for persistence.
///
/// `encode` appends the representation to `out`; `decode` consumes
/// exactly the bytes `encode` produced from the front of `input`. The
/// contract is `decode(encode(x)) == x` with every byte consumed, and
/// equal values always produce equal bytes (canonical form).
pub trait Durable: Sized {
    /// Append this value's canonical byte form to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Consume this value's byte form from the front of `input`.
    fn decode(input: &mut &[u8]) -> Result<Self>;

    /// The value as a standalone byte vector.
    fn to_durable_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decode a standalone byte vector, rejecting trailing bytes.
    fn from_durable_bytes(bytes: &[u8]) -> Result<Self> {
        let mut input = bytes;
        let value = Self::decode(&mut input)?;
        if !input.is_empty() {
            return Err(Error::invalid(format!(
                "durable decode left {} trailing byte(s)",
                input.len()
            )));
        }
        Ok(value)
    }
}

/// Take `n` bytes off the front of `input` or fail.
pub fn take<'a>(input: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if input.len() < n {
        return Err(Error::invalid(format!(
            "durable decode needs {n} byte(s), only {} left",
            input.len()
        )));
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Ok(head)
}

impl Durable for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        Ok(take(input, 1)?[0])
    }
}

impl Durable for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        let bytes = take(input, 4)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }
}

impl Durable for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        let bytes = take(input, 8)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }
}

impl Durable for i64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        let bytes = take(input, 8)?;
        Ok(i64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }
}

impl Durable for usize {
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        let raw = u64::decode(input)?;
        usize::try_from(raw).map_err(|_| Error::invalid("usize overflow in durable decode"))
    }
}

impl Durable for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        match u8::decode(input)? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(Error::invalid(format!("bool tag {other} out of range"))),
        }
    }
}

impl Durable for f64 {
    fn encode(&self, out: &mut Vec<u8>) {
        self.to_bits().encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        Ok(f64::from_bits(u64::decode(input)?))
    }
}

impl Durable for String {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        out.extend_from_slice(self.as_bytes());
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        let len = usize::decode(input)?;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Error::invalid("durable string is not UTF-8"))
    }
}

impl<T: Durable> Durable for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.len().encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        let len = usize::decode(input)?;
        // Guard against a corrupt length prefix demanding absurd
        // preallocation; elements are at least one byte each.
        if len > input.len() {
            return Err(Error::invalid(format!(
                "durable sequence claims {len} element(s) but only {} byte(s) remain",
                input.len()
            )));
        }
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(input)?);
        }
        Ok(items)
    }
}

impl<T: Durable> Durable for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        match u8::decode(input)? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(input)?)),
            other => Err(Error::invalid(format!("option tag {other} out of range"))),
        }
    }
}

impl<A: Durable, B: Durable> Durable for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        Ok((A::decode(input)?, B::decode(input)?))
    }
}

impl<A: Durable, B: Durable, C: Durable> Durable for (A, B, C) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
        self.2.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        Ok((A::decode(input)?, B::decode(input)?, C::decode(input)?))
    }
}

macro_rules! durable_id {
    ($($name:ident),* $(,)?) => {
        $(
            impl Durable for $name {
                fn encode(&self, out: &mut Vec<u8>) {
                    self.raw().encode(out);
                }

                fn decode(input: &mut &[u8]) -> Result<Self> {
                    Ok($name::new(u64::decode(input)?))
                }
            }
        )*
    };
}

durable_id!(
    DcId,
    KnowledgeSourceId,
    MachineId,
    SensorId,
    ReportId,
    ObjectId
);

impl Durable for SimTime {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_secs().encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        let secs = f64::decode(input)?;
        if !secs.is_finite() {
            return Err(Error::invalid("durable SimTime is not finite"));
        }
        Ok(SimTime::from_secs(secs))
    }
}

impl Durable for SimDuration {
    fn encode(&self, out: &mut Vec<u8>) {
        self.as_secs().encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        let secs = f64::decode(input)?;
        if !secs.is_finite() {
            return Err(Error::invalid("durable SimDuration is not finite"));
        }
        Ok(SimDuration::from_secs(secs))
    }
}

impl Durable for Belief {
    fn encode(&self, out: &mut Vec<u8>) {
        self.value().encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        let v = f64::decode(input)?;
        Belief::try_new(v).ok_or_else(|| Error::invalid(format!("belief {v} out of range")))
    }
}

impl Durable for Severity {
    fn encode(&self, out: &mut Vec<u8>) {
        self.value().encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        let v = f64::decode(input)?;
        if !v.is_finite() || !(0.0..=1.0).contains(&v) {
            return Err(Error::invalid(format!("severity {v} out of range")));
        }
        Ok(Severity::new(v))
    }
}

impl Durable for MachineCondition {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(self.index() as u8);
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        let tag = u8::decode(input)?;
        MachineCondition::from_index(tag as usize)
            .ok_or_else(|| Error::invalid(format!("condition tag {tag} out of range")))
    }
}

impl Durable for FailureGroup {
    fn encode(&self, out: &mut Vec<u8>) {
        let idx = FailureGroup::ALL
            .iter()
            .position(|g| g == self)
            .expect("group present in catalog");
        out.push(idx as u8);
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        let tag = u8::decode(input)?;
        FailureGroup::ALL
            .get(tag as usize)
            .copied()
            .ok_or_else(|| Error::invalid(format!("failure-group tag {tag} out of range")))
    }
}

impl Durable for PrognosticPoint {
    fn encode(&self, out: &mut Vec<u8>) {
        self.horizon.encode(out);
        self.probability.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        let horizon = SimDuration::decode(input)?;
        let probability = Belief::decode(input)?;
        Ok(PrognosticPoint::new(horizon, probability))
    }
}

impl Durable for PrognosticVector {
    fn encode(&self, out: &mut Vec<u8>) {
        self.points().to_vec().encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        let points = Vec::<PrognosticPoint>::decode(input)?;
        PrognosticVector::new(points)
    }
}

impl Durable for ConditionReport {
    fn encode(&self, out: &mut Vec<u8>) {
        self.id.encode(out);
        self.dc.encode(out);
        self.knowledge_source.encode(out);
        self.machine.encode(out);
        self.condition.encode(out);
        self.severity.encode(out);
        self.belief.encode(out);
        self.timestamp.encode(out);
        self.explanation.encode(out);
        self.recommendation.encode(out);
        self.additional_info.encode(out);
        self.prognostic.encode(out);
    }

    fn decode(input: &mut &[u8]) -> Result<Self> {
        Ok(ConditionReport {
            id: ReportId::decode(input)?,
            dc: DcId::decode(input)?,
            knowledge_source: KnowledgeSourceId::decode(input)?,
            machine: MachineId::decode(input)?,
            condition: MachineCondition::decode(input)?,
            severity: Severity::decode(input)?,
            belief: Belief::decode(input)?,
            timestamp: SimTime::decode(input)?,
            explanation: String::decode(input)?,
            recommendation: String::decode(input)?,
            additional_info: String::decode(input)?,
            prognostic: PrognosticVector::decode(input)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Durable + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_durable_bytes();
        let back = T::from_durable_bytes(&bytes).expect("decodes");
        assert_eq!(value, back);
        // Canonical: re-encoding the decoded value reproduces the bytes.
        assert_eq!(back.to_durable_bytes(), bytes);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(-42i64);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(-0.0f64);
        roundtrip(f64::MAX);
        roundtrip("durable ünïcode".to_string());
        roundtrip(vec![1u64, 2, 3]);
        roundtrip(Option::<u64>::None);
        roundtrip(Some("x".to_string()));
        roundtrip((7u64, "y".to_string()));
    }

    #[test]
    fn negative_zero_survives_bit_exactly() {
        let bytes = (-0.0f64).to_durable_bytes();
        let back = f64::from_durable_bytes(&bytes).unwrap();
        assert_eq!(back.to_bits(), (-0.0f64).to_bits());
    }

    #[test]
    fn core_vocabulary_roundtrips() {
        roundtrip(DcId::new(3));
        roundtrip(MachineId::new(u64::MAX));
        roundtrip(SimTime::from_secs(901.75));
        roundtrip(SimDuration::from_millis(12.5));
        roundtrip(Belief::new(0.62));
        roundtrip(Severity::new(0.8));
        for c in MachineCondition::ALL {
            roundtrip(c);
        }
        for g in FailureGroup::ALL {
            roundtrip(g);
        }
        roundtrip(PrognosticVector::from_months(&[(1.0, 0.3), (3.0, 0.8)]).unwrap());
    }

    #[test]
    fn condition_report_roundtrips() {
        let report = ConditionReport::builder(
            MachineId::new(4),
            MachineCondition::GearToothWear,
            Belief::new(0.7),
        )
        .id(ReportId::new(19))
        .dc(DcId::new(2))
        .knowledge_source(KnowledgeSourceId::new(5))
        .severity(Severity::new(0.44))
        .timestamp(SimTime::from_secs(120.5))
        .explanation("gear mesh sidebands")
        .recommendation("inspect gearbox")
        .additional_info("harmonics at 2x")
        .prognostic(PrognosticVector::from_months(&[(2.0, 0.5)]).unwrap())
        .build();
        roundtrip(report);
    }

    #[test]
    fn strict_decoding_rejects_garbage() {
        // Trailing bytes.
        let mut bytes = 7u64.to_durable_bytes();
        bytes.push(0);
        assert!(u64::from_durable_bytes(&bytes).is_err());
        // Truncation.
        assert!(u64::from_durable_bytes(&[1, 2, 3]).is_err());
        // Out-of-range tags and values.
        assert!(bool::from_durable_bytes(&[2]).is_err());
        assert!(MachineCondition::from_durable_bytes(&[12]).is_err());
        assert!(FailureGroup::from_durable_bytes(&[6]).is_err());
        assert!(Belief::from_durable_bytes(&2.0f64.to_durable_bytes()).is_err());
        assert!(Severity::from_durable_bytes(&f64::NAN.to_durable_bytes()).is_err());
        assert!(SimTime::from_durable_bytes(&f64::INFINITY.to_durable_bytes()).is_err());
        // A sequence length prefix larger than the remaining input.
        let mut seq = Vec::new();
        u64::MAX.encode(&mut seq);
        assert!(Vec::<u8>::from_durable_bytes(&seq).is_err());
    }
}

//! Prognostic vectors.
//!
//! §5.4 of the paper: "Prognostics are defined in this system as time
//! point, probability pairs, and lists of these pairs. So for example, a
//! prognostic of (3 months, .1) would indicate that the system has a 10%
//! likelihood of failure within 3 months time from now."
//!
//! §7.3 (wire format): "Zero to n ordered pairs of the form '(probability,
//! time)'. Each pair indicates the probability that the given machine
//! condition will lead to failure of the machine within 'time' seconds
//! from now."
//!
//! A prognostic vector is therefore a sampled cumulative failure-
//! probability curve over *horizons* (durations from the report's
//! timestamp). The curve is non-decreasing in time — failing within two
//! months includes failing within one — and we enforce that invariant at
//! construction. Interpolation between samples and extrapolation beyond
//! the last sample ("interpolating a smooth curve from point to point",
//! §5.4) are provided here; the conservative fusion of several curves
//! lives in `mpros-fusion`.

use crate::belief::Belief;
use crate::error::{Error, Result};
use crate::time::SimDuration;
use serde::{Deserialize, Serialize};
use std::fmt;

/// One `(time, probability)` sample: probability of failure within
/// `horizon` from now.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrognosticPoint {
    /// Horizon measured from the report timestamp. Must be positive.
    pub horizon: SimDuration,
    /// Probability of failure within the horizon.
    pub probability: Belief,
}

impl PrognosticPoint {
    /// Construct a point.
    pub fn new(horizon: SimDuration, probability: impl Into<Belief>) -> Self {
        Self {
            horizon,
            probability: probability.into(),
        }
    }
}

impl fmt::Display for PrognosticPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {:.2})", self.horizon, self.probability.value())
    }
}

/// A sampled cumulative failure-probability curve (§5.4, §7.3).
///
/// Invariants, checked at construction:
/// * horizons are strictly increasing and positive;
/// * probabilities are non-decreasing (cumulative).
///
/// The empty vector is legal (§7.3 allows "zero to n ordered pairs") and
/// denotes "no prognostic information": it interpolates to probability 0
/// everywhere.
///
/// ```
/// use mpros_core::{PrognosticVector, SimDuration};
///
/// // §5.4: "((2 weeks, .1) (1 month, .5) (2 months, .9))"
/// let v = PrognosticVector::from_months(&[(0.5, 0.1), (1.0, 0.5), (2.0, 0.9)]).unwrap();
/// assert_eq!(v.probability_at(SimDuration::from_months(1.0)).value(), 0.5);
/// let median = v.horizon_for_probability(0.5).unwrap();
/// assert!((median.as_months() - 1.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PrognosticVector {
    points: Vec<PrognosticPoint>,
}

impl PrognosticVector {
    /// An empty vector: no prognostic information.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Build from points, validating the invariants. Points may be given
    /// in any order; they are sorted by horizon first.
    pub fn new(mut points: Vec<PrognosticPoint>) -> Result<Self> {
        points.sort_by(|a, b| {
            a.horizon
                .partial_cmp(&b.horizon)
                .expect("horizons are finite")
        });
        for w in points.windows(2) {
            if w[1].horizon <= w[0].horizon {
                return Err(Error::invalid(format!(
                    "duplicate prognostic horizon {}",
                    w[1].horizon
                )));
            }
            if w[1].probability < w[0].probability {
                return Err(Error::invalid(format!(
                    "failure probability must be non-decreasing: {} then {}",
                    w[0], w[1]
                )));
            }
        }
        if let Some(first) = points.first() {
            if first.horizon.as_secs() <= 0.0 {
                return Err(Error::invalid("prognostic horizons must be positive"));
            }
        }
        Ok(Self { points })
    }

    /// Convenience constructor from `(months, probability)` pairs, the
    /// notation of the paper's worked examples.
    pub fn from_months(pairs: &[(f64, f64)]) -> Result<Self> {
        Self::new(
            pairs
                .iter()
                .map(|&(m, p)| PrognosticPoint::new(SimDuration::from_months(m), p))
                .collect(),
        )
    }

    /// The samples, sorted by horizon.
    pub fn points(&self) -> &[PrognosticPoint] {
        &self.points
    }

    /// True if the vector carries no information.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Failure probability at an arbitrary horizon, by the piecewise-
    /// linear curve of §5.4:
    ///
    /// * before the first sample the curve rises linearly from `(0, 0)`;
    /// * between samples it interpolates linearly;
    /// * past the last sample it extrapolates along the final segment's
    ///   slope, clamped to 1 (the paper: "the extrapolation of the curve
    ///   beyond this point"); a single-sample curve extrapolates flat.
    pub fn probability_at(&self, horizon: SimDuration) -> Belief {
        let h = horizon.as_secs();
        if h <= 0.0 || self.points.is_empty() {
            return Belief::ZERO;
        }
        let first = self.points[0];
        if h <= first.horizon.as_secs() {
            let frac = h / first.horizon.as_secs();
            return Belief::new(first.probability.value() * frac);
        }
        for w in self.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            if h <= b.horizon.as_secs() {
                let span = b.horizon.as_secs() - a.horizon.as_secs();
                let frac = (h - a.horizon.as_secs()) / span;
                return Belief::new(
                    a.probability.value() + frac * (b.probability.value() - a.probability.value()),
                );
            }
        }
        // Extrapolate beyond the last point.
        let last = *self.points.last().expect("nonempty");
        if self.points.len() == 1 {
            return last.probability;
        }
        let prev = self.points[self.points.len() - 2];
        let span = last.horizon.as_secs() - prev.horizon.as_secs();
        let slope = (last.probability.value() - prev.probability.value()) / span;
        Belief::new(last.probability.value() + slope * (h - last.horizon.as_secs()))
    }

    /// The earliest horizon at which the interpolated curve reaches
    /// probability `p`, or `None` if it never does (even under
    /// extrapolation). This is the "time to failure" estimate the PDME
    /// reports (§3.3: "prognostic reporting for 'time to failure'
    /// estimates").
    pub fn horizon_for_probability(&self, p: impl Into<Belief>) -> Option<SimDuration> {
        let p = p.into().value();
        if self.points.is_empty() {
            return None;
        }
        if p <= 0.0 {
            return Some(SimDuration::ZERO);
        }
        // Segment from origin to first point.
        let first = self.points[0];
        if p <= first.probability.value() {
            let frac = p / first.probability.value();
            return Some(first.horizon * frac);
        }
        for w in self.points.windows(2) {
            let (a, b) = (w[0], w[1]);
            if p <= b.probability.value() {
                let dp = b.probability.value() - a.probability.value();
                if dp <= 0.0 {
                    return Some(b.horizon);
                }
                let frac = (p - a.probability.value()) / dp;
                return Some(a.horizon + (b.horizon - a.horizon) * frac);
            }
        }
        // Extrapolate the final segment.
        if self.points.len() >= 2 {
            let last = *self.points.last().expect("nonempty");
            let prev = self.points[self.points.len() - 2];
            let slope = (last.probability.value() - prev.probability.value())
                / (last.horizon.as_secs() - prev.horizon.as_secs());
            if slope > 0.0 {
                let extra = (p - last.probability.value()) / slope;
                return Some(last.horizon + SimDuration::from_secs(extra));
            }
        }
        None
    }

    /// Push an additional sample, maintaining the invariants.
    pub fn push(&mut self, point: PrognosticPoint) -> Result<()> {
        let mut points = self.points.clone();
        points.push(point);
        *self = Self::new(points)?;
        Ok(())
    }
}

impl fmt::Display for PrognosticVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.points.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// §5.4: "a prognostic list of ((2 weeks, .1) (1 month, .5)
    /// (2 months, .9)) would indicate a likelihood of failure of 10%
    /// within 2 weeks, 50% at 1 month and 90% in 2 months."
    #[test]
    fn paper_example_list_reads_back() {
        let v = PrognosticVector::new(vec![
            PrognosticPoint::new(SimDuration::from_weeks(2.0), 0.1),
            PrognosticPoint::new(SimDuration::from_months(1.0), 0.5),
            PrognosticPoint::new(SimDuration::from_months(2.0), 0.9),
        ])
        .unwrap();
        assert_eq!(v.probability_at(SimDuration::from_weeks(2.0)).value(), 0.1);
        assert_eq!(v.probability_at(SimDuration::from_months(1.0)).value(), 0.5);
        assert_eq!(v.probability_at(SimDuration::from_months(2.0)).value(), 0.9);
    }

    #[test]
    fn construction_sorts_points() {
        let v = PrognosticVector::from_months(&[(2.0, 0.9), (1.0, 0.5)]).unwrap();
        assert!(v.points()[0].horizon < v.points()[1].horizon);
    }

    #[test]
    fn rejects_decreasing_probability() {
        let err = PrognosticVector::from_months(&[(1.0, 0.5), (2.0, 0.4)]).unwrap_err();
        assert!(matches!(err, Error::InvalidInput(_)));
    }

    #[test]
    fn rejects_duplicate_horizons() {
        let err = PrognosticVector::from_months(&[(1.0, 0.5), (1.0, 0.6)]).unwrap_err();
        assert!(matches!(err, Error::InvalidInput(_)));
    }

    #[test]
    fn rejects_nonpositive_horizons() {
        let err = PrognosticVector::from_months(&[(0.0, 0.5)]).unwrap_err();
        assert!(matches!(err, Error::InvalidInput(_)));
    }

    #[test]
    fn empty_vector_has_zero_probability() {
        let v = PrognosticVector::empty();
        assert!(v.is_empty());
        assert_eq!(v.probability_at(SimDuration::from_months(6.0)).value(), 0.0);
        assert_eq!(v.horizon_for_probability(0.5), None);
    }

    #[test]
    fn interpolation_between_samples_is_linear() {
        let v = PrognosticVector::from_months(&[(1.0, 0.2), (3.0, 0.6)]).unwrap();
        let mid = v.probability_at(SimDuration::from_months(2.0));
        assert!((mid.value() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn curve_rises_from_origin_before_first_sample() {
        let v = PrognosticVector::from_months(&[(2.0, 0.4)]).unwrap();
        let half = v.probability_at(SimDuration::from_months(1.0));
        assert!((half.value() - 0.2).abs() < 1e-12);
        assert_eq!(v.probability_at(SimDuration::ZERO).value(), 0.0);
    }

    #[test]
    fn extrapolates_final_segment_clamped_to_one() {
        let v = PrognosticVector::from_months(&[(4.0, 0.5), (5.0, 0.99)]).unwrap();
        // slope 0.49/month beyond 5 months, clamps at 1.0.
        let p55 = v.probability_at(SimDuration::from_months(5.5));
        assert!(p55.value() > 0.99 && p55.value() <= 1.0);
        let p12 = v.probability_at(SimDuration::from_months(12.0));
        assert_eq!(p12.value(), 1.0);
    }

    #[test]
    fn single_point_extrapolates_flat() {
        let v = PrognosticVector::from_months(&[(4.5, 0.12)]).unwrap();
        assert_eq!(
            v.probability_at(SimDuration::from_months(9.0)).value(),
            0.12
        );
    }

    #[test]
    fn horizon_for_probability_inverts_interpolation() {
        let v = PrognosticVector::from_months(&[(3.0, 0.01), (4.0, 0.5), (5.0, 0.99)]).unwrap();
        let h = v.horizon_for_probability(0.5).unwrap();
        assert!((h.as_months() - 4.0).abs() < 1e-9);
        let h25 = v.horizon_for_probability(0.255).unwrap();
        assert!(h25.as_months() > 3.0 && h25.as_months() < 4.0);
    }

    #[test]
    fn horizon_for_probability_extrapolates() {
        let v = PrognosticVector::from_months(&[(4.0, 0.5), (5.0, 0.8)]).unwrap();
        let h = v.horizon_for_probability(0.95).unwrap();
        assert!(h.as_months() > 5.0);
        // 0.3/month slope: 0.15 above 0.8 → 0.5 months past 5.
        assert!((h.as_months() - 5.5).abs() < 1e-9);
    }

    #[test]
    fn flat_curve_never_reaches_higher_probability() {
        let v = PrognosticVector::from_months(&[(1.0, 0.3), (2.0, 0.3)]).unwrap();
        assert_eq!(v.horizon_for_probability(0.9), None);
    }

    #[test]
    fn push_maintains_invariants() {
        let mut v = PrognosticVector::from_months(&[(1.0, 0.2)]).unwrap();
        v.push(PrognosticPoint::new(SimDuration::from_months(2.0), 0.5))
            .unwrap();
        assert_eq!(v.len(), 2);
        let err = v
            .push(PrognosticPoint::new(SimDuration::from_months(3.0), 0.1))
            .unwrap_err();
        assert!(matches!(err, Error::InvalidInput(_)));
        // Failed push must not corrupt the vector... push is transactional.
        assert_eq!(v.len(), 2);
    }

    #[test]
    fn display_matches_paper_notation_shape() {
        let v = PrognosticVector::from_months(&[(3.0, 0.01)]).unwrap();
        assert_eq!(v.to_string(), "((3.00mo, 0.01))");
    }

    fn arb_vector() -> impl Strategy<Value = PrognosticVector> {
        proptest::collection::vec((0.1..60.0f64, 0.0..=1.0f64), 0..8).prop_map(|mut raw| {
            raw.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
            raw.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-6);
            // Make probabilities cumulative.
            let mut acc: f64 = 0.0;
            let pts = raw
                .into_iter()
                .map(|(m, p)| {
                    acc = acc.max(p);
                    PrognosticPoint::new(SimDuration::from_months(m), acc)
                })
                .collect();
            PrognosticVector::new(pts).unwrap()
        })
    }

    proptest! {
        #[test]
        fn interpolated_curve_is_monotone(v in arb_vector(), a in 0.0..70.0f64, b in 0.0..70.0f64) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            let pl = v.probability_at(SimDuration::from_months(lo));
            let ph = v.probability_at(SimDuration::from_months(hi));
            prop_assert!(pl <= ph, "curve not monotone: {} @{lo} vs {} @{hi}", pl.value(), ph.value());
        }

        #[test]
        fn probability_always_in_range(v in arb_vector(), h in 0.0..200.0f64) {
            let p = v.probability_at(SimDuration::from_months(h));
            prop_assert!((0.0..=1.0).contains(&p.value()));
        }

        #[test]
        fn inverse_is_consistent(v in arb_vector(), p in 0.01..=0.99f64) {
            if let Some(h) = v.horizon_for_probability(p) {
                let back = v.probability_at(h).value();
                prop_assert!((back - p).abs() < 1e-6,
                    "probability_at(horizon_for_probability({p})) = {back}");
            }
        }
    }
}

/// The template prognostic curve implied by a DLI severity grade (§6.1's
/// loose categories): a three-point curve reaching even odds at the
/// grade's nominal horizon and 90 % at twice it. `Slight` ("no
/// foreseeable failure") yields the empty vector. Shared by the DLI and
/// fuzzy-logic knowledge sources.
pub fn grade_template(grade: crate::severity::SeverityGrade) -> PrognosticVector {
    use crate::severity::SeverityGrade;
    let curve = |unit: SimDuration| {
        PrognosticVector::new(vec![
            PrognosticPoint::new(unit * 0.5, 0.25),
            PrognosticPoint::new(unit, 0.5),
            PrognosticPoint::new(unit * 2.0, 0.9),
        ])
        .expect("template curves are valid")
    };
    match grade {
        SeverityGrade::Slight => PrognosticVector::empty(),
        SeverityGrade::Moderate => curve(SimDuration::from_months(1.5)),
        SeverityGrade::Serious => curve(SimDuration::from_weeks(2.0)),
        SeverityGrade::Extreme => curve(SimDuration::from_days(3.0)),
    }
}

#[cfg(test)]
mod template_tests {
    use super::*;
    use crate::severity::SeverityGrade;

    #[test]
    fn templates_order_by_urgency() {
        assert!(grade_template(SeverityGrade::Slight).is_empty());
        let h = |g| {
            grade_template(g)
                .horizon_for_probability(0.5)
                .unwrap()
                .as_secs()
        };
        assert!(h(SeverityGrade::Moderate) > h(SeverityGrade::Serious));
        assert!(h(SeverityGrade::Serious) > h(SeverityGrade::Extreme));
    }
}

//! Scenario fault plans: scheduled survivability faults.
//!
//! §4.9 is blunt about the deployment environment: "power supply and
//! communications are stable in our labs but may not be the same on
//! board the ships." A [`FaultPlan`] is the scenario-level schedule of
//! that hostility — DC crash/restart outages, sensor-channel dropouts,
//! PDME stalls, and network partition/heal windows — expressed purely
//! against simulated time so the same plan replays identically on every
//! run and under every execution mode.
//!
//! The plan itself is inert data: the simulation driver queries
//! [`FaultPlan::transitions`] once per tick and applies whatever starts
//! or ends in that tick, in a deterministic order. Plans are built
//! explicitly (window by window) or drawn from a seeded RNG stream via
//! [`FaultPlan::seeded`], so "a hostile cruise" is reproducible from a
//! `(seed, config)` pair alone.

use crate::id::DcId;
use crate::seed::derive_stream_seed;
use crate::time::{SimDuration, SimTime};

/// What a fault window targets. The core vocabulary mirrors the two
/// endpoint classes of the ship network without depending on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum FaultTarget {
    /// A data concentrator.
    Dc(DcId),
    /// The central PDME.
    Pdme,
}

impl std::fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FaultTarget::Dc(id) => write!(f, "{id}"),
            FaultTarget::Pdme => write!(f, "PDME"),
        }
    }
}

/// The survivability fault taxonomy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// A DC process crash: the DC loses volatile state for the whole
    /// window and restarts (fresh state, new batch epoch) at its end.
    DcCrash {
        /// The crashed DC.
        dc: DcId,
    },
    /// One acquisition channel reads dead for the window (§4.9
    /// transducer/cabling failure).
    SensorDropout {
        /// The DC whose channel fails.
        dc: DcId,
        /// Channel index within the DC's acquisition chain.
        channel: usize,
    },
    /// The PDME stops ingesting and supervising for the window;
    /// delivered frames queue at its network inbox.
    PdmeStall,
    /// The PDME process crashes and is immediately restarted from its
    /// durable store (snapshot + WAL tail). Unlike [`FaultKind::PdmeStall`]
    /// the in-memory engine is torn down and rebuilt; with an attached
    /// store the restore is output-transparent, so the window's `until`
    /// edge is a no-op (the restart happens at `from`).
    PdmeCrash,
    /// A network partition isolates one endpoint for the window.
    Partition {
        /// The isolated endpoint.
        target: FaultTarget,
    },
}

impl FaultKind {
    /// Stable label for journals and displays.
    pub fn label(&self) -> &'static str {
        match self {
            FaultKind::DcCrash { .. } => "dc_crash",
            FaultKind::SensorDropout { .. } => "sensor_dropout",
            FaultKind::PdmeStall => "pdme_stall",
            FaultKind::PdmeCrash => "pdme_crash",
            FaultKind::Partition { .. } => "partition",
        }
    }

    /// Deterministic ordering key used to pin same-instant transitions.
    fn order_key(&self) -> (u8, u64, u64) {
        match self {
            FaultKind::DcCrash { dc } => (0, dc.raw(), 0),
            FaultKind::SensorDropout { dc, channel } => (1, dc.raw(), *channel as u64),
            FaultKind::PdmeStall => (2, 0, 0),
            FaultKind::Partition { target } => match target {
                FaultTarget::Dc(dc) => (3, 0, dc.raw()),
                FaultTarget::Pdme => (3, 1, 0),
            },
            FaultKind::PdmeCrash => (4, 0, 0),
        }
    }
}

/// One scheduled fault: a kind active over `[from, until)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultWindow {
    /// The fault.
    pub kind: FaultKind,
    /// Start of the outage (inclusive).
    pub from: SimTime,
    /// End of the outage (exclusive); recovery happens here.
    pub until: SimTime,
}

impl FaultWindow {
    /// Whether the window is active at `now`.
    pub fn active_at(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }
}

/// The edge of a fault window a driver must act on this tick.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultTransition {
    /// A window started: inject the fault.
    Start(FaultKind),
    /// A window ended: recover from the fault.
    End(FaultKind),
}

impl FaultTransition {
    /// The fault the transition concerns.
    pub fn kind(&self) -> &FaultKind {
        match self {
            FaultTransition::Start(k) | FaultTransition::End(k) => k,
        }
    }
}

/// Knobs for [`FaultPlan::seeded`] random-campaign generation.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct FaultPlanConfig {
    /// DC ids eligible for crashes, dropouts, and partitions.
    pub dcs: Vec<DcId>,
    /// Scenario length the windows are drawn inside.
    pub horizon: SimDuration,
    /// Number of DC crash windows to draw.
    pub crashes: usize,
    /// Number of DC partition windows to draw.
    pub partitions: usize,
    /// Number of sensor-dropout windows to draw.
    pub sensor_dropouts: usize,
    /// Number of PDME stall windows to draw.
    pub pdme_stalls: usize,
    /// Shortest outage drawn.
    pub min_outage: SimDuration,
    /// Longest outage drawn.
    pub max_outage: SimDuration,
    /// Channels per DC a dropout may hit.
    pub channels_per_dc: usize,
}

impl Default for FaultPlanConfig {
    fn default() -> Self {
        FaultPlanConfig {
            dcs: Vec::new(),
            horizon: SimDuration::from_minutes(10.0),
            crashes: 1,
            partitions: 1,
            sensor_dropouts: 1,
            pdme_stalls: 0,
            min_outage: SimDuration::from_secs(10.0),
            max_outage: SimDuration::from_secs(45.0),
            channels_per_dc: 4,
        }
    }
}

/// Stream salt separating the fault-plan RNG from plant and network
/// streams derived off the same master seed.
const FAULT_STREAM_SALT: u64 = 0xFA17_91A5_0C4D_2B7E;

/// Minimal xorshift64 generator — `FaultPlan` lives in core, which
/// deliberately carries no RNG dependency.
struct XorShift {
    state: u64,
}

impl XorShift {
    fn new(seed: u64) -> Self {
        XorShift {
            // xorshift has a single absorbing state at zero.
            state: if seed == 0 { FAULT_STREAM_SALT } else { seed },
        }
    }

    fn next(&mut self) -> u64 {
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        self.state
    }

    fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        let u = (self.next() >> 11) as f64 / (1u64 << 53) as f64;
        lo + (hi - lo) * u
    }
}

/// A deterministic schedule of survivability faults.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    windows: Vec<FaultWindow>,
}

impl FaultPlan {
    /// An empty plan (the no-fault scenario).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// Add one window. Windows may overlap freely; drivers apply
    /// transitions in the deterministic order [`FaultPlan::transitions`]
    /// yields.
    pub fn with_window(mut self, kind: FaultKind, from: SimTime, until: SimTime) -> Self {
        assert!(from < until, "fault window must have positive length");
        self.windows.push(FaultWindow { kind, from, until });
        self
    }

    /// Crash a DC over `[from, until)` (restart at `until`).
    pub fn with_dc_crash(self, dc: DcId, from: SimTime, until: SimTime) -> Self {
        self.with_window(FaultKind::DcCrash { dc }, from, until)
    }

    /// Partition an endpoint over `[from, until)` (heal at `until`).
    pub fn with_partition(self, target: FaultTarget, from: SimTime, until: SimTime) -> Self {
        self.with_window(FaultKind::Partition { target }, from, until)
    }

    /// Kill one acquisition channel over `[from, until)`.
    pub fn with_sensor_dropout(
        self,
        dc: DcId,
        channel: usize,
        from: SimTime,
        until: SimTime,
    ) -> Self {
        self.with_window(FaultKind::SensorDropout { dc, channel }, from, until)
    }

    /// Stall the PDME over `[from, until)`.
    pub fn with_pdme_stall(self, from: SimTime, until: SimTime) -> Self {
        self.with_window(FaultKind::PdmeStall, from, until)
    }

    /// Crash the PDME at `from` (it restarts from its durable store in
    /// the same tick; `until` only bounds the window for bookkeeping).
    pub fn with_pdme_crash(self, from: SimTime, until: SimTime) -> Self {
        self.with_window(FaultKind::PdmeCrash, from, until)
    }

    /// Draw a random campaign from a dedicated RNG stream of `seed`.
    /// The same `(seed, config)` pair always yields the same plan; the
    /// stream is derived with [`derive_stream_seed`] so it never
    /// collides with plant or network streams of the same master seed.
    pub fn seeded(seed: u64, config: &FaultPlanConfig) -> Self {
        let mut rng = XorShift::new(derive_stream_seed(seed, FAULT_STREAM_SALT));
        let horizon = config.horizon.as_secs();
        let mut plan = FaultPlan::none();
        let draw_window = |rng: &mut XorShift, kind: FaultKind| {
            let len = rng.uniform(config.min_outage.as_secs(), config.max_outage.as_secs());
            let start = rng.uniform(0.0, (horizon - len).max(0.0));
            FaultWindow {
                kind,
                from: SimTime::from_secs(start),
                until: SimTime::from_secs(start + len),
            }
        };
        if !config.dcs.is_empty() {
            for i in 0..config.crashes {
                let dc = config.dcs[i % config.dcs.len()];
                let w = draw_window(&mut rng, FaultKind::DcCrash { dc });
                plan.windows.push(w);
            }
            for i in 0..config.partitions {
                let dc = config.dcs[(i + 1) % config.dcs.len()];
                let kind = FaultKind::Partition {
                    target: FaultTarget::Dc(dc),
                };
                let w = draw_window(&mut rng, kind);
                plan.windows.push(w);
            }
            for i in 0..config.sensor_dropouts {
                let dc = config.dcs[i % config.dcs.len()];
                let channel = (rng.uniform(0.0, config.channels_per_dc.max(1) as f64) as usize)
                    .min(config.channels_per_dc.saturating_sub(1));
                let w = draw_window(&mut rng, FaultKind::SensorDropout { dc, channel });
                plan.windows.push(w);
            }
        }
        for _ in 0..config.pdme_stalls {
            let w = draw_window(&mut rng, FaultKind::PdmeStall);
            plan.windows.push(w);
        }
        plan
    }

    /// The scheduled windows.
    pub fn windows(&self) -> &[FaultWindow] {
        &self.windows
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Every transition falling in `(prev, now]`, sorted by (time, edge,
    /// kind) so same-instant transitions apply in one fixed order (ends
    /// before starts, so a window ending exactly when another starts
    /// yields recover-then-inject).
    pub fn transitions(&self, prev: SimTime, now: SimTime) -> Vec<FaultTransition> {
        let in_range = |t: SimTime| prev < t && t <= now;
        let mut edges: Vec<(SimTime, u8, FaultTransition)> = Vec::new();
        for w in &self.windows {
            if in_range(w.from) {
                edges.push((w.from, 1, FaultTransition::Start(w.kind)));
            }
            if in_range(w.until) {
                edges.push((w.until, 0, FaultTransition::End(w.kind)));
            }
        }
        edges.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .expect("times are finite")
                .then(a.1.cmp(&b.1))
                .then(a.2.kind().order_key().cmp(&b.2.kind().order_key()))
        });
        edges.into_iter().map(|(_, _, t)| t).collect()
    }

    /// Whether any window of a kind matching `pred` is active at `now`.
    pub fn any_active(&self, now: SimTime, pred: impl Fn(&FaultKind) -> bool) -> bool {
        self.windows
            .iter()
            .any(|w| w.active_at(now) && pred(&w.kind))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn transitions_fire_once_in_order() {
        let plan = FaultPlan::none()
            .with_dc_crash(DcId::new(2), secs(10.0), secs(20.0))
            .with_partition(FaultTarget::Dc(DcId::new(1)), secs(10.0), secs(30.0))
            .with_pdme_stall(secs(5.0), secs(10.0));
        // Tick (0, 10]: the stall starts at 5, ends at 10; crash and
        // partition start at 10. Ends sort before starts at t=10.
        let ts = plan.transitions(SimTime::ZERO, secs(10.0));
        assert_eq!(
            ts,
            vec![
                FaultTransition::Start(FaultKind::PdmeStall),
                FaultTransition::End(FaultKind::PdmeStall),
                FaultTransition::Start(FaultKind::DcCrash { dc: DcId::new(2) }),
                FaultTransition::Start(FaultKind::Partition {
                    target: FaultTarget::Dc(DcId::new(1))
                }),
            ]
        );
        // Nothing fires twice.
        assert!(plan.transitions(secs(10.0), secs(15.0)).is_empty());
        let ts = plan.transitions(secs(15.0), secs(30.0));
        assert_eq!(
            ts,
            vec![
                FaultTransition::End(FaultKind::DcCrash { dc: DcId::new(2) }),
                FaultTransition::End(FaultKind::Partition {
                    target: FaultTarget::Dc(DcId::new(1))
                }),
            ]
        );
    }

    #[test]
    fn activity_queries_respect_half_open_windows() {
        let plan = FaultPlan::none().with_pdme_stall(secs(5.0), secs(10.0));
        let stalled = |t: f64| plan.any_active(secs(t), |k| matches!(k, FaultKind::PdmeStall));
        assert!(!stalled(4.9));
        assert!(stalled(5.0));
        assert!(stalled(9.9));
        assert!(!stalled(10.0));
    }

    #[test]
    fn seeded_plans_are_reproducible_and_seed_sensitive() {
        let cfg = FaultPlanConfig {
            dcs: vec![DcId::new(1), DcId::new(2), DcId::new(3)],
            crashes: 2,
            partitions: 2,
            sensor_dropouts: 2,
            pdme_stalls: 1,
            ..Default::default()
        };
        let a = FaultPlan::seeded(42, &cfg);
        let b = FaultPlan::seeded(42, &cfg);
        let c = FaultPlan::seeded(43, &cfg);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.windows().len(), 7);
        for w in a.windows() {
            assert!(w.from < w.until);
            assert!(w.until.as_secs() <= cfg.horizon.as_secs() + 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "positive length")]
    fn empty_windows_are_rejected() {
        let _ = FaultPlan::none().with_pdme_stall(secs(5.0), secs(5.0));
    }
}

//! Deterministic seed-stream derivation.
//!
//! Every stochastic element of a scenario (plant vibration noise,
//! process noise, network jitter, ...) draws from its own RNG stream so
//! that adding, removing or reordering components never shifts another
//! component's noise. Streams are derived from the scenario's master
//! seed and a stable stream id with a splitmix64-style mixer: close
//! master seeds (1, 2, 3, ...) and close stream ids (DC 1, DC 2, ...)
//! still land in statistically unrelated states, unlike the additive
//! `seed + k·id` derivations it replaces.

/// Mix a 64-bit value to a statistically unrelated one (splitmix64
/// finalizer, Steele et al., "Fast Splittable Pseudorandom Number
/// Generators").
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed of one named stream from a scenario's master seed.
///
/// The same `(master, stream)` pair always yields the same seed; distinct
/// pairs yield unrelated seeds. Use a stable identifier for `stream`
/// (e.g. a DC id), never a positional index that shifts when the fleet
/// grows.
pub fn derive_stream_seed(master: u64, stream: u64) -> u64 {
    // Two rounds with the stream folded in between so (a, b) and (b, a)
    // diverge even when master == stream.
    splitmix64(splitmix64(master) ^ splitmix64(stream ^ 0xA5A5_A5A5_5A5A_5A5A))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_stream_seed(7, 1), derive_stream_seed(7, 1));
    }

    #[test]
    fn nearby_inputs_give_unrelated_streams() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..32u64 {
            for stream in 0..32u64 {
                assert!(
                    seen.insert(derive_stream_seed(master, stream)),
                    "collision at ({master}, {stream})"
                );
            }
        }
    }

    #[test]
    fn argument_order_matters() {
        assert_ne!(derive_stream_seed(3, 9), derive_stream_seed(9, 3));
        assert_ne!(derive_stream_seed(5, 5), derive_stream_seed(5, 6));
    }

    #[test]
    fn streams_are_independent_of_fleet_size() {
        // The defining property: DC 2's stream does not depend on how
        // many other DCs exist or in what order they were built.
        let dc2_alone = derive_stream_seed(11, 2);
        let dc2_in_fleet = derive_stream_seed(11, 2);
        assert_eq!(dc2_alone, dc2_in_fleet);
    }
}

//! Deterministic seed-stream derivation.
//!
//! Every stochastic element of a scenario (plant vibration noise,
//! process noise, network jitter, ...) draws from its own RNG stream so
//! that adding, removing or reordering components never shifts another
//! component's noise. Streams are derived from the scenario's master
//! seed and a stable stream id with a splitmix64-style mixer: close
//! master seeds (1, 2, 3, ...) and close stream ids (DC 1, DC 2, ...)
//! still land in statistically unrelated states, unlike the additive
//! `seed + k·id` derivations it replaces.

/// Salt separating trace-seed streams from every other consumer of the
/// scenario master seed (plant noise, network jitter, outbox backoff).
pub const TRACE_STREAM_SALT: u64 = 0x7AC3_5EED_CA15_A17E;

/// Mix a 64-bit value to a statistically unrelated one (splitmix64
/// finalizer, Steele et al., "Fast Splittable Pseudorandom Number
/// Generators").
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derive the seed of one named stream from a scenario's master seed.
///
/// The same `(master, stream)` pair always yields the same seed; distinct
/// pairs yield unrelated seeds. Use a stable identifier for `stream`
/// (e.g. a DC id), never a positional index that shifts when the fleet
/// grows.
pub fn derive_stream_seed(master: u64, stream: u64) -> u64 {
    // Two rounds with the stream folded in between so (a, b) and (b, a)
    // diverge even when master == stream.
    splitmix64(splitmix64(master) ^ splitmix64(stream ^ 0xA5A5_A5A5_5A5A_5A5A))
}

/// Derive a stream seed inside a *salted namespace*: the salt keeps one
/// subsystem's streams (outbox backoff, ship shards, ...) disjoint from
/// every other consumer of the same master seed even when the raw
/// stream ids collide.
pub fn derive_salted_seed(master: u64, stream: u64, salt: u64) -> u64 {
    derive_stream_seed(master, stream ^ salt)
}

/// Derive a DC's trace seed from the scenario master seed, the DC's raw
/// id and its crash epoch. Epoch is folded in because a rebuilt DC
/// restarts its report-id allocator at the same base.
pub fn dc_trace_seed(master: u64, dc_raw: u64, epoch: u64) -> u64 {
    derive_stream_seed(derive_salted_seed(master, dc_raw, TRACE_STREAM_SALT), epoch)
}

/// FNV-1a over a string — the stable 64-bit digest used to fold
/// free-form labels (incident triggers, ...) into seed derivations.
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Deterministic incident id: `master seed ⊕ trigger code ⊕ step` (two
/// [`derive_stream_seed`] rounds). The trigger code is itself a
/// `derive_stream_seed` product so close trigger discriminants don't
/// land in related id streams.
pub fn incident_id(master_seed: u64, trigger_code: u64, step: u64) -> u64 {
    derive_stream_seed(master_seed ^ trigger_code, step)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_is_deterministic() {
        assert_eq!(derive_stream_seed(7, 1), derive_stream_seed(7, 1));
    }

    #[test]
    fn nearby_inputs_give_unrelated_streams() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..32u64 {
            for stream in 0..32u64 {
                assert!(
                    seen.insert(derive_stream_seed(master, stream)),
                    "collision at ({master}, {stream})"
                );
            }
        }
    }

    #[test]
    fn argument_order_matters() {
        assert_ne!(derive_stream_seed(3, 9), derive_stream_seed(9, 3));
        assert_ne!(derive_stream_seed(5, 5), derive_stream_seed(5, 6));
    }

    #[test]
    fn salted_derivation_matches_manual_xor_form() {
        // `derive_salted_seed` is exactly the historical
        // `derive_stream_seed(master, stream ^ salt)` pattern — blessed
        // artifacts (WAL snapshots, bench baselines) depend on it.
        assert_eq!(
            derive_salted_seed(11, 3, 0x0B0C_5EED_D15C_0DE5),
            derive_stream_seed(11, 3 ^ 0x0B0C_5EED_D15C_0DE5)
        );
    }

    #[test]
    fn trace_seed_distinguishes_epochs_and_dcs() {
        let mut seen = std::collections::HashSet::new();
        for dc in 1..=8u64 {
            for epoch in 0..4u64 {
                assert!(seen.insert(dc_trace_seed(5, dc, epoch)));
            }
        }
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Offset basis for the empty string; classic FNV-1a vector for
        // "a". Manual-trigger incident ids depend on these exact values.
        assert_eq!(fnv1a(""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a("a"), 0xAF63_DC4C_8601_EC8C);
    }

    #[test]
    fn incident_id_folds_master_trigger_and_step() {
        assert_eq!(incident_id(7, 2, 80), derive_stream_seed(7 ^ 2, 80));
        assert_ne!(incident_id(7, 2, 80), incident_id(7, 2, 81));
        assert_ne!(incident_id(7, 2, 80), incident_id(7, 3, 80));
    }

    #[test]
    fn streams_are_independent_of_fleet_size() {
        // The defining property: DC 2's stream does not depend on how
        // many other DCs exist or in what order they were built.
        let dc2_alone = derive_stream_seed(11, 2);
        let dc2_in_fleet = derive_stream_seed(11, 2);
        assert_eq!(dc2_alone, dc2_in_fleet);
    }
}

//! Error type shared across MPROS crates.

use std::fmt;

/// Convenience alias used across the workspace.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by MPROS components.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A caller supplied structurally invalid input (unsorted prognostic
    /// vector, empty rule set, out-of-range channel, ...).
    InvalidInput(String),
    /// A referenced entity does not exist (unknown OOSM object, unknown
    /// machine id, ...).
    NotFound(String),
    /// A wire-format encoding or decoding failure.
    Encoding(String),
    /// A simulated-network delivery failure (dropped, partitioned,
    /// disconnected).
    Network(String),
    /// A resource limit was exceeded (SBFR program too large, channel
    /// count beyond the MUX capacity, ...).
    CapacityExceeded(String),
}

impl Error {
    /// Shorthand for [`Error::InvalidInput`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        Error::InvalidInput(msg.into())
    }

    /// Shorthand for [`Error::NotFound`].
    pub fn not_found(msg: impl Into<String>) -> Self {
        Error::NotFound(msg.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::InvalidInput(m) => write!(f, "invalid input: {m}"),
            Error::NotFound(m) => write!(f, "not found: {m}"),
            Error::Encoding(m) => write!(f, "encoding error: {m}"),
            Error::Network(m) => write!(f, "network error: {m}"),
            Error::CapacityExceeded(m) => write!(f, "capacity exceeded: {m}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats() {
        assert_eq!(
            Error::invalid("bad vector").to_string(),
            "invalid input: bad vector"
        );
        assert_eq!(Error::not_found("M-0001").to_string(), "not found: M-0001");
    }

    #[test]
    fn is_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::invalid("x"));
    }
}

//! Simulated time.
//!
//! MPROS experiments must be deterministic and must be able to compress
//! months of machinery degradation into milliseconds of wall time, so all
//! components run against a simulated clock rather than `std::time`.
//!
//! [`SimTime`] is an absolute instant measured in seconds from the start of
//! a scenario; [`SimDuration`] is a span between instants. Both are backed
//! by `f64` seconds, which is exact for the integer tick counts the data
//! concentrator scheduler uses and has femtosecond resolution over the
//! multi-month horizons prognostic vectors describe.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// Seconds in one minute.
pub const MINUTE: f64 = 60.0;
/// Seconds in one hour.
pub const HOUR: f64 = 3_600.0;
/// Seconds in one day.
pub const DAY: f64 = 86_400.0;
/// Seconds in one week.
pub const WEEK: f64 = 7.0 * DAY;
/// Seconds in one (average, 30-day) month — the unit the paper's prognostic
/// examples are phrased in ("3 months, .01").
pub const MONTH: f64 = 30.0 * DAY;

/// An absolute simulated instant, in seconds since scenario start.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimTime(f64);

/// A span of simulated time, in seconds. Durations are always finite; they
/// may be negative as the result of subtracting a later time from an
/// earlier one.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct SimDuration(f64);

impl SimTime {
    /// The scenario origin (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds since scenario start.
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(secs.is_finite(), "SimTime must be finite");
        SimTime(secs)
    }

    /// Seconds since scenario start.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The span from `earlier` to `self`.
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two instants.
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Construct from seconds.
    pub fn from_secs(secs: f64) -> Self {
        debug_assert!(secs.is_finite(), "SimDuration must be finite");
        SimDuration(secs)
    }

    /// Construct from milliseconds.
    pub fn from_millis(ms: f64) -> Self {
        Self::from_secs(ms / 1_000.0)
    }

    /// Construct from minutes.
    pub fn from_minutes(m: f64) -> Self {
        Self::from_secs(m * MINUTE)
    }

    /// Construct from hours.
    pub fn from_hours(h: f64) -> Self {
        Self::from_secs(h * HOUR)
    }

    /// Construct from days.
    pub fn from_days(d: f64) -> Self {
        Self::from_secs(d * DAY)
    }

    /// Construct from weeks.
    pub fn from_weeks(w: f64) -> Self {
        Self::from_secs(w * WEEK)
    }

    /// Construct from 30-day months, the unit of the paper's prognostic
    /// worked examples.
    pub fn from_months(m: f64) -> Self {
        Self::from_secs(m * MONTH)
    }

    /// The span in seconds.
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// The span in milliseconds.
    pub fn as_millis(self) -> f64 {
        self.0 * 1_000.0
    }

    /// The span in days.
    pub fn as_days(self) -> f64 {
        self.0 / DAY
    }

    /// The span in 30-day months.
    pub fn as_months(self) -> f64 {
        self.0 / MONTH
    }

    /// True if the span is negative.
    pub fn is_negative(self) -> bool {
        self.0 < 0.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = f64;
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{}", SimDuration(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0.abs();
        let sign = if self.0 < 0.0 { "-" } else { "" };
        if s >= MONTH {
            write!(f, "{sign}{:.2}mo", s / MONTH)
        } else if s >= DAY {
            write!(f, "{sign}{:.2}d", s / DAY)
        } else if s >= HOUR {
            write!(f, "{sign}{:.2}h", s / HOUR)
        } else if s >= 1.0 {
            write!(f, "{sign}{:.3}s", s)
        } else {
            write!(f, "{sign}{:.3}ms", s * 1_000.0)
        }
    }
}

/// A monotonically advancing simulated clock.
///
/// Components that need "now" (the DC scheduler, the PDME timestamping
/// incoming reports) share one `SimClock` per scenario and advance it from
/// the scenario driver. The clock refuses to move backwards.
#[derive(Debug, Clone, Default)]
pub struct SimClock {
    now: SimTime,
}

impl SimClock {
    /// A clock at the scenario origin.
    pub fn new() -> Self {
        Self { now: SimTime::ZERO }
    }

    /// A clock starting at the given instant.
    pub fn starting_at(now: SimTime) -> Self {
        Self { now }
    }

    /// The current instant.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance by `dt`. Panics (in debug builds) on negative spans.
    pub fn advance(&mut self, dt: SimDuration) {
        debug_assert!(!dt.is_negative(), "clock cannot run backwards");
        self.now += dt;
    }

    /// Jump forward to `t` if it is later than now; otherwise leave the
    /// clock unchanged. Returns the (possibly unchanged) current instant.
    pub fn advance_to(&mut self, t: SimTime) -> SimTime {
        self.now = self.now.max(t);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn arithmetic_roundtrips() {
        let t0 = SimTime::from_secs(10.0);
        let dt = SimDuration::from_secs(5.0);
        let t1 = t0 + dt;
        assert_eq!(t1.as_secs(), 15.0);
        assert_eq!((t1 - t0).as_secs(), 5.0);
        assert_eq!((t0 - t1).as_secs(), -5.0);
        assert!((t0 - t1).is_negative());
    }

    #[test]
    fn unit_constructors_agree_with_constants() {
        assert_eq!(SimDuration::from_months(1.0).as_secs(), MONTH);
        assert_eq!(SimDuration::from_weeks(1.0).as_secs(), WEEK);
        assert_eq!(SimDuration::from_days(1.0).as_secs(), DAY);
        assert_eq!(SimDuration::from_hours(2.0).as_secs(), 2.0 * HOUR);
        assert_eq!(SimDuration::from_minutes(3.0).as_secs(), 180.0);
        assert_eq!(SimDuration::from_millis(250.0).as_secs(), 0.25);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_months(3.0).to_string(), "3.00mo");
        assert_eq!(SimDuration::from_days(2.0).to_string(), "2.00d");
        assert_eq!(SimDuration::from_secs(1.5).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(4.0).to_string(), "4.000ms");
        assert_eq!(SimDuration::from_secs(-1.5).to_string(), "-1.500s");
    }

    #[test]
    fn clock_is_monotone() {
        let mut clk = SimClock::new();
        clk.advance(SimDuration::from_secs(1.0));
        assert_eq!(clk.now().as_secs(), 1.0);
        clk.advance_to(SimTime::from_secs(0.5)); // earlier: no-op
        assert_eq!(clk.now().as_secs(), 1.0);
        clk.advance_to(SimTime::from_secs(2.0));
        assert_eq!(clk.now().as_secs(), 2.0);
    }

    #[test]
    fn duration_ratio() {
        let a = SimDuration::from_days(1.0);
        let b = SimDuration::from_hours(6.0);
        assert_eq!(a / b, 4.0);
    }

    proptest! {
        #[test]
        fn add_then_subtract_is_identity(t in -1.0e9..1.0e9f64, d in -1.0e9..1.0e9f64) {
            let t0 = SimTime::from_secs(t);
            let dt = SimDuration::from_secs(d);
            let back = (t0 + dt) - dt;
            prop_assert!((back.as_secs() - t).abs() <= 1e-6 * t.abs().max(d.abs()).max(1.0));
        }

        #[test]
        fn since_is_antisymmetric(a in -1.0e9..1.0e9f64, b in -1.0e9..1.0e9f64) {
            let (ta, tb) = (SimTime::from_secs(a), SimTime::from_secs(b));
            prop_assert_eq!(ta.since(tb).as_secs(), -(tb.since(ta).as_secs()));
        }

        #[test]
        fn max_min_are_ordered(a in -1.0e9..1.0e9f64, b in -1.0e9..1.0e9f64) {
            let (ta, tb) = (SimTime::from_secs(a), SimTime::from_secs(b));
            prop_assert!(ta.min(tb) <= ta.max(tb));
        }
    }
}

//! Typed identifiers for MPROS entities.
//!
//! The paper's reporting protocol (§7.2) keys every report by the unique
//! MPROS object ids of the knowledge source, the sensed object and the
//! diagnosed machine condition. We give each id role its own newtype so the
//! compiler rejects, e.g., a sensor id used where a machine id is expected.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

macro_rules! define_id {
    ($(#[$meta:meta])* $name:ident, $prefix:literal) => {
        $(#[$meta])*
        #[derive(
            Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
        )]
        pub struct $name(pub u64);

        impl $name {
            /// Wrap a raw numeric identifier.
            pub const fn new(raw: u64) -> Self {
                Self(raw)
            }

            /// The raw numeric value.
            pub const fn raw(self) -> u64 {
                self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "-{:04}"), self.0)
            }
        }

        impl From<u64> for $name {
            fn from(raw: u64) -> Self {
                Self(raw)
            }
        }
    };
}

define_id!(
    /// Identifier of a Data Concentrator (the embedded computer placed near
    /// the machinery; §1.1 of the paper).
    DcId,
    "DC"
);
define_id!(
    /// Identifier of a knowledge source: one of the diagnostic/prognostic
    /// algorithm suites (DLI expert system, SBFR, WNN, fuzzy logic) or any
    /// later-added expert system.
    KnowledgeSourceId,
    "KS"
);
define_id!(
    /// Identifier of a monitored machine or machine part (compressor,
    /// motor, pump, gear set, ...).
    MachineId,
    "M"
);
define_id!(
    /// Identifier of an individual sensor channel.
    SensorId,
    "S"
);
define_id!(
    /// Identifier of a condition report instance.
    ReportId,
    "R"
);
define_id!(
    /// Identifier of an arbitrary object in the Object-Oriented Ship Model.
    ObjectId,
    "OBJ"
);

/// A process-wide monotonically increasing id allocator.
///
/// MPROS components mint report and object ids concurrently from DC worker
/// threads; a relaxed atomic counter is sufficient because ids only need to
/// be unique, not ordered with respect to other memory operations.
#[derive(Debug, Default)]
pub struct IdAllocator {
    next: AtomicU64,
}

impl IdAllocator {
    /// Create an allocator that starts at zero.
    pub const fn new() -> Self {
        Self {
            next: AtomicU64::new(0),
        }
    }

    /// Create an allocator whose first issued id is `first`.
    pub const fn starting_at(first: u64) -> Self {
        Self {
            next: AtomicU64::new(first),
        }
    }

    /// Allocate the next raw id.
    pub fn next_raw(&self) -> u64 {
        self.next.fetch_add(1, Ordering::Relaxed)
    }

    /// Allocate the next id, converted into any of the typed id wrappers.
    pub fn next_id<T: From<u64>>(&self) -> T {
        T::from(self.next_raw())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn display_uses_role_prefix() {
        assert_eq!(DcId::new(3).to_string(), "DC-0003");
        assert_eq!(KnowledgeSourceId::new(12).to_string(), "KS-0012");
        assert_eq!(MachineId::new(0).to_string(), "M-0000");
        assert_eq!(ReportId::new(1234).to_string(), "R-1234");
    }

    #[test]
    fn ids_roundtrip_through_serde() {
        let id = MachineId::new(42);
        let json = serde_json::to_string(&id).unwrap();
        let back: MachineId = serde_json::from_str(&json).unwrap();
        assert_eq!(id, back);
    }

    #[test]
    fn allocator_is_sequential_single_threaded() {
        let alloc = IdAllocator::new();
        let ids: Vec<u64> = (0..10).map(|_| alloc.next_raw()).collect();
        assert_eq!(ids, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn allocator_starting_at_honours_offset() {
        let alloc = IdAllocator::starting_at(100);
        assert_eq!(alloc.next_raw(), 100);
        assert_eq!(alloc.next_raw(), 101);
    }

    #[test]
    fn allocator_unique_across_threads() {
        let alloc = std::sync::Arc::new(IdAllocator::new());
        let mut handles = Vec::new();
        for _ in 0..8 {
            let alloc = alloc.clone();
            handles.push(std::thread::spawn(move || {
                (0..1000).map(|_| alloc.next_raw()).collect::<Vec<_>>()
            }));
        }
        let mut seen = HashSet::new();
        for h in handles {
            for id in h.join().unwrap() {
                assert!(seen.insert(id), "duplicate id {id}");
            }
        }
        assert_eq!(seen.len(), 8000);
    }

    #[test]
    fn typed_allocation_produces_distinct_types() {
        let alloc = IdAllocator::new();
        let a: MachineId = alloc.next_id();
        let b: SensorId = alloc.next_id();
        assert_eq!(a.raw(), 0);
        assert_eq!(b.raw(), 1);
    }
}

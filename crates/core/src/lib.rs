//! # mpros-core
//!
//! Shared vocabulary for the MPROS (Machinery Prognostics and Diagnostics
//! System) reproduction: typed identifiers, simulated time, the catalog of
//! machine conditions selected by the paper's FMEA, condition-report
//! structures matching the failure-prediction reporting protocol of §7 of
//! the paper, prognostic vectors (§5.4), severity grades (§6.1), and the
//! logical failure groups used by diagnostic knowledge fusion (§5.3).
//!
//! Every other MPROS crate depends on this one; it has no dependencies on
//! the rest of the workspace and only `serde` from the outside world.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod belief;
pub mod condition;
pub mod durable;
pub mod error;
pub mod fault;
pub mod id;
pub mod prognostic;
pub mod report;
pub mod seed;
pub mod severity;
pub mod time;

pub use belief::Belief;
pub use condition::{FailureGroup, MachineCondition};
pub use durable::Durable;
pub use error::{Error, Result};
pub use fault::{FaultKind, FaultPlan, FaultPlanConfig, FaultTarget, FaultTransition, FaultWindow};
pub use id::{DcId, IdAllocator, KnowledgeSourceId, MachineId, ObjectId, ReportId, SensorId};
pub use prognostic::{PrognosticPoint, PrognosticVector};
pub use report::{ConditionReport, ReportBuilder};
pub use seed::{derive_salted_seed, derive_stream_seed};
pub use severity::{Severity, SeverityGrade, TimeToFailure};
pub use time::{SimClock, SimDuration, SimTime};

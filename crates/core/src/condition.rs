//! The machine-condition catalog and logical failure groups.
//!
//! The paper's phase-1 FMEA on the centrifugal chilled-water plant selected
//! *12 candidate failure modes* (§3.3). The proprietary list is not
//! published, so we re-derive twelve canonical centrifugal-chiller failure
//! modes from standard rotating-machinery practice; each carries the fault
//! physics the paper's four algorithm suites key on (spectral signatures
//! for the vibration paths, process-variable signatures for the fuzzy
//! path).
//!
//! §5.3 introduces *logical groups*: "Failures, which are all part of the
//! same logical groups, are related to each other (for example, one group
//! might be electrical failures, another lubricant failures)". Dempster-
//! Shafer fusion runs within a group (members may be mistaken for one
//! another and share belief mass) while distinct groups are treated as
//! independent so multiple concurrent failures are representable.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The twelve candidate failure modes of the chiller FMEA (E9 in
/// DESIGN.md), plus the catch-all used by Dempster–Shafer frames.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[allow(missing_docs)] // variants are documented by `description`
pub enum MachineCondition {
    MotorImbalance,
    MotorMisalignment,
    MotorBearingDefect,
    MotorRotorBarCrack,
    MotorWindingInsulation,
    GearToothWear,
    CompressorBearingDefect,
    CompressorSurge,
    RefrigerantLeak,
    CondenserFouling,
    LubeOilDegradation,
    BearingHousingLooseness,
}

impl MachineCondition {
    /// All twelve FMEA failure modes, in catalog order.
    pub const ALL: [MachineCondition; 12] = [
        MachineCondition::MotorImbalance,
        MachineCondition::MotorMisalignment,
        MachineCondition::MotorBearingDefect,
        MachineCondition::MotorRotorBarCrack,
        MachineCondition::MotorWindingInsulation,
        MachineCondition::GearToothWear,
        MachineCondition::CompressorBearingDefect,
        MachineCondition::CompressorSurge,
        MachineCondition::RefrigerantLeak,
        MachineCondition::CondenserFouling,
        MachineCondition::LubeOilDegradation,
        MachineCondition::BearingHousingLooseness,
    ];

    /// Stable small integer index of this condition within [`Self::ALL`];
    /// used as the bit position in Dempster–Shafer subset masks and as the
    /// condition id on the wire.
    pub fn index(self) -> usize {
        Self::ALL
            .iter()
            .position(|c| *c == self)
            .expect("condition present in catalog")
    }

    /// Inverse of [`Self::index`].
    pub fn from_index(i: usize) -> Option<MachineCondition> {
        Self::ALL.get(i).copied()
    }

    /// The logical failure group this condition belongs to (§5.3).
    pub fn group(self) -> FailureGroup {
        use MachineCondition::*;
        match self {
            MotorImbalance | MotorMisalignment => FailureGroup::RotorDynamics,
            MotorBearingDefect | CompressorBearingDefect => FailureGroup::Bearings,
            MotorRotorBarCrack | MotorWindingInsulation => FailureGroup::Electrical,
            GearToothWear | BearingHousingLooseness => FailureGroup::Structural,
            CompressorSurge | RefrigerantLeak | CondenserFouling => FailureGroup::Process,
            LubeOilDegradation => FailureGroup::Lubrication,
        }
    }

    /// Human-readable description in the style of the paper's examples
    /// ("motor imbalance, motor rotor bar problem, pump bearing housing
    /// looseness, ...").
    pub fn description(self) -> &'static str {
        use MachineCondition::*;
        match self {
            MotorImbalance => "motor imbalance",
            MotorMisalignment => "motor/compressor shaft misalignment",
            MotorBearingDefect => "motor rolling-element bearing defect",
            MotorRotorBarCrack => "motor rotor bar crack",
            MotorWindingInsulation => "motor winding insulation degradation",
            GearToothWear => "gear transmission tooth wear",
            CompressorBearingDefect => "compressor bearing defect",
            CompressorSurge => "compressor surge",
            RefrigerantLeak => "refrigerant charge loss / leak",
            CondenserFouling => "condenser tube fouling",
            LubeOilDegradation => "lubricating oil degradation",
            BearingHousingLooseness => "bearing housing looseness",
        }
    }

    /// True if the fault expresses itself primarily in vibration spectra
    /// (the DLI and WNN paths); false if it is primarily a process fault
    /// (the fuzzy-logic path). Some faults show in both; this reports the
    /// *primary* evidence channel.
    pub fn is_vibration_fault(self) -> bool {
        use MachineCondition::*;
        !matches!(
            self,
            CompressorSurge
                | RefrigerantLeak
                | CondenserFouling
                | LubeOilDegradation
                | MotorWindingInsulation
        )
    }
}

impl fmt::Display for MachineCondition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.description())
    }
}

/// Logical failure groups (§5.3): partitions of the condition catalog.
/// Dempster–Shafer combination happens within a group; groups are mutually
/// independent so concurrent failures in different groups are natural.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FailureGroup {
    /// Shaft/rotor dynamics: imbalance, misalignment.
    RotorDynamics,
    /// Rolling-element bearing faults.
    Bearings,
    /// Electrical faults of the induction motor.
    Electrical,
    /// Mechanical/structural faults: gears, looseness.
    Structural,
    /// Refrigeration-cycle process faults.
    Process,
    /// Lubrication-system faults.
    Lubrication,
}

impl FailureGroup {
    /// All groups, in catalog order.
    pub const ALL: [FailureGroup; 6] = [
        FailureGroup::RotorDynamics,
        FailureGroup::Bearings,
        FailureGroup::Electrical,
        FailureGroup::Structural,
        FailureGroup::Process,
        FailureGroup::Lubrication,
    ];

    /// The conditions belonging to this group, in catalog order.
    pub fn members(self) -> Vec<MachineCondition> {
        MachineCondition::ALL
            .iter()
            .copied()
            .filter(|c| c.group() == self)
            .collect()
    }

    /// Short label used in user-interface output.
    pub fn label(self) -> &'static str {
        match self {
            FailureGroup::RotorDynamics => "rotor dynamics",
            FailureGroup::Bearings => "bearings",
            FailureGroup::Electrical => "electrical",
            FailureGroup::Structural => "structural",
            FailureGroup::Process => "process",
            FailureGroup::Lubrication => "lubrication",
        }
    }
}

impl fmt::Display for FailureGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fmea_selected_exactly_twelve_modes() {
        // §3.3: "used to select 12 candidate failure modes".
        assert_eq!(MachineCondition::ALL.len(), 12);
        let unique: HashSet<_> = MachineCondition::ALL.iter().collect();
        assert_eq!(unique.len(), 12);
    }

    #[test]
    fn index_roundtrips() {
        for (i, c) in MachineCondition::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
            assert_eq!(MachineCondition::from_index(i), Some(*c));
        }
        assert_eq!(MachineCondition::from_index(12), None);
    }

    #[test]
    fn groups_partition_the_catalog() {
        let mut covered = HashSet::new();
        for g in FailureGroup::ALL {
            for m in g.members() {
                assert_eq!(m.group(), g);
                assert!(covered.insert(m), "{m} in two groups");
            }
        }
        assert_eq!(covered.len(), 12, "every condition is in some group");
    }

    #[test]
    fn every_group_is_nonempty() {
        for g in FailureGroup::ALL {
            assert!(!g.members().is_empty(), "{g} has no members");
        }
    }

    #[test]
    fn paper_example_groups_exist() {
        // §5.3 names "electrical failures" and "lubricant failures" as
        // example groups.
        assert!(FailureGroup::ALL.contains(&FailureGroup::Electrical));
        assert!(FailureGroup::ALL.contains(&FailureGroup::Lubrication));
    }

    #[test]
    fn vibration_vs_process_split() {
        use MachineCondition::*;
        assert!(MotorImbalance.is_vibration_fault());
        assert!(MotorBearingDefect.is_vibration_fault());
        assert!(!CompressorSurge.is_vibration_fault());
        assert!(!RefrigerantLeak.is_vibration_fault());
        // At least one fault on each evidence channel so every algorithm
        // suite has something to diagnose.
        assert!(MachineCondition::ALL.iter().any(|c| c.is_vibration_fault()));
        assert!(MachineCondition::ALL
            .iter()
            .any(|c| !c.is_vibration_fault()));
    }

    #[test]
    fn serde_roundtrip() {
        for c in MachineCondition::ALL {
            let s = serde_json::to_string(&c).unwrap();
            let back: MachineCondition = serde_json::from_str(&s).unwrap();
            assert_eq!(c, back);
        }
    }
}

//! Disassembler for machine images.
//!
//! §6.3 allows new machines to be "downloaded into the smart sensor" at
//! run time; operators need to see what a binary image will do before
//! trusting it. [`disassemble`] renders an image as a Fig. 3-style
//! listing: one block per state, `C:` condition and `A:` action lines
//! per transition, in the paper's own notation.

use crate::expr::{Action, CmpOp, Expr};
use crate::program::Program;
use mpros_core::Result;
use std::fmt::Write as _;

/// Render a condition expression in Fig. 3 notation.
pub fn render_expr(e: &Expr) -> String {
    match e {
        Expr::Input(ch) => format!("In:{ch}"),
        Expr::Delta(ch) => format!("ΔIn:{ch}"),
        Expr::Local(i) => format!("Local:{i}"),
        Expr::Status(m) => format!("Status:{m}"),
        Expr::Elapsed => "ΔT".to_string(),
        Expr::Const(v) => {
            if (v.fract()).abs() < 1e-6 {
                format!("{}", *v as i64)
            } else {
                format!("{v}")
            }
        }
        Expr::Cmp(op, a, b) => {
            let sym = match op {
                CmpOp::Lt => "<",
                CmpOp::Le => "≤",
                CmpOp::Gt => ">",
                CmpOp::Ge => "≥",
                CmpOp::Eq => "=",
                CmpOp::Ne => "≠",
            };
            format!("{} {sym} {}", render_expr(a), render_expr(b))
        }
        Expr::And(a, b) => format!("{} & {}", render_expr(a), render_expr(b)),
        Expr::Or(a, b) => format!("({} | {})", render_expr(a), render_expr(b)),
        Expr::Not(a) => format!("!({})", render_expr(a)),
    }
}

/// Render an action in Fig. 3 notation.
pub fn render_action(a: &Action) -> String {
    match *a {
        Action::SetStatus(m, v) => format!("Status:{m} ← {v}"),
        Action::OrStatus(m, v) => format!("Status:{m} ← Status:{m} ∨ {v}"),
        Action::SetLocal(i, v) => format!("Local:{i} ← {v}"),
        Action::AddLocal(i, v) => {
            if v >= 0 {
                format!("Local:{i} ← Local:{i} + {v}")
            } else {
                format!("Local:{i} ← Local:{i} - {}", -v)
            }
        }
    }
}

/// Disassemble a binary machine image into a human-readable listing.
pub fn disassemble(image: &[u8]) -> Result<String> {
    let program = Program::decode(image)?;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "; {} bytes, {} states, {} locals, initial S{}",
        image.len(),
        program.states.len(),
        program.locals,
        program.initial
    );
    for (si, state) in program.states.iter().enumerate() {
        let _ = writeln!(out, "S{si}:");
        if state.transitions.is_empty() {
            let _ = writeln!(out, "  (terminal)");
        }
        for t in &state.transitions {
            let _ = writeln!(out, "  → S{}", t.target);
            let _ = writeln!(out, "    C: {}", render_expr(&t.condition));
            for a in &t.actions {
                let _ = writeln!(out, "    A: {}", render_action(a));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builtin::{spike_machine, stiction_machine};
    use crate::program::ProgramBuilder;

    #[test]
    fn fig3_machines_disassemble_in_paper_notation() {
        let img = stiction_machine(1, 0).encode().unwrap();
        let text = disassemble(&img).unwrap();
        assert!(text.contains("Status:0 ≠ 0"), "{text}");
        assert!(text.contains("Status:0 ← 0"));
        assert!(text.contains("Local:0 ← Local:0 + 1"));
        assert!(text.contains("Local:0 > 4"), "stiction count threshold");
        let spike = disassemble(&spike_machine(0).encode().unwrap()).unwrap();
        assert!(spike.contains("ΔT ≤ 4"), "{spike}");
        assert!(spike.contains("ΔIn:0"));
    }

    #[test]
    fn listing_reports_image_metadata() {
        let img = spike_machine(0).encode().unwrap();
        let text = disassemble(&img).unwrap();
        assert!(text.starts_with(&format!("; {} bytes, 4 states", img.len())));
        assert!(text.contains("S0:") && text.contains("S3:"));
    }

    #[test]
    fn terminal_states_are_marked() {
        let mut b = ProgramBuilder::new("oneway", 0);
        let a = b.state("A");
        let end = b.state("End");
        b.transition(a, end, Expr::ge(Expr::Elapsed, Expr::Const(1.0)), vec![]);
        let img = b.build().unwrap().encode().unwrap();
        let text = disassemble(&img).unwrap();
        assert!(text.contains("(terminal)"));
    }

    #[test]
    fn corrupt_images_fail_cleanly() {
        assert!(disassemble(&[1, 2, 3]).is_err());
    }

    #[test]
    fn negative_and_fractional_constants_render() {
        let mut b = ProgramBuilder::new("x", 1);
        let s = b.state("S");
        b.transition(
            s,
            s,
            Expr::lt(Expr::Input(0), Expr::Const(-0.5)),
            vec![crate::expr::Action::AddLocal(0, -2)],
        );
        let text = disassemble(&b.build().unwrap().encode().unwrap()).unwrap();
        assert!(text.contains("In:0 < -0.5"));
        assert!(text.contains("Local:0 ← Local:0 - 2"));
    }
}

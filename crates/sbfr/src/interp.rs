//! The SBFR interpreter.
//!
//! Executes a set of state-machine *images* (see [`crate::program`]) in
//! lockstep: one call to [`Interpreter::cycle`] is one SBFR cycle — the
//! paper's interpreter "can cycle with a period of less than 4
//! milliseconds" over "100 state machines operating in parallel". The
//! interpreter works directly on the binary images, so the resident
//! footprint is the sum of image bytes plus per-machine registers,
//! mirroring the paper's 32 KB budget.
//!
//! Semantics:
//! * machines execute in index order within a cycle; status writes are
//!   visible to later machines in the same cycle (the paper's stiction
//!   machine reads and resets the spike machine's status);
//! * in each machine, the current state's transitions are evaluated in
//!   declaration order and the first satisfied one is taken;
//! * `Delta(ch)` is the change of input `ch` since the previous cycle
//!   (zero on the first cycle);
//! * `Elapsed` counts completed cycles since the machine entered its
//!   current state (the paper's ∆T);
//! * reads of missing input channels or out-of-range status registers
//!   yield 0; writes to out-of-range registers are ignored — a running
//!   DC must tolerate a partially downloaded machine set (§6.3 allows
//!   downloading new machines at run time).

use crate::expr::op;
use crate::program::Program;
use mpros_core::{Error, Result};

/// Maximum expression-stack depth (images are validated to fit).
const STACK_MAX: usize = 32;

/// A transition taken during a cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transition {
    /// Machine index.
    pub machine: usize,
    /// State left.
    pub from: u8,
    /// State entered.
    pub to: u8,
}

/// Status snapshot of one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MachineStatus {
    /// Current state index.
    pub state: u8,
    /// Cycles since entering the state.
    pub elapsed: u32,
    /// Status register value.
    pub status: i32,
}

struct MachineImage {
    image: Vec<u8>,
    /// Byte offset of each state's transition table.
    state_offsets: Vec<usize>,
    initial: u8,
    locals_count: u8,
}

/// The multi-machine SBFR interpreter.
pub struct Interpreter {
    machines: Vec<MachineImage>,
    state: Vec<u8>,
    elapsed: Vec<u32>,
    locals: Vec<Vec<i32>>,
    statuses: Vec<i32>,
    prev_inputs: Vec<f64>,
    has_prev: bool,
}

impl Default for Interpreter {
    fn default() -> Self {
        Self::new()
    }
}

impl Interpreter {
    /// An interpreter with no machines.
    pub fn new() -> Self {
        Interpreter {
            machines: Vec::new(),
            state: Vec::new(),
            elapsed: Vec::new(),
            locals: Vec::new(),
            statuses: Vec::new(),
            prev_inputs: Vec::new(),
            has_prev: false,
        }
    }

    /// Load a machine from its binary image; returns its index. The
    /// image is fully validated (decoded) before acceptance.
    pub fn add_machine(&mut self, image: &[u8]) -> Result<usize> {
        let parsed = Self::index_image(image)?;
        let idx = self.machines.len();
        self.state.push(parsed.initial);
        self.elapsed.push(0);
        self.locals.push(vec![0; parsed.locals_count as usize]);
        self.statuses.push(0);
        self.machines.push(parsed);
        Ok(idx)
    }

    /// Load a [`Program`] directly (encodes then adds).
    pub fn add_program(&mut self, program: &Program) -> Result<usize> {
        self.add_machine(&program.encode()?)
    }

    /// Replace machine `idx` with a freshly downloaded image, resetting
    /// its runtime registers (§6.3: "new finite-state machines may be
    /// downloaded into the smart sensor").
    pub fn replace_machine(&mut self, idx: usize, image: &[u8]) -> Result<()> {
        if idx >= self.machines.len() {
            return Err(Error::not_found(format!("machine {idx}")));
        }
        let parsed = Self::index_image(image)?;
        self.state[idx] = parsed.initial;
        self.elapsed[idx] = 0;
        self.locals[idx] = vec![0; parsed.locals_count as usize];
        self.statuses[idx] = 0;
        self.machines[idx] = parsed;
        Ok(())
    }

    fn index_image(image: &[u8]) -> Result<MachineImage> {
        // Full structural validation via decode.
        let program = Program::decode(image)?;
        // Index state offsets by re-walking the image.
        let n_states = image[3] as usize;
        let mut offsets = Vec::with_capacity(n_states);
        let mut i = 6usize;
        for _ in 0..n_states {
            offsets.push(i);
            let n_trans = image[i] as usize;
            i += 1;
            for _ in 0..n_trans {
                let cond_len = u16::from_le_bytes([image[i + 1], image[i + 2]]) as usize;
                i += 3 + cond_len;
                let n_actions = image[i] as usize;
                i += 1 + n_actions * crate::expr::Action::ENCODED_LEN;
            }
        }
        Ok(MachineImage {
            image: image.to_vec(),
            state_offsets: offsets,
            initial: program.initial,
            locals_count: program.locals,
        })
    }

    /// Number of loaded machines.
    pub fn machine_count(&self) -> usize {
        self.machines.len()
    }

    /// Total resident image bytes — the footprint figure of §6.3.
    pub fn total_image_bytes(&self) -> usize {
        self.machines.iter().map(|m| m.image.len()).sum()
    }

    /// Snapshot of machine `idx`.
    pub fn status(&self, idx: usize) -> Option<MachineStatus> {
        (idx < self.machines.len()).then(|| MachineStatus {
            state: self.state[idx],
            elapsed: self.elapsed[idx],
            status: self.statuses[idx],
        })
    }

    /// Read a local variable (for tests and higher-level software).
    pub fn local(&self, machine: usize, idx: usize) -> Option<i32> {
        self.locals.get(machine)?.get(idx).copied()
    }

    /// Externally write a status register — the paper's "some other
    /// agent ... has the responsibility to then reset Machine 1's status
    /// register to 0".
    pub fn set_status(&mut self, machine: usize, value: i32) -> Result<()> {
        if machine >= self.statuses.len() {
            return Err(Error::not_found(format!("machine {machine}")));
        }
        self.statuses[machine] = value;
        Ok(())
    }

    /// One full SBFR cycle with the given input-channel values: evaluate
    /// every machine in index order, then age ∆T on machines that held
    /// their state. Returns the transitions taken this cycle.
    pub fn cycle(&mut self, inputs: &[f64]) -> Vec<Transition> {
        let mut taken = Vec::new();
        for m in 0..self.machines.len() {
            if let Some(t) = self.step_machine(m, inputs) {
                taken.push(t);
            }
        }
        // Age ∆T for machines that did not transition this cycle.
        for m in 0..self.elapsed.len() {
            if !taken.iter().any(|t| t.machine == m) {
                self.elapsed[m] = self.elapsed[m].saturating_add(1);
            }
        }
        // Book-keeping for Delta(): remember this cycle's inputs.
        self.prev_inputs.clear();
        self.prev_inputs.extend_from_slice(inputs);
        self.has_prev = true;
        taken
    }

    fn step_machine(&mut self, m: usize, inputs: &[f64]) -> Option<Transition> {
        let cur = self.state[m];
        let (n_trans, mut at) = {
            let img = &self.machines[m];
            let off = img.state_offsets[cur as usize];
            (img.image[off] as usize, off + 1)
        };
        let mut chosen: Option<(u8, usize, usize)> = None; // target, act_at, n_actions
        for _ in 0..n_trans {
            let img = &self.machines[m];
            let target = img.image[at];
            let cond_len = u16::from_le_bytes([img.image[at + 1], img.image[at + 2]]) as usize;
            let cond_start = at + 3;
            let cond_end = cond_start + cond_len;
            let n_actions = img.image[cond_end] as usize;
            let fire = self.eval(m, &self.machines[m].image[cond_start..cond_end], inputs);
            if fire {
                chosen = Some((target, cond_end + 1, n_actions));
                break;
            }
            at = cond_end + 1 + n_actions * crate::expr::Action::ENCODED_LEN;
        }
        let (target, mut act_at, n_actions) = chosen?;
        // Execute actions.
        for _ in 0..n_actions {
            let img = &self.machines[m].image;
            let opcode = img[act_at];
            let reg = img[act_at + 1] as usize;
            let v = i16::from_le_bytes([img[act_at + 2], img[act_at + 3]]) as i32;
            act_at += 4;
            match opcode {
                op::ACT_SET_STATUS => {
                    if reg < self.statuses.len() {
                        self.statuses[reg] = v;
                    }
                }
                op::ACT_OR_STATUS => {
                    if reg < self.statuses.len() {
                        self.statuses[reg] |= v;
                    }
                }
                op::ACT_SET_LOCAL => {
                    if let Some(l) = self.locals[m].get_mut(reg) {
                        *l = v;
                    }
                }
                op::ACT_ADD_LOCAL => {
                    if let Some(l) = self.locals[m].get_mut(reg) {
                        *l = l.saturating_add(v);
                    }
                }
                _ => unreachable!("images are validated at load"),
            }
        }
        let from = cur;
        // Taking a transition (including a self-loop) re-enters the
        // target state, so ∆T restarts.
        self.state[m] = target;
        self.elapsed[m] = 0;
        Some(Transition {
            machine: m,
            from,
            to: target,
        })
    }

    /// Evaluate a condition bytecode slice for machine `m`.
    fn eval(&self, m: usize, code: &[u8], inputs: &[f64]) -> bool {
        let mut stack = [0.0f64; STACK_MAX];
        let mut sp = 0usize;
        let mut i = 0usize;
        macro_rules! push {
            ($v:expr) => {{
                if sp < STACK_MAX {
                    stack[sp] = $v;
                    sp += 1;
                }
            }};
        }
        macro_rules! pop2 {
            () => {{
                let b = stack[sp - 1];
                let a = stack[sp - 2];
                sp -= 2;
                (a, b)
            }};
        }
        while i < code.len() {
            let opcode = code[i];
            i += 1;
            match opcode {
                op::PUSH_INPUT => {
                    let ch = code[i] as usize;
                    i += 1;
                    push!(inputs.get(ch).copied().unwrap_or(0.0));
                }
                op::PUSH_DELTA => {
                    let ch = code[i] as usize;
                    i += 1;
                    let now = inputs.get(ch).copied().unwrap_or(0.0);
                    let before = if self.has_prev {
                        self.prev_inputs.get(ch).copied().unwrap_or(0.0)
                    } else {
                        now
                    };
                    push!(now - before);
                }
                op::PUSH_LOCAL => {
                    let idx = code[i] as usize;
                    i += 1;
                    push!(self.locals[m].get(idx).copied().unwrap_or(0) as f64);
                }
                op::PUSH_STATUS => {
                    let idx = code[i] as usize;
                    i += 1;
                    push!(self.statuses.get(idx).copied().unwrap_or(0) as f64);
                }
                op::PUSH_ELAPSED => push!(self.elapsed[m] as f64),
                op::PUSH_CONST => {
                    let v = f32::from_le_bytes(code[i..i + 4].try_into().expect("validated image"));
                    i += 4;
                    push!(v as f64);
                }
                op::LT => {
                    let (a, b) = pop2!();
                    push!(f64::from(a < b));
                }
                op::LE => {
                    let (a, b) = pop2!();
                    push!(f64::from(a <= b));
                }
                op::GT => {
                    let (a, b) = pop2!();
                    push!(f64::from(a > b));
                }
                op::GE => {
                    let (a, b) = pop2!();
                    push!(f64::from(a >= b));
                }
                op::EQ => {
                    let (a, b) = pop2!();
                    push!(f64::from(a == b));
                }
                op::NE => {
                    let (a, b) = pop2!();
                    push!(f64::from(a != b));
                }
                op::AND => {
                    let (a, b) = pop2!();
                    push!(f64::from(a != 0.0 && b != 0.0));
                }
                op::OR => {
                    let (a, b) = pop2!();
                    push!(f64::from(a != 0.0 || b != 0.0));
                }
                op::NOT => {
                    let a = stack[sp - 1];
                    stack[sp - 1] = f64::from(a == 0.0);
                }
                _ => unreachable!("images are validated at load"),
            }
        }
        sp == 1 && stack[0] != 0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Action, Expr};
    use crate::program::ProgramBuilder;

    /// Single machine that moves Off→On when input0 > 0.5 and back,
    /// OR-ing its own status bit on rise and clearing on fall.
    fn toggler() -> Program {
        let mut b = ProgramBuilder::new("toggler", 1);
        let off = b.state("Off");
        let on = b.state("On");
        b.transition(
            off,
            on,
            Expr::gt(Expr::Input(0), Expr::Const(0.5)),
            vec![Action::OrStatus(0, 1), Action::AddLocal(0, 1)],
        );
        b.transition(
            on,
            off,
            Expr::le(Expr::Input(0), Expr::Const(0.5)),
            vec![Action::SetStatus(0, 0)],
        );
        b.build().unwrap()
    }

    #[test]
    fn basic_transitions_and_status() {
        let mut it = Interpreter::new();
        let m = it.add_program(&toggler()).unwrap();
        assert_eq!(it.machine_count(), 1);
        assert!(it.cycle(&[0.0]).is_empty());
        let taken = it.cycle(&[1.0]);
        assert_eq!(
            taken,
            vec![Transition {
                machine: m,
                from: 0,
                to: 1
            }]
        );
        assert_eq!(it.status(m).unwrap().state, 1);
        assert_eq!(it.status(m).unwrap().status, 1);
        assert_eq!(it.local(m, 0), Some(1));
        it.cycle(&[0.0]);
        assert_eq!(it.status(m).unwrap().state, 0);
        assert_eq!(it.status(m).unwrap().status, 0);
    }

    #[test]
    fn elapsed_counts_cycles_in_state() {
        let mut b = ProgramBuilder::new("timer", 0);
        let wait = b.state("Wait");
        let done = b.state("Done");
        b.transition(
            wait,
            done,
            Expr::ge(Expr::Elapsed, Expr::Const(3.0)),
            vec![Action::SetStatus(0, 1)],
        );
        let mut it = Interpreter::new();
        let m = it.add_program(&b.build().unwrap()).unwrap();
        // ∆T starts at 0; reaches 3 after three idle cycles.
        assert!(it.cycle(&[]).is_empty()); // ∆T 0 → ages to 1
        assert!(it.cycle(&[]).is_empty()); // 1 → 2
        assert!(it.cycle(&[]).is_empty()); // 2 → 3
        let taken = it.cycle(&[]); // ∆T == 3 fires
        assert_eq!(taken.len(), 1);
        assert_eq!(it.status(m).unwrap().state, 1);
        assert_eq!(it.status(m).unwrap().status, 1);
    }

    #[test]
    fn delta_sees_input_changes() {
        let mut b = ProgramBuilder::new("riser", 0);
        let s = b.state("S");
        let hit = b.state("Hit");
        b.transition(s, hit, Expr::gt(Expr::Delta(0), Expr::Const(0.4)), vec![]);
        let mut it = Interpreter::new();
        let m = it.add_program(&b.build().unwrap()).unwrap();
        // First cycle: delta defined as 0 → no fire even with big value.
        assert!(it.cycle(&[10.0]).is_empty());
        assert!(it.cycle(&[10.2]).is_empty()); // +0.2
        assert_eq!(it.cycle(&[10.8]).len(), 1); // +0.6 fires
        assert_eq!(it.status(m).unwrap().state, 1);
    }

    #[test]
    fn machines_communicate_through_status() {
        // Machine 0 raises its status when input0 > 0; machine 1 watches
        // machine 0's status, counts, and resets it — the Fig. 3 pattern.
        let mut b0 = ProgramBuilder::new("raiser", 0);
        let idle0 = b0.state("Idle");
        b0.transition(
            idle0,
            idle0,
            Expr::gt(Expr::Input(0), Expr::Const(0.0)),
            vec![Action::OrStatus(0, 1)],
        );
        let mut b1 = ProgramBuilder::new("counter", 1);
        let idle1 = b1.state("Idle");
        b1.transition(
            idle1,
            idle1,
            Expr::ne(Expr::Status(0), Expr::Const(0.0)),
            vec![Action::SetStatus(0, 0), Action::AddLocal(0, 1)],
        );
        let mut it = Interpreter::new();
        let m0 = it.add_program(&b0.build().unwrap()).unwrap();
        let m1 = it.add_program(&b1.build().unwrap()).unwrap();
        for _ in 0..3 {
            it.cycle(&[1.0]);
        }
        // Same-cycle visibility: machine 1 sees and clears machine 0's
        // status each cycle.
        assert_eq!(it.local(m1, 0), Some(3));
        assert_eq!(it.status(m0).unwrap().status, 0);
    }

    #[test]
    fn external_agent_can_reset_status() {
        let mut it = Interpreter::new();
        let m = it.add_program(&toggler()).unwrap();
        it.cycle(&[1.0]);
        assert_eq!(it.status(m).unwrap().status, 1);
        it.set_status(m, 0).unwrap();
        assert_eq!(it.status(m).unwrap().status, 0);
        assert!(it.set_status(9, 0).is_err());
    }

    #[test]
    fn out_of_range_reads_are_zero_writes_ignored() {
        let mut b = ProgramBuilder::new("oob", 0);
        let s = b.state("S");
        let t = b.state("T");
        // Condition on missing machine 7's status == 0 → true.
        b.transition(
            s,
            t,
            Expr::eq(Expr::Status(7), Expr::Const(0.0)),
            vec![Action::SetStatus(7, 5), Action::SetLocal(3, 1)],
        );
        let mut it = Interpreter::new();
        let m = it.add_program(&b.build().unwrap()).unwrap();
        let taken = it.cycle(&[]);
        assert_eq!(taken.len(), 1);
        assert_eq!(it.status(m).unwrap().state, 1);
        // Missing input channel reads as zero too.
        assert_eq!(it.local(m, 3), None);
    }

    #[test]
    fn replace_machine_resets_runtime() {
        let mut it = Interpreter::new();
        let m = it.add_program(&toggler()).unwrap();
        it.cycle(&[1.0]);
        assert_eq!(it.status(m).unwrap().state, 1);
        let image = toggler().encode().unwrap();
        it.replace_machine(m, &image).unwrap();
        let st = it.status(m).unwrap();
        assert_eq!(st.state, 0);
        assert_eq!(st.status, 0);
        assert!(it.replace_machine(5, &image).is_err());
    }

    #[test]
    fn footprint_accounting() {
        let mut it = Interpreter::new();
        let img = toggler().encode().unwrap();
        it.add_machine(&img).unwrap();
        it.add_machine(&img).unwrap();
        assert_eq!(it.total_image_bytes(), 2 * img.len());
    }

    #[test]
    fn hundred_machines_fit_32k() {
        // The §6.3 budget: 100 machines + interpreter < 32 KB. Our
        // interpreter code size is not measurable from safe Rust, so the
        // image budget is the testable part; we leave the paper's 2000 B
        // for the interpreter and require images to fit in 30 KB.
        let mut it = Interpreter::new();
        let img = crate::builtin::spike_machine(0).encode().unwrap();
        for _ in 0..100 {
            it.add_machine(&img).unwrap();
        }
        assert!(
            it.total_image_bytes() < 30 * 1024,
            "100 machines take {} bytes",
            it.total_image_bytes()
        );
    }

    #[test]
    fn first_matching_transition_wins() {
        let mut b = ProgramBuilder::new("prio", 0);
        let s = b.state("S");
        let a = b.state("A");
        let bb = b.state("B");
        let always = Expr::ge(Expr::Const(1.0), Expr::Const(0.0));
        b.transition(s, a, always.clone(), vec![]);
        b.transition(s, bb, always, vec![]);
        let mut it = Interpreter::new();
        let m = it.add_program(&b.build().unwrap()).unwrap();
        it.cycle(&[]);
        assert_eq!(it.status(m).unwrap().state, 1, "first transition must win");
    }
}

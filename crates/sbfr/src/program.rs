//! State-machine programs and their compact binary image.
//!
//! A [`Program`] is one enhanced finite-state machine: a set of states,
//! each with an ordered list of guarded transitions (first satisfied
//! condition wins, as in the paper's figures). Programs encode to a
//! self-contained binary image — the form "downloaded into the smart
//! sensor" (§6.3) — whose byte count is the footprint the paper reports
//! (229 B spike machine, 93 B stiction machine).
//!
//! Image layout (little-endian):
//!
//! ```text
//! magic 'S''B' | version u8 | n_states u8 | n_locals u8 | initial u8
//! per state:   n_transitions u8
//! per transition: target u8 | cond_len u16 | cond bytes | n_actions u8 | 4B each
//! ```
//!
//! State and machine *names* are debugging metadata and are deliberately
//! not part of the image.

use crate::expr::{Action, Expr};
use mpros_core::{Error, Result};

const MAGIC: [u8; 2] = *b"SB";
const VERSION: u8 = 1;

/// One guarded transition.
#[derive(Debug, Clone, PartialEq)]
pub struct Transition {
    /// Target state index.
    pub target: u8,
    /// Guard condition (the "C:" label).
    pub condition: Expr,
    /// Actions executed when taken (the "A:" label).
    pub actions: Vec<Action>,
}

/// One state: an ordered transition list.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct State {
    /// Debug name (not encoded).
    pub name: String,
    /// Transitions, evaluated in order.
    pub transitions: Vec<Transition>,
}

/// A complete state-machine program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Debug name (not encoded).
    pub name: String,
    /// States; index 0.. in declaration order.
    pub states: Vec<State>,
    /// Number of local variables.
    pub locals: u8,
    /// Initial state index.
    pub initial: u8,
}

impl Program {
    /// Validate structural invariants: nonempty, all targets in range,
    /// initial state in range, ≤ 255 transitions per state.
    pub fn validate(&self) -> Result<()> {
        if self.states.is_empty() {
            return Err(Error::invalid("program has no states"));
        }
        if self.states.len() > u8::MAX as usize {
            return Err(Error::CapacityExceeded("more than 255 states".into()));
        }
        if self.initial as usize >= self.states.len() {
            return Err(Error::invalid("initial state out of range"));
        }
        for (si, s) in self.states.iter().enumerate() {
            if s.transitions.len() > u8::MAX as usize {
                return Err(Error::CapacityExceeded(format!(
                    "state {si} has more than 255 transitions"
                )));
            }
            for t in &s.transitions {
                if t.target as usize >= self.states.len() {
                    return Err(Error::invalid(format!(
                        "state {si} transition targets missing state {}",
                        t.target
                    )));
                }
                if t.actions.len() > u8::MAX as usize {
                    return Err(Error::CapacityExceeded("too many actions".into()));
                }
            }
        }
        Ok(())
    }

    /// Encode to the binary image.
    pub fn encode(&self) -> Result<Vec<u8>> {
        self.validate()?;
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&MAGIC);
        out.push(VERSION);
        out.push(self.states.len() as u8);
        out.push(self.locals);
        out.push(self.initial);
        for s in &self.states {
            out.push(s.transitions.len() as u8);
            for t in &s.transitions {
                out.push(t.target);
                let mut cond = Vec::new();
                t.condition.encode(&mut cond);
                if cond.len() > u16::MAX as usize {
                    return Err(Error::CapacityExceeded("condition too large".into()));
                }
                out.extend_from_slice(&(cond.len() as u16).to_le_bytes());
                out.extend_from_slice(&cond);
                out.push(t.actions.len() as u8);
                for a in &t.actions {
                    a.encode(&mut out);
                }
            }
        }
        Ok(out)
    }

    /// Footprint of the binary image in bytes.
    pub fn encoded_len(&self) -> Result<usize> {
        Ok(self.encode()?.len())
    }

    /// Decode a binary image.
    pub fn decode(bytes: &[u8]) -> Result<Program> {
        let mut i = 0usize;
        let need = |i: usize, n: usize| -> Result<()> {
            if i + n > bytes.len() {
                Err(Error::Encoding("truncated program image".into()))
            } else {
                Ok(())
            }
        };
        need(i, 6)?;
        if bytes[0..2] != MAGIC {
            return Err(Error::Encoding("bad magic".into()));
        }
        if bytes[2] != VERSION {
            return Err(Error::Encoding(format!("unsupported version {}", bytes[2])));
        }
        let n_states = bytes[3] as usize;
        let locals = bytes[4];
        let initial = bytes[5];
        i = 6;
        let mut states = Vec::with_capacity(n_states);
        for si in 0..n_states {
            need(i, 1)?;
            let n_trans = bytes[i] as usize;
            i += 1;
            let mut transitions = Vec::with_capacity(n_trans);
            for _ in 0..n_trans {
                need(i, 3)?;
                let target = bytes[i];
                let cond_len = u16::from_le_bytes([bytes[i + 1], bytes[i + 2]]) as usize;
                i += 3;
                need(i, cond_len)?;
                let condition = Expr::decode(&bytes[i..i + cond_len])?;
                i += cond_len;
                need(i, 1)?;
                let n_actions = bytes[i] as usize;
                i += 1;
                let mut actions = Vec::with_capacity(n_actions);
                for _ in 0..n_actions {
                    let (a, next) = Action::decode(bytes, i)?;
                    actions.push(a);
                    i = next;
                }
                transitions.push(Transition {
                    target,
                    condition,
                    actions,
                });
            }
            states.push(State {
                name: format!("S{si}"),
                transitions,
            });
        }
        if i != bytes.len() {
            return Err(Error::Encoding("trailing bytes after program".into()));
        }
        let p = Program {
            name: String::new(),
            states,
            locals,
            initial,
        };
        p.validate()?;
        Ok(p)
    }
}

/// Fluent builder for [`Program`].
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    states: Vec<State>,
    locals: u8,
    initial: u8,
}

impl ProgramBuilder {
    /// Start a program with a debug name and a local-variable count.
    pub fn new(name: impl Into<String>, locals: u8) -> Self {
        ProgramBuilder {
            name: name.into(),
            locals,
            ..Default::default()
        }
    }

    /// Declare a state; returns its index. The first declared state is
    /// the initial state unless [`Self::initial`] overrides it.
    pub fn state(&mut self, name: impl Into<String>) -> u8 {
        let idx = self.states.len() as u8;
        self.states.push(State {
            name: name.into(),
            transitions: Vec::new(),
        });
        idx
    }

    /// Override the initial state.
    pub fn initial(&mut self, state: u8) -> &mut Self {
        self.initial = state;
        self
    }

    /// Add a transition `from → to` guarded by `condition` running
    /// `actions`.
    pub fn transition(
        &mut self,
        from: u8,
        to: u8,
        condition: Expr,
        actions: Vec<Action>,
    ) -> &mut Self {
        self.states[from as usize].transitions.push(Transition {
            target: to,
            condition,
            actions,
        });
        self
    }

    /// Finish, validating the program.
    pub fn build(self) -> Result<Program> {
        let p = Program {
            name: self.name,
            states: self.states,
            locals: self.locals,
            initial: self.initial,
        };
        p.validate()?;
        Ok(p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_state_program() -> Program {
        let mut b = ProgramBuilder::new("toggler", 1);
        let off = b.state("Off");
        let on = b.state("On");
        b.transition(
            off,
            on,
            Expr::gt(Expr::Input(0), Expr::Const(0.5)),
            vec![Action::OrStatus(0, 1), Action::AddLocal(0, 1)],
        );
        b.transition(
            on,
            off,
            Expr::le(Expr::Input(0), Expr::Const(0.5)),
            vec![Action::SetStatus(0, 0)],
        );
        b.build().unwrap()
    }

    #[test]
    fn roundtrip_through_image() {
        let p = two_state_program();
        let img = p.encode().unwrap();
        let back = Program::decode(&img).unwrap();
        assert_eq!(back.states.len(), 2);
        assert_eq!(back.locals, 1);
        assert_eq!(back.initial, 0);
        assert_eq!(back.states[0].transitions, p.states[0].transitions);
        assert_eq!(back.states[1].transitions, p.states[1].transitions);
    }

    #[test]
    fn image_is_compact() {
        let p = two_state_program();
        let len = p.encoded_len().unwrap();
        // header 6 + state headers 2 + 2 transitions:
        //  each: 1 target + 2 cond_len + 12 cond + 1 n_act + 4·n_act
        assert!(len < 60, "image {len} bytes");
    }

    #[test]
    fn validation_catches_bad_targets() {
        let p = Program {
            name: "bad".into(),
            states: vec![State {
                name: "only".into(),
                transitions: vec![Transition {
                    target: 5,
                    condition: Expr::Elapsed,
                    actions: vec![],
                }],
            }],
            locals: 0,
            initial: 0,
        };
        assert!(p.validate().is_err());
        assert!(p.encode().is_err());
    }

    #[test]
    fn validation_catches_empty_and_bad_initial() {
        let empty = Program {
            name: String::new(),
            states: vec![],
            locals: 0,
            initial: 0,
        };
        assert!(empty.validate().is_err());
        let bad_init = Program {
            name: String::new(),
            states: vec![State::default()],
            locals: 0,
            initial: 3,
        };
        assert!(bad_init.validate().is_err());
    }

    #[test]
    fn decode_rejects_corrupt_images() {
        let img = two_state_program().encode().unwrap();
        assert!(Program::decode(&img[..4]).is_err()); // truncated
        let mut bad_magic = img.clone();
        bad_magic[0] = b'X';
        assert!(Program::decode(&bad_magic).is_err());
        let mut bad_ver = img.clone();
        bad_ver[2] = 9;
        assert!(Program::decode(&bad_ver).is_err());
        let mut trailing = img.clone();
        trailing.push(0);
        assert!(Program::decode(&trailing).is_err());
    }

    #[test]
    fn builder_first_state_is_initial_by_default() {
        let mut b = ProgramBuilder::new("x", 0);
        let s0 = b.state("A");
        let s1 = b.state("B");
        b.transition(s0, s1, Expr::Elapsed, vec![]);
        let p = b.build().unwrap();
        assert_eq!(p.initial, 0);
    }
}

//! The Fig. 3 worked example: EMA spike and stiction machines.
//!
//! "The two state machine system shown in Figure 3 was used to predict a
//! seize-up failure mode in an electro-mechanical actuator (EMA)...
//! Prediction of this fault was done by recognizing stiction... Machine 0
//! recognizes spikes in the drive motor current. Machine 1 counts the
//! spikes that are not associated with a commanded position change
//! (CPOS). When the count is greater than 4, a stiction condition is
//! flagged, and higher level software (e.g., the PDME) can conclude that
//! a seize-up failure is imminent." (§6.3)
//!
//! Input channel convention: channel 0 is drive-motor current (A),
//! channel 1 is the commanded position CPOS.
//!
//! The EMA hardware is unavailable, so [`EmaTraceGenerator`] synthesizes
//! drive-current traces: clean motion transients that follow CPOS
//! changes, plus — when stiction is present — current spikes *between*
//! commands (the friction signature the machines look for).

use crate::expr::{Action, Expr};
use crate::program::{Program, ProgramBuilder};

/// Input channel carrying drive-motor current.
pub const CH_CURRENT: u8 = 0;
/// Input channel carrying commanded position.
pub const CH_CPOS: u8 = 1;

/// Current rise per cycle treated as a spike edge, A.
pub const SPIKE_RISE: f32 = 0.5;
/// Current fall per cycle confirming the spike's trailing edge, A.
pub const SPIKE_FALL: f32 = -0.5;
/// ∆T bound (cycles) within which the spike must complete (the paper's
/// "∆T ≤ 4").
pub const SPIKE_WINDOW: f32 = 4.0;
/// Spike count above which stiction is flagged (the paper's "greater
/// than 4").
pub const STICTION_COUNT: f32 = 4.0;

/// Machine 0 of Fig. 3 — the current SPIKE machine.
///
/// States: Wait → PossibleSpike1 → PossibleSpike2 → Spike. Intermediate
/// states make the recognizer "relatively noise free": the rise must be
/// followed by a fall within ∆T ≤ 4 cycles, twice confirmed, before a
/// spike is declared by OR-ing bit 1 into this machine's status
/// register. The Spike state is left when some other agent resets the
/// status to 0.
///
/// `self_idx` is the interpreter index this machine will occupy (its
/// status-register address).
pub fn spike_machine(self_idx: u8) -> Program {
    let rise = Expr::gt(Expr::Delta(CH_CURRENT), Expr::Const(SPIKE_RISE));
    let fall = Expr::lt(Expr::Delta(CH_CURRENT), Expr::Const(SPIKE_FALL));
    let in_window = Expr::le(Expr::Elapsed, Expr::Const(SPIKE_WINDOW));
    let timed_out = Expr::gt(Expr::Elapsed, Expr::Const(SPIKE_WINDOW));

    let mut b = ProgramBuilder::new("current SPIKE machine", 0);
    let wait = b.state("Wait");
    let p1 = b.state("PossibleSPIKE 1");
    let p2 = b.state("PossibleSPIKE 2");
    let spike = b.state("SPIKE");

    // Wait: a current increase arms the recognizer.
    b.transition(wait, p1, rise.clone(), vec![]);
    // PossibleSpike1: a prompt decrease advances; a further rise re-arms
    // the window; too slow → back to Wait.
    b.transition(p1, p2, fall.clone().and(in_window.clone()), vec![]);
    b.transition(p1, p1, rise.clone().and(in_window.clone()), vec![]);
    b.transition(p1, wait, timed_out.clone(), vec![]);
    // PossibleSpike2: a second prompt decrease confirms the spike; a new
    // rise within the window re-arms; too slow → Wait.
    b.transition(
        p2,
        spike,
        fall.and(in_window.clone()),
        vec![Action::OrStatus(self_idx, 1)],
    );
    b.transition(p2, p1, rise.and(in_window), vec![]);
    b.transition(p2, wait, timed_out, vec![]);
    // Spike: wait for the consumer to reset our status register.
    b.transition(
        spike,
        wait,
        Expr::eq(Expr::Status(self_idx), Expr::Const(0.0)),
        vec![],
    );
    b.build().expect("spike machine is structurally valid")
}

/// Cycles after a commanded position change during which spikes are
/// attributed to the motion, not to friction.
pub const MOTION_COOLDOWN: i16 = 8;

/// Machine 1 of Fig. 3 — the EMA stiction machine.
///
/// Counts spikes flagged by the spike machine that are *not* associated
/// with a commanded position change; when the count exceeds 4 it enters
/// the Stiction state and raises its own status bit for higher-level
/// software. That agent resets the status, which sends the machine back
/// to Wait with the count cleared.
///
/// "Association" with a commanded motion needs a window, not an instant:
/// the spike machine confirms a spike a few cycles after its rising
/// edge, so the paper's "CPOS unchanged" condition is realized with a
/// motion-cooldown counter (`Local:1`) armed by any CPOS change and
/// drained one cycle at a time. Spikes consumed while the cooldown is
/// live are charged to the motion; spikes with the cooldown at zero are
/// friction and count toward stiction.
pub fn stiction_machine(self_idx: u8, spike_idx: u8) -> Program {
    let spike_seen = Expr::ne(Expr::Status(spike_idx), Expr::Const(0.0));
    let cpos_changed = Expr::ne(Expr::Delta(CH_CPOS), Expr::Const(0.0));
    let no_motion = Expr::eq(Expr::Local(1), Expr::Const(0.0));
    let in_motion = Expr::gt(Expr::Local(1), Expr::Const(0.0));

    let mut b = ProgramBuilder::new("EMA stiction machine", 2);
    let wait = b.state("Wait");
    let stiction = b.state("Stiction");

    // Highest priority: count exceeded → flag stiction.
    b.transition(
        wait,
        stiction,
        Expr::gt(Expr::Local(0), Expr::Const(STICTION_COUNT)),
        vec![Action::OrStatus(self_idx, 1)],
    );
    // A commanded motion arms the cooldown.
    b.transition(
        wait,
        wait,
        cpos_changed,
        vec![Action::SetLocal(1, MOTION_COOLDOWN)],
    );
    // A spike with no recent motion: consume it and count it.
    b.transition(
        wait,
        wait,
        spike_seen.clone().and(no_motion),
        vec![Action::SetStatus(spike_idx, 0), Action::AddLocal(0, 1)],
    );
    // A spike during the motion window: consume without counting.
    b.transition(
        wait,
        wait,
        spike_seen,
        vec![Action::SetStatus(spike_idx, 0), Action::AddLocal(1, -1)],
    );
    // Idle with a live cooldown: drain it.
    b.transition(wait, wait, in_motion, vec![Action::AddLocal(1, -1)]);
    // Stiction: once acknowledged (status reset by the consumer), clear
    // the count and start over.
    b.transition(
        stiction,
        wait,
        Expr::eq(Expr::Status(self_idx), Expr::Const(0.0)),
        vec![Action::SetLocal(0, 0)],
    );
    b.build().expect("stiction machine is structurally valid")
}

/// Synthetic EMA drive-current / CPOS trace generator.
///
/// Produces per-cycle `[current, cpos]` pairs. Commanded motions occur
/// every `command_period` cycles and produce a smooth 3-cycle current
/// transient. When `stiction_level > 0`, friction spikes (sharp
/// rise-fall over 2 cycles) are injected between commands at a rate
/// proportional to the level. Deterministic: a tiny xorshift PRNG keyed
/// by `seed` jitters spike placement.
#[derive(Debug, Clone)]
pub struct EmaTraceGenerator {
    /// Baseline holding current, A.
    pub baseline: f64,
    /// Cycles between commanded position changes.
    pub command_period: usize,
    /// Stiction intensity 0..=1: expected friction spikes per command
    /// period scales with this.
    pub stiction_level: f64,
    seed: u64,
}

impl EmaTraceGenerator {
    /// A healthy actuator trace.
    pub fn healthy(seed: u64) -> Self {
        EmaTraceGenerator {
            baseline: 2.0,
            command_period: 50,
            stiction_level: 0.0,
            seed,
        }
    }

    /// An actuator developing stiction at `level` (0..=1).
    pub fn with_stiction(seed: u64, level: f64) -> Self {
        EmaTraceGenerator {
            stiction_level: level.clamp(0.0, 1.0),
            ..Self::healthy(seed)
        }
    }

    /// Generate `cycles` samples of `[current, cpos]`.
    pub fn generate(&self, cycles: usize) -> Vec<[f64; 2]> {
        let mut out = Vec::with_capacity(cycles);
        let mut rng = self.seed | 1;
        let mut next_rand = move || {
            // xorshift64*
            rng ^= rng << 13;
            rng ^= rng >> 7;
            rng ^= rng << 17;
            (rng.wrapping_mul(0x2545F491_4F6CDD1D) >> 40) as f64 / (1u64 << 24) as f64
        };
        let mut cpos = 0.0f64;
        // Pre-plan friction spikes: for each command period, up to 3
        // spikes at random offsets when stiction is active.
        let mut spike_at: Vec<usize> = Vec::new();
        if self.stiction_level > 0.0 {
            let periods = cycles / self.command_period + 1;
            for p in 0..periods {
                let n_spikes = (self.stiction_level * 3.0).round() as usize;
                for _ in 0..n_spikes {
                    // Keep clear of the command transient (first 8 cycles).
                    let off =
                        10 + (next_rand() * (self.command_period as f64 - 14.0)).max(0.0) as usize;
                    spike_at.push(p * self.command_period + off);
                }
            }
            spike_at.sort_unstable();
            spike_at.dedup();
            // Enforce a minimum gap so spikes stay distinct events.
            let mut last = usize::MAX;
            spike_at.retain(|&s| {
                let keep = last == usize::MAX || s > last + 6;
                if keep {
                    last = s;
                }
                keep
            });
        }
        let mut spike_iter = spike_at.into_iter().peekable();
        for i in 0..cycles {
            let phase = i % self.command_period;
            if phase == 0 && i > 0 {
                cpos += 1.0; // commanded step
            }
            // Motion transient: current surge over the 3 cycles after a
            // command (rises then falls — shaped like a spike, which is
            // why the stiction machine must gate on CPOS).
            let mut current = self.baseline;
            current += match phase {
                0 => 0.0,
                1 => 1.2,
                2 => 1.8,
                3 => 0.8,
                _ => 0.0,
            };
            // Friction spike: 2-cycle rise/fall.
            while let Some(&s) = spike_iter.peek() {
                if s + 2 < i {
                    spike_iter.next();
                } else {
                    break;
                }
            }
            if let Some(&s) = spike_iter.peek() {
                // Sharp rise then a two-step decay, so the recognizer's
                // double-fall confirmation sees a genuine spike.
                if i == s {
                    current += 1.5;
                } else if i == s + 1 {
                    current += 0.75;
                }
            }
            // Mild deterministic measurement ripple, well under the edge
            // thresholds.
            current += 0.05 * ((i as f64) * 0.7).sin();
            out.push([current, cpos]);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interp::Interpreter;

    fn rig() -> (Interpreter, usize, usize) {
        let mut it = Interpreter::new();
        let m0 = it.add_program(&spike_machine(0)).unwrap();
        let m1 = it.add_program(&stiction_machine(1, 0)).unwrap();
        assert_eq!((m0, m1), (0, 1));
        (it, m0, m1)
    }

    fn run(it: &mut Interpreter, trace: &[[f64; 2]]) {
        for s in trace {
            it.cycle(&s[..]);
        }
    }

    #[test]
    fn machine_sizes_are_in_the_papers_ballpark() {
        // Paper: spike machine 229 B, stiction machine 93 B. Our encoding
        // differs in detail but must land in the same regime.
        let spike = spike_machine(0).encoded_len().unwrap();
        let stiction = stiction_machine(1, 0).encoded_len().unwrap();
        assert!(
            (100..=300).contains(&spike),
            "spike machine {spike} bytes (paper: 229)"
        );
        assert!(
            (60..=220).contains(&stiction),
            "stiction machine {stiction} bytes (paper: 93)"
        );
    }

    #[test]
    fn spike_machine_flags_double_fall_spike() {
        let mut it = Interpreter::new();
        let m = it.add_program(&spike_machine(0)).unwrap();
        let trace: Vec<[f64; 2]> = vec![
            [2.0, 0.0],
            [2.0, 0.0],
            [4.0, 0.0], // rise → P1
            [3.0, 0.0], // fall → P2
            [2.0, 0.0], // fall → Spike
            [2.0, 0.0],
        ];
        run(&mut it, &trace);
        assert_eq!(it.status(m).unwrap().status & 1, 1, "spike flagged");
        assert_eq!(it.status(m).unwrap().state, 3, "in Spike state");
        // External reset releases the machine back to Wait.
        it.set_status(m, 0).unwrap();
        it.cycle(&[2.0, 0.0]);
        assert_eq!(it.status(m).unwrap().state, 0);
    }

    #[test]
    fn slow_drift_is_not_a_spike() {
        let mut it = Interpreter::new();
        let m = it.add_program(&spike_machine(0)).unwrap();
        // Slow ramp up and down: each step ±0.2, under the edge threshold.
        let mut trace = Vec::new();
        for i in 0..20 {
            trace.push([2.0 + 0.2 * i as f64, 0.0]);
        }
        for i in (0..20).rev() {
            trace.push([2.0 + 0.2 * i as f64, 0.0]);
        }
        run(&mut it, &trace);
        assert_eq!(it.status(m).unwrap().status, 0, "drift must not flag");
    }

    #[test]
    fn rise_without_prompt_fall_times_out() {
        let mut it = Interpreter::new();
        let m = it.add_program(&spike_machine(0)).unwrap();
        let mut trace = vec![[2.0, 0.0]; 3];
        trace.push([4.0, 0.0]); // rise → P1
        trace.extend(vec![[4.0, 0.0]; 8]); // plateau: ∆T exceeds 4
        run(&mut it, &trace);
        assert_eq!(it.status(m).unwrap().state, 0, "timed out back to Wait");
        assert_eq!(it.status(m).unwrap().status, 0);
    }

    #[test]
    fn stiction_flagged_after_five_uncommanded_spikes() {
        let (mut it, m0, m1) = rig();
        let mut trace = vec![[2.0, 0.0]; 5];
        for _ in 0..5 {
            // Five sharp spikes with CPOS constant.
            trace.push([4.0, 0.0]);
            trace.push([3.0, 0.0]);
            trace.push([2.0, 0.0]);
            trace.extend(vec![[2.0, 0.0]; 6]);
        }
        run(&mut it, &trace);
        assert_eq!(it.local(m1, 0), Some(5), "five spikes counted");
        assert_eq!(it.status(m1).unwrap().status & 1, 1, "stiction flagged");
        assert_eq!(it.status(m1).unwrap().state, 1, "in Stiction state");
        // Spike machine's status was consumed each time.
        assert_eq!(it.status(m0).unwrap().status, 0);
        // Acknowledge: count clears, machine returns to Wait.
        it.set_status(m1, 0).unwrap();
        it.cycle(&[2.0, 0.0]);
        assert_eq!(it.status(m1).unwrap().state, 0);
        assert_eq!(it.local(m1, 0), Some(0));
    }

    #[test]
    fn commanded_motion_spikes_do_not_count() {
        let (mut it, _m0, m1) = rig();
        // Spikes synchronized with CPOS changes: the spike machine flags
        // them a few cycles later, inside the motion cooldown — consumed
        // but not counted.
        let mut trace = vec![[2.0, 0.0]; 5];
        let mut cpos = 0.0;
        for _ in 0..8 {
            cpos += 1.0;
            trace.push([4.0, cpos]); // rise as CPOS changes
            trace.push([3.0, cpos]);
            trace.push([2.0, cpos]);
            trace.extend(vec![[2.0, cpos]; 12]);
        }
        run(&mut it, &trace);
        assert_eq!(it.local(m1, 0), Some(0), "motion spikes not counted");
        assert_eq!(it.status(m1).unwrap().status, 0, "no stiction from motion");
        assert_eq!(it.status(m1).unwrap().state, 0);
    }

    #[test]
    fn generator_healthy_trace_has_no_uncommanded_spikes() {
        let (mut it, _m0, m1) = rig();
        let trace = EmaTraceGenerator::healthy(7).generate(2000);
        run(&mut it, &trace);
        assert_eq!(it.status(m1).unwrap().status, 0, "healthy EMA flagged");
    }

    #[test]
    fn generator_stiction_trace_flags_stiction() {
        let (mut it, _m0, m1) = rig();
        let trace = EmaTraceGenerator::with_stiction(7, 1.0).generate(2000);
        run(&mut it, &trace);
        assert_eq!(
            it.status(m1).unwrap().status & 1,
            1,
            "stiction trace must flag (count {:?})",
            it.local(m1, 0)
        );
    }

    #[test]
    fn generator_is_deterministic() {
        let a = EmaTraceGenerator::with_stiction(9, 0.8).generate(500);
        let b = EmaTraceGenerator::with_stiction(9, 0.8).generate(500);
        assert_eq!(a, b);
        let c = EmaTraceGenerator::with_stiction(10, 0.8).generate(500);
        assert_ne!(a, c);
    }

    #[test]
    fn generator_cpos_steps_at_command_period() {
        let trace = EmaTraceGenerator::healthy(1).generate(200);
        assert_eq!(trace[0][1], 0.0);
        assert_eq!(trace[49][1], 0.0);
        assert_eq!(trace[50][1], 1.0);
        assert_eq!(trace[150][1], 3.0);
    }
}

//! Condition expressions and actions, with their compact byte encoding.
//!
//! Transitions in the paper carry a *condition* ("C: Current Decrease &
//! ∆T ≤ 4", "C: Status:0 ≠ 0 & CPOS unchanged") and an *action*
//! ("A: Status:0 ← 0; Local:1 ← Local:1 + 1"). [`Expr`] is the condition
//! language: terms over sensor inputs (and their sample-to-sample
//! deltas), local variables, status registers of any machine, and the
//! ticks elapsed in the current state — combined with comparisons and
//! boolean connectives. [`Action`] covers the register writes the paper
//! uses: set/OR a status register (own or another machine's) and
//! set/add-to a local variable.
//!
//! Both encode to a stack-machine bytecode measured in single bytes so
//! machine footprints are directly comparable to the paper's byte
//! counts.

use mpros_core::{Error, Result};

/// Condition expression over the interpreter's visible state.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Value of input channel `ch` this cycle.
    Input(u8),
    /// `input[ch] - previous input[ch]` (one-cycle delta; 0 on the first
    /// cycle). How "Current Increase/Decrease" events are phrased.
    Delta(u8),
    /// Local variable `idx` of this machine.
    Local(u8),
    /// Status register of machine `m` (any machine, including self —
    /// the paper's "status ... readable and writeable by any of the
    /// state machines").
    Status(u8),
    /// Ticks elapsed in the current state (the paper's ∆T).
    Elapsed,
    /// A constant.
    Const(f32),
    /// Comparison of two scalar sub-expressions.
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Logical AND of two boolean sub-expressions.
    And(Box<Expr>, Box<Expr>),
    /// Logical OR.
    Or(Box<Expr>, Box<Expr>),
    /// Logical NOT.
    Not(Box<Expr>),
}

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `==`
    Eq,
    /// `!=`
    Ne,
}

impl Expr {
    /// `lhs < rhs`
    pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Lt, Box::new(lhs), Box::new(rhs))
    }
    /// `lhs <= rhs`
    pub fn le(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Le, Box::new(lhs), Box::new(rhs))
    }
    /// `lhs > rhs`
    pub fn gt(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Gt, Box::new(lhs), Box::new(rhs))
    }
    /// `lhs >= rhs`
    pub fn ge(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ge, Box::new(lhs), Box::new(rhs))
    }
    /// `lhs == rhs`
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Eq, Box::new(lhs), Box::new(rhs))
    }
    /// `lhs != rhs`
    pub fn ne(lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp(CmpOp::Ne, Box::new(lhs), Box::new(rhs))
    }
    /// `self & other`
    pub fn and(self, other: Expr) -> Expr {
        Expr::And(Box::new(self), Box::new(other))
    }
    /// `self | other`
    pub fn or(self, other: Expr) -> Expr {
        Expr::Or(Box::new(self), Box::new(other))
    }
    /// `!self`
    pub fn negate(self) -> Expr {
        Expr::Not(Box::new(self))
    }

    /// Append the postfix bytecode of this expression to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Expr::Input(ch) => {
                out.push(op::PUSH_INPUT);
                out.push(*ch);
            }
            Expr::Delta(ch) => {
                out.push(op::PUSH_DELTA);
                out.push(*ch);
            }
            Expr::Local(idx) => {
                out.push(op::PUSH_LOCAL);
                out.push(*idx);
            }
            Expr::Status(m) => {
                out.push(op::PUSH_STATUS);
                out.push(*m);
            }
            Expr::Elapsed => out.push(op::PUSH_ELAPSED),
            Expr::Const(v) => {
                out.push(op::PUSH_CONST);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Expr::Cmp(cmp, a, b) => {
                a.encode(out);
                b.encode(out);
                out.push(match cmp {
                    CmpOp::Lt => op::LT,
                    CmpOp::Le => op::LE,
                    CmpOp::Gt => op::GT,
                    CmpOp::Ge => op::GE,
                    CmpOp::Eq => op::EQ,
                    CmpOp::Ne => op::NE,
                });
            }
            Expr::And(a, b) => {
                a.encode(out);
                b.encode(out);
                out.push(op::AND);
            }
            Expr::Or(a, b) => {
                a.encode(out);
                b.encode(out);
                out.push(op::OR);
            }
            Expr::Not(a) => {
                a.encode(out);
                out.push(op::NOT);
            }
        }
    }

    /// Encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        let mut buf = Vec::new();
        self.encode(&mut buf);
        buf.len()
    }

    /// Decode one full postfix expression from `bytes` (consuming all of
    /// it). Fails on truncated or stack-unbalanced code.
    pub fn decode(bytes: &[u8]) -> Result<Expr> {
        let mut stack: Vec<Expr> = Vec::new();
        let mut i = 0usize;
        let take = |i: &mut usize, n: usize| -> Result<usize> {
            let at = *i;
            *i += n;
            if *i > bytes.len() {
                Err(Error::Encoding("truncated expression".into()))
            } else {
                Ok(at)
            }
        };
        while i < bytes.len() {
            let opcode = bytes[i];
            i += 1;
            match opcode {
                op::PUSH_INPUT => {
                    let at = take(&mut i, 1)?;
                    stack.push(Expr::Input(bytes[at]));
                }
                op::PUSH_DELTA => {
                    let at = take(&mut i, 1)?;
                    stack.push(Expr::Delta(bytes[at]));
                }
                op::PUSH_LOCAL => {
                    let at = take(&mut i, 1)?;
                    stack.push(Expr::Local(bytes[at]));
                }
                op::PUSH_STATUS => {
                    let at = take(&mut i, 1)?;
                    stack.push(Expr::Status(bytes[at]));
                }
                op::PUSH_ELAPSED => stack.push(Expr::Elapsed),
                op::PUSH_CONST => {
                    let at = take(&mut i, 4)?;
                    let v = f32::from_le_bytes(bytes[at..at + 4].try_into().expect("4 bytes"));
                    stack.push(Expr::Const(v));
                }
                op::LT | op::LE | op::GT | op::GE | op::EQ | op::NE => {
                    let b = stack.pop().ok_or_else(unbalanced)?;
                    let a = stack.pop().ok_or_else(unbalanced)?;
                    let cmp = match opcode {
                        op::LT => CmpOp::Lt,
                        op::LE => CmpOp::Le,
                        op::GT => CmpOp::Gt,
                        op::GE => CmpOp::Ge,
                        op::EQ => CmpOp::Eq,
                        _ => CmpOp::Ne,
                    };
                    stack.push(Expr::Cmp(cmp, Box::new(a), Box::new(b)));
                }
                op::AND => {
                    let b = stack.pop().ok_or_else(unbalanced)?;
                    let a = stack.pop().ok_or_else(unbalanced)?;
                    stack.push(a.and(b));
                }
                op::OR => {
                    let b = stack.pop().ok_or_else(unbalanced)?;
                    let a = stack.pop().ok_or_else(unbalanced)?;
                    stack.push(a.or(b));
                }
                op::NOT => {
                    let a = stack.pop().ok_or_else(unbalanced)?;
                    stack.push(a.negate());
                }
                other => {
                    return Err(Error::Encoding(format!(
                        "unknown expression opcode 0x{other:02x}"
                    )))
                }
            }
        }
        if stack.len() == 1 {
            Ok(stack.pop().expect("len checked"))
        } else {
            Err(unbalanced())
        }
    }
}

fn unbalanced() -> Error {
    Error::Encoding("unbalanced expression bytecode".into())
}

/// Transition actions: the register writes of the paper's "A:" labels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// `Status:m ← v`
    SetStatus(u8, i16),
    /// `Status:m ← Status:m ∨ bits` (the paper's "Status:1 ← Status:1 v 1")
    OrStatus(u8, i16),
    /// `Local:idx ← v`
    SetLocal(u8, i16),
    /// `Local:idx ← Local:idx + delta` (the paper's "Local:1 + 1")
    AddLocal(u8, i16),
}

impl Action {
    /// Append the byte encoding (opcode + operand bytes) to `out`.
    pub fn encode(&self, out: &mut Vec<u8>) {
        match *self {
            Action::SetStatus(m, v) => {
                out.push(op::ACT_SET_STATUS);
                out.push(m);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Action::OrStatus(m, v) => {
                out.push(op::ACT_OR_STATUS);
                out.push(m);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Action::SetLocal(i, v) => {
                out.push(op::ACT_SET_LOCAL);
                out.push(i);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Action::AddLocal(i, v) => {
                out.push(op::ACT_ADD_LOCAL);
                out.push(i);
                out.extend_from_slice(&v.to_le_bytes());
            }
        }
    }

    /// Decode one action starting at `bytes[at]`; returns the action and
    /// the next offset.
    pub fn decode(bytes: &[u8], at: usize) -> Result<(Action, usize)> {
        let need = |n: usize| {
            if at + 1 + n > bytes.len() {
                Err(Error::Encoding("truncated action".into()))
            } else {
                Ok(())
            }
        };
        let opcode = *bytes
            .get(at)
            .ok_or_else(|| Error::Encoding("truncated action".into()))?;
        need(3)?;
        let reg = bytes[at + 1];
        let v = i16::from_le_bytes([bytes[at + 2], bytes[at + 3]]);
        let action = match opcode {
            op::ACT_SET_STATUS => Action::SetStatus(reg, v),
            op::ACT_OR_STATUS => Action::OrStatus(reg, v),
            op::ACT_SET_LOCAL => Action::SetLocal(reg, v),
            op::ACT_ADD_LOCAL => Action::AddLocal(reg, v),
            other => {
                return Err(Error::Encoding(format!(
                    "unknown action opcode 0x{other:02x}"
                )))
            }
        };
        Ok((action, at + 4))
    }

    /// Encoded size in bytes (fixed).
    pub const ENCODED_LEN: usize = 4;
}

/// Bytecode opcodes.
pub mod op {
    #![allow(missing_docs)]
    pub const PUSH_INPUT: u8 = 0x01;
    pub const PUSH_DELTA: u8 = 0x02;
    pub const PUSH_LOCAL: u8 = 0x03;
    pub const PUSH_STATUS: u8 = 0x04;
    pub const PUSH_ELAPSED: u8 = 0x06;
    pub const PUSH_CONST: u8 = 0x07;
    pub const LT: u8 = 0x10;
    pub const LE: u8 = 0x11;
    pub const GT: u8 = 0x12;
    pub const GE: u8 = 0x13;
    pub const EQ: u8 = 0x14;
    pub const NE: u8 = 0x15;
    pub const AND: u8 = 0x20;
    pub const OR: u8 = 0x21;
    pub const NOT: u8 = 0x22;
    pub const ACT_SET_STATUS: u8 = 0x30;
    pub const ACT_OR_STATUS: u8 = 0x31;
    pub const ACT_SET_LOCAL: u8 = 0x32;
    pub const ACT_ADD_LOCAL: u8 = 0x33;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn simple_exprs_roundtrip() {
        let exprs = vec![
            Expr::Input(3),
            Expr::Delta(1),
            Expr::Local(0),
            Expr::Status(7),
            Expr::Elapsed,
            Expr::Const(4.5),
            Expr::gt(Expr::Delta(0), Expr::Const(0.3)),
            Expr::le(Expr::Elapsed, Expr::Const(4.0))
                .and(Expr::ne(Expr::Status(0), Expr::Const(0.0))),
            Expr::eq(Expr::Local(1), Expr::Const(5.0))
                .or(Expr::lt(Expr::Input(2), Expr::Const(-1.0)))
                .negate(),
        ];
        for e in exprs {
            let mut buf = Vec::new();
            e.encode(&mut buf);
            let back = Expr::decode(&buf).unwrap();
            assert_eq!(e, back);
            assert_eq!(buf.len(), e.encoded_len());
        }
    }

    #[test]
    fn paper_style_condition_is_compact() {
        // "Status:0 ≠ 0 & CPOS unchanged" — two comparisons and an AND.
        let cpos_unchanged = Expr::eq(Expr::Delta(1), Expr::Const(0.0));
        let cond = Expr::ne(Expr::Status(0), Expr::Const(0.0)).and(cpos_unchanged);
        // status(2) + const(5) + cmp(1) + delta(2) + const(5) + cmp(1) + and(1) = 17 B
        assert_eq!(cond.encoded_len(), 17);
    }

    #[test]
    fn decode_rejects_garbage() {
        assert!(Expr::decode(&[0xFF]).is_err());
        assert!(Expr::decode(&[op::PUSH_CONST, 1, 2]).is_err()); // truncated f32
        assert!(Expr::decode(&[op::AND]).is_err()); // stack underflow
                                                    // Two operands, no operator → unbalanced.
        let mut buf = Vec::new();
        Expr::Input(0).encode(&mut buf);
        Expr::Input(1).encode(&mut buf);
        assert!(Expr::decode(&buf).is_err());
        assert!(Expr::decode(&[]).is_err());
    }

    #[test]
    fn actions_roundtrip() {
        let actions = [
            Action::SetStatus(0, 0),
            Action::OrStatus(1, 1),
            Action::SetLocal(2, -5),
            Action::AddLocal(1, 1),
        ];
        for a in actions {
            let mut buf = Vec::new();
            a.encode(&mut buf);
            assert_eq!(buf.len(), Action::ENCODED_LEN);
            let (back, next) = Action::decode(&buf, 0).unwrap();
            assert_eq!(a, back);
            assert_eq!(next, 4);
        }
    }

    #[test]
    fn action_decode_rejects_truncation_and_garbage() {
        assert!(Action::decode(&[op::ACT_SET_LOCAL, 0], 0).is_err());
        assert!(Action::decode(&[0x99, 0, 0, 0], 0).is_err());
        assert!(Action::decode(&[], 0).is_err());
    }

    fn arb_expr() -> impl Strategy<Value = Expr> {
        let leaf = prop_oneof![
            (0u8..8).prop_map(Expr::Input),
            (0u8..8).prop_map(Expr::Delta),
            (0u8..4).prop_map(Expr::Local),
            (0u8..16).prop_map(Expr::Status),
            Just(Expr::Elapsed),
            (-100.0f32..100.0).prop_map(Expr::Const),
        ];
        leaf.prop_recursive(4, 32, 2, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::lt(a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::ge(a, b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.and(b)),
                (inner.clone(), inner.clone()).prop_map(|(a, b)| a.or(b)),
                inner.prop_map(|a| a.negate()),
            ]
        })
    }

    proptest! {
        #[test]
        fn any_expression_roundtrips(e in arb_expr()) {
            let mut buf = Vec::new();
            e.encode(&mut buf);
            prop_assert_eq!(Expr::decode(&buf).unwrap(), e);
        }
    }
}

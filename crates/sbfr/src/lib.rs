//! # mpros-sbfr
//!
//! State-Based Feature Recognition (§6.3 of the paper): "a technique for
//! the hierarchical recognition of temporally correlated features in
//! multi-channel input. It consists of a set of several enhanced
//! finite-state machines operating in parallel. Each state machine can
//! transition based on sensor input, its own state, the state of another
//! state machine, measured elapsed time, or any logical combination of
//! these."
//!
//! The paper stresses embeddability: "100 state machines operating in
//! parallel and their interpreter can fit in less than 32K bytes" with a
//! cycle period under 4 ms, and quotes the Fig. 3 example machines at
//! 229 and 93 bytes. To make those numbers *measurable* here, machines
//! are compiled to a compact bytecode ([`expr`], [`program`]) and the
//! interpreter ([`interp`]) executes the bytecode directly. The worked
//! example of Fig. 3 — the EMA current-spike recognizer and the stiction
//! counter built on top of it — ships in [`builtin`], together with a
//! synthetic EMA current-trace generator standing in for the rocket-
//! engine actuator hardware.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod builtin;
pub mod disasm;
pub mod expr;
pub mod interp;
pub mod program;

pub use disasm::disassemble;
pub use expr::{Action, Expr};
pub use interp::{Interpreter, MachineStatus, Transition as TakenTransition};
pub use program::{Program, ProgramBuilder};

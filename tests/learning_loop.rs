//! The §9/§10.1 learning loop across crates: maintenance outcomes feed
//! the historian; the historian's review statistics recalibrate DLI
//! believability; its fitted life models produce age-conditioned
//! prognostic curves that the §5.4 fusion combines with live evidence.

use mpros::core::{MachineCondition, MachineId, SimDuration, SimTime};
use mpros::dli::DliExpertSystem;
use mpros::fusion::fuse_prognostics;
use mpros::pdme::historian::{Historian, MaintenanceRecord, Outcome};

fn close_action(
    h: &mut Historian,
    at_h: f64,
    machine: u64,
    condition: MachineCondition,
    outcome: Outcome,
    life_h: Option<f64>,
) {
    h.record(MaintenanceRecord {
        at: SimTime::from_secs(at_h * 3_600.0),
        machine: MachineId::new(machine),
        condition,
        outcome,
        service_life: life_h.map(SimDuration::from_hours),
    });
}

#[test]
fn reversals_in_the_archive_discount_the_rule() {
    let condition = MachineCondition::BearingHousingLooseness;
    let mut historian = Historian::new();
    // The fleet's analysts keep reversing looseness calls.
    for i in 0..30 {
        let outcome = if i % 3 == 0 {
            Outcome::Confirmed
        } else {
            Outcome::Reversed
        };
        close_action(&mut historian, i as f64, i, condition, outcome, None);
    }
    let stats = historian.stats(condition);
    assert_eq!(stats.confirmed + stats.reversed, 30);

    // Feed the archive into the expert system's believability database.
    let mut dli = DliExpertSystem::new();
    let before = {
        // Fresh defaults are confident.
        let db = dli.believability_mut();
        db.believability(condition)
    };
    {
        let db = dli.believability_mut();
        for _ in 0..stats.confirmed {
            db.record_review(condition, true);
        }
        for _ in 0..stats.reversed {
            db.record_review(condition, false);
        }
    }
    let after = dli.believability_mut().believability(condition);
    assert!(
        after < before,
        "archive reversals must discount the rule: {before} → {after}"
    );
}

#[test]
fn archived_lives_condition_live_prognoses() {
    let condition = MachineCondition::MotorBearingDefect;
    let mut historian = Historian::new();
    // A wear-out fleet history (Weibull-ish lives around 5000 h).
    for i in 1..=25 {
        let u = i as f64 / 26.0;
        let life = 5_000.0 * (-(1.0 - u).ln()).powf(1.0 / 2.5);
        close_action(
            &mut historian,
            200.0 * i as f64,
            i,
            condition,
            Outcome::Confirmed,
            Some(life),
        );
    }
    let now = SimTime::from_secs(5_000.0 * 3_600.0);
    let fit = historian.life_model(condition, now).unwrap();
    assert!(fit.shape > 1.5, "wear-out shape {}", fit.shape);

    // A unit deep into its life: history-conditioned curve.
    let aged = fit
        .prognostic_vector(6_000.0, &[200.0, 500.0, 1_000.0], SimDuration::from_hours)
        .unwrap();
    // Generic grade template for a Moderate live diagnosis.
    let template = mpros::core::prognostic::grade_template(mpros::core::SeverityGrade::Moderate);
    let fused = fuse_prognostics(&[template.clone(), aged]).unwrap();
    let med =
        |v: &mpros::core::PrognosticVector| v.horizon_for_probability(0.5).map(|d| d.as_days());
    let fused_med = med(&fused).unwrap();
    let template_med = med(&template).unwrap();
    assert!(
        fused_med < template_med,
        "history must pull the estimate earlier: {fused_med} vs {template_med} days"
    );
}

//! E1 (Fig. 1): full-system dataflow — sensors → DC algorithms →
//! ship network → PDME → OOSM → knowledge fusion → prioritized list.

use mpros::chiller::fault::{FaultProfile, FaultSeed};
use mpros::core::{MachineCondition, MachineId, SimDuration, SimTime};
use mpros::sim::{ShipboardSim, ShipboardSimConfig};

fn sim_with(dc_count: usize) -> ShipboardSim {
    ShipboardSim::new(
        ShipboardSimConfig::new()
            .with_dc_count(dc_count)
            .with_seed(3)
            .with_survey_period(SimDuration::from_secs(30.0)),
    )
    .expect("sim builds")
}

#[test]
fn seeded_fault_reaches_the_maintenance_list() {
    let mut sim = sim_with(1);
    sim.seed_fault(
        0,
        FaultSeed {
            condition: MachineCondition::MotorBearingDefect,
            onset: SimTime::ZERO,
            time_to_failure: SimDuration::from_minutes(10.0),
            profile: FaultProfile::EarlyOnset,
        },
    );
    sim.run_for(SimDuration::from_minutes(8.0), SimDuration::from_secs(0.25))
        .unwrap();
    let list = sim.pdme().maintenance_list();
    assert!(!list.is_empty(), "no conclusions reached the PDME");
    assert_eq!(
        list[0].condition,
        MachineCondition::MotorBearingDefect,
        "top item should be the seeded fault: {list:?}"
    );
    assert!(list[0].belief > 0.5, "fused belief {}", list[0].belief);
    assert!(
        !list[0].prognostic.is_empty(),
        "prognostic fusion should have a curve"
    );
}

#[test]
fn healthy_ship_generates_no_conclusions() {
    let mut sim = sim_with(2);
    sim.run_for(SimDuration::from_minutes(5.0), SimDuration::from_secs(0.25))
        .unwrap();
    assert!(
        sim.pdme().maintenance_list().is_empty(),
        "false positives on a healthy ship: {:?}",
        sim.pdme().maintenance_list()
    );
    // But the plumbing is alive: heartbeats were received.
    let health = sim
        .pdme()
        .dc_health(sim.now(), SimDuration::from_secs(30.0));
    assert_eq!(health.len(), 2);
    assert!(health.iter().all(|(_, alive)| *alive));
}

#[test]
fn faults_are_attributed_to_the_right_machine() {
    let mut sim = sim_with(3);
    sim.seed_fault(
        1, // machine M-0002
        FaultSeed {
            condition: MachineCondition::GearToothWear,
            onset: SimTime::ZERO,
            time_to_failure: SimDuration::from_minutes(8.0),
            profile: FaultProfile::Linear,
        },
    );
    sim.run_for(SimDuration::from_minutes(7.0), SimDuration::from_secs(0.25))
        .unwrap();
    let list = sim.pdme().maintenance_list();
    assert!(!list.is_empty());
    assert!(
        list.iter().all(|item| item.machine == MachineId::new(2)),
        "conclusions leaked to other machines: {list:?}"
    );
    // Machines 1 and 3 stay clean in the report repository too.
    assert!(sim.pdme().reports_for_machine(MachineId::new(1)).is_empty());
    assert!(sim.pdme().reports_for_machine(MachineId::new(3)).is_empty());
}

#[test]
fn reports_survive_in_the_oosm_repository() {
    let mut sim = sim_with(1);
    sim.seed_fault(
        0,
        FaultSeed {
            condition: MachineCondition::MotorImbalance,
            onset: SimTime::ZERO,
            time_to_failure: SimDuration::from_minutes(6.0),
            profile: FaultProfile::Linear,
        },
    );
    sim.run_for(SimDuration::from_minutes(6.0), SimDuration::from_secs(0.25))
        .unwrap();
    let reports = sim.pdme().reports_for_machine(MachineId::new(1));
    assert!(!reports.is_empty());
    // Protocol fields survive the network + OOSM round trip.
    for r in &reports {
        assert_eq!(r.machine, MachineId::new(1));
        assert!(r.belief.value() > 0.0);
        assert!(!r.explanation.is_empty() || r.condition == MachineCondition::CompressorSurge);
    }
    assert_eq!(sim.pdme().reports_received(), reports.len());
}

#[test]
fn run_test_command_round_trips_through_the_network() {
    let mut sim = sim_with(1);
    sim.seed_fault(
        0,
        FaultSeed {
            condition: MachineCondition::MotorImbalance,
            onset: SimTime::ZERO,
            time_to_failure: SimDuration::from_secs(1.0),
            profile: FaultProfile::Step(0.9),
        },
    );
    // Advance past the t=0 survey, then command an immediate re-test
    // long before the next periodic one.
    sim.step(SimDuration::from_secs(1.0)).unwrap();
    sim.send_command(
        0,
        &mpros::network::NetMessage::RunTest {
            dc: mpros::core::DcId::new(1),
            machine: MachineId::new(1),
        },
    )
    .unwrap();
    let before = sim.dc_mut(0).db().measurement_count();
    sim.run_for(SimDuration::from_secs(3.0), SimDuration::from_secs(0.25))
        .unwrap();
    // The commanded survey ran long before the 30 s periodic one: five
    // more measurement rows landed in the DC's embedded database.
    let after = sim.dc_mut(0).db().measurement_count();
    assert_eq!(after, before + 5, "on-demand survey did not run");
    assert!(sim.pdme().reports_received() >= 1);
}

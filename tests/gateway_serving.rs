//! Serving-plane contracts, end to end through `ShipboardSim`:
//!
//! * **Determinism** — for the same seeded scenario, every gateway
//!   response (the raw wire bytes, version stamps and all) is identical
//!   whether the sim that published the snapshots stepped sequentially
//!   or across 2/4/8 pool workers. This extends the
//!   `tests/parallel_determinism.rs` contract through the serving
//!   layer: a response is a pure function of (snapshot version,
//!   request).
//! * **Backpressure** — a subscriber that never polls loses its
//!   *oldest* deltas first; a prompt subscriber on the same gateway
//!   sees the complete edge history. Dropped counts reconcile exactly.
//! * **Concurrency** — many clients can hammer the gateway while the
//!   sim thread keeps stepping; every call succeeds and each client
//!   observes monotonically nondecreasing snapshot versions.

use mpros::chiller::fault::{FaultProfile, FaultSeed};
use mpros::core::{DcId, FaultPlan, MachineCondition, SimDuration, SimTime};
use mpros::gateway::{
    decode_response, encode_request, GatewayClient, GatewayConfig, GatewayRequest, GatewayResponse,
};
use mpros::sim::{ExecMode, ShipboardSim, ShipboardSimConfig};
use mpros::telemetry::SloPolicy;

/// Run the reference scenario under `exec` and answer a fixed request
/// script from the final published snapshot, returning the raw
/// response frames.
fn serve_fingerprint(exec: ExecMode) -> Vec<Vec<u8>> {
    let mut sim = ShipboardSim::new(
        ShipboardSimConfig::new()
            .with_dc_count(4)
            .with_seed(11)
            .with_survey_period(SimDuration::from_secs(30.0))
            .with_dc_timeout(SimDuration::from_secs(15.0))
            // A crash window on DC 2 produces degraded/recovered edges
            // for the Subscribe leg of the script.
            .with_fault_plan(FaultPlan::none().with_dc_crash(
                DcId::new(2),
                SimTime::from_secs(40.0),
                SimTime::from_secs(80.0),
            ))
            .with_slo(SloPolicy::standard(30.0, 120.0, 0.9))
            .with_exec(exec),
    )
    .expect("sim builds");
    let gateway = sim.attach_gateway(GatewayConfig::new());
    // Register the subscriber before any edges, so every mode queues
    // the same delta history.
    let _ = gateway.serve(&GatewayRequest::Subscribe { session: 42 });
    sim.seed_fault(
        0,
        FaultSeed {
            condition: MachineCondition::MotorBearingDefect,
            onset: SimTime::ZERO,
            time_to_failure: SimDuration::from_minutes(8.0),
            profile: FaultProfile::EarlyOnset,
        },
    );
    sim.run_for(SimDuration::from_minutes(3.0), SimDuration::from_secs(0.5))
        .expect("scenario runs");

    let mut script = vec![
        GatewayRequest::GetIcas,
        GatewayRequest::GetSloVerdict,
        GatewayRequest::GetCounters,
        GatewayRequest::Subscribe { session: 42 },
        GatewayRequest::GetMachineStatus { machine: 99 }, // NotFound leg
    ];
    for machine in 1..=4u64 {
        script.push(GatewayRequest::GetMachineStatus { machine });
        script.push(GatewayRequest::GetPrognosticVector {
            machine,
            condition_id: MachineCondition::MotorBearingDefect.index(),
        });
    }
    // The wire-v5 observability legs. The incident and trace ids are
    // read from the run, but both are deterministic derivations, so the
    // script stays identical across modes.
    let incident = sim
        .flight_recorder()
        .incidents()
        .first()
        .map(|s| s.id)
        .expect("the crash window sealed an incident");
    let trace = sim
        .trace_hops()
        .first()
        .map(|h| h.trace.raw())
        .expect("the run recorded traces");
    script.push(GatewayRequest::GetMetrics);
    script.push(GatewayRequest::StreamJournal { cursor: 0, max: 32 });
    script.push(GatewayRequest::ListIncidents);
    script.push(GatewayRequest::GetIncident { id: incident });
    script.push(GatewayRequest::GetTrace { trace });
    script.push(GatewayRequest::GetIncident { id: 0 }); // NotFound leg
    script
        .iter()
        .map(|req| {
            gateway
                .handle_frame(encode_request(req).expect("request encodes"))
                .expect("request serves")
                .to_vec()
        })
        .collect()
}

#[test]
fn gateway_responses_are_byte_identical_across_exec_modes() {
    let reference = serve_fingerprint(ExecMode::Sequential);
    // Guard against vacuity: the ICAS answer must carry real machines,
    // and the Subscribe answer real edges, before comparing bytes.
    let icas = decode_response(bytes::Bytes::from(reference[0].clone())).unwrap();
    match icas {
        GatewayResponse::Icas {
            snapshot_version,
            icas,
        } => {
            assert!(snapshot_version > 0, "nothing was published");
            assert_eq!(icas.machines.len(), 4);
        }
        other => panic!("wrong response {other:?}"),
    }
    match decode_response(bytes::Bytes::from(reference[3].clone())).unwrap() {
        GatewayResponse::Deltas { deltas, .. } => {
            assert!(
                !deltas.is_empty(),
                "the crash window produced no supervision edges"
            );
        }
        other => panic!("wrong response {other:?}"),
    }
    // And the observability legs: real exposition text, a sealed
    // incident, a non-empty hop chain.
    match decode_response(bytes::Bytes::from(reference[13].clone())).unwrap() {
        GatewayResponse::Metrics { exposition, .. } => {
            assert!(exposition.contains("# TYPE"), "empty exposition");
        }
        other => panic!("wrong response {other:?}"),
    }
    match decode_response(bytes::Bytes::from(reference[15].clone())).unwrap() {
        GatewayResponse::Incidents { incidents, .. } => {
            assert!(!incidents.is_empty(), "no incidents listed");
        }
        other => panic!("wrong response {other:?}"),
    }
    match decode_response(bytes::Bytes::from(reference[17].clone())).unwrap() {
        GatewayResponse::Trace { hops, .. } => {
            assert!(!hops.is_empty(), "no hops served");
        }
        other => panic!("wrong response {other:?}"),
    }
    match decode_response(bytes::Bytes::from(reference[18].clone())).unwrap() {
        GatewayResponse::NotFound { .. } => {}
        other => panic!("wrong response {other:?}"),
    }
    for workers in [2, 4, 8] {
        let parallel = serve_fingerprint(ExecMode::Parallel { workers });
        assert_eq!(
            reference, parallel,
            "serving bytes diverged at {workers} workers"
        );
    }
}

#[test]
fn slow_subscriber_loses_oldest_deltas_through_the_sim() {
    let mut sim = ShipboardSim::new(
        ShipboardSimConfig::new()
            .with_dc_count(2)
            .with_seed(11)
            .with_survey_period(SimDuration::from_secs(30.0))
            .with_dc_timeout(SimDuration::from_secs(10.0))
            .with_heartbeat_period(SimDuration::from_secs(5.0))
            // Two crash windows on DC 1: at least two degraded edges,
            // plus recoveries while its plant keeps reporting.
            .with_fault_plan(
                FaultPlan::none()
                    .with_dc_crash(
                        DcId::new(1),
                        SimTime::from_secs(30.0),
                        SimTime::from_secs(60.0),
                    )
                    .with_dc_crash(
                        DcId::new(1),
                        SimTime::from_secs(120.0),
                        SimTime::from_secs(150.0),
                    ),
            ),
    )
    .expect("sim builds");
    let gateway = sim.attach_gateway(GatewayConfig::new().with_session_queue_capacity(1));
    // A reporting fault keeps DC 1's machine re-reporting after each
    // restart, so recovered edges follow the degraded ones.
    sim.seed_fault(
        0,
        FaultSeed {
            condition: MachineCondition::MotorBearingDefect,
            onset: SimTime::ZERO,
            time_to_failure: SimDuration::from_minutes(8.0),
            profile: FaultProfile::EarlyOnset,
        },
    );
    let slow = GatewayClient::connect(gateway.clone(), 1);
    let prompt = GatewayClient::connect(gateway.clone(), 2);
    // Both register before the first edge; only `prompt` ever polls.
    assert_eq!(slow.poll_deltas().unwrap().deltas.len(), 0);
    assert_eq!(prompt.poll_deltas().unwrap().deltas.len(), 0);

    let dt = SimDuration::from_secs(0.5);
    let mut prompt_history = Vec::new();
    for _ in 0..480 {
        sim.step(dt).expect("step");
        let batch = prompt.poll_deltas().expect("prompt poll");
        assert_eq!(batch.dropped, 0, "a per-step poller must never drop");
        prompt_history.extend(batch.deltas);
    }
    assert!(
        prompt_history.len() >= 2,
        "expected at least two supervision edges, saw {prompt_history:?}"
    );

    // The slow session's capacity-1 queue kept only the newest delta.
    let starved = slow.poll_deltas().expect("slow poll");
    assert_eq!(starved.deltas.len(), 1, "capacity-1 queue holds one delta");
    assert!(starved.dropped >= 1, "older deltas must have been evicted");
    assert_eq!(
        starved.dropped as usize + starved.deltas.len(),
        prompt_history.len(),
        "evicted + surviving must reconcile with the full edge history"
    );
    assert_eq!(
        starved.deltas[0],
        *prompt_history.last().unwrap(),
        "oldest-drop means the newest edge survives"
    );
    assert_eq!(
        sim.telemetry().snapshot().counter("gateway", "drops"),
        starved.dropped,
        "the drop counter tracks the slow session's evictions"
    );
}

#[test]
fn many_clients_query_a_live_stepping_sim() {
    let mut sim = ShipboardSim::new(
        ShipboardSimConfig::new()
            .with_dc_count(2)
            .with_seed(7)
            .with_survey_period(SimDuration::from_secs(30.0)),
    )
    .expect("sim builds");
    let gateway = sim.attach_gateway(GatewayConfig::new());
    sim.seed_fault(
        0,
        FaultSeed {
            condition: MachineCondition::MotorBearingDefect,
            onset: SimTime::ZERO,
            time_to_failure: SimDuration::from_minutes(5.0),
            profile: FaultProfile::EarlyOnset,
        },
    );

    const CLIENTS: usize = 8;
    const CALLS: usize = 200;
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..CLIENTS)
            .map(|i| {
                let gw = gateway.clone();
                scope.spawn(move || {
                    let client = GatewayClient::connect(gw, i as u64);
                    let mut last_version = 0u64;
                    for call in 0..CALLS {
                        // Mix reads and subscription polls.
                        let version = if call % 5 == 0 {
                            client.poll_deltas().expect("poll").snapshot_version
                        } else {
                            match client.call(&GatewayRequest::GetIcas).expect("icas") {
                                GatewayResponse::Icas {
                                    snapshot_version, ..
                                } => snapshot_version,
                                other => panic!("wrong response {other:?}"),
                            }
                        };
                        assert!(
                            version >= last_version,
                            "snapshot version went backwards: {version} < {last_version}"
                        );
                        last_version = version;
                    }
                    last_version
                })
            })
            .collect();
        // The sim thread keeps stepping while the clients hammer away;
        // publishes and serves only ever exchange an `Arc` pointer.
        sim.run_for(SimDuration::from_secs(60.0), SimDuration::from_secs(0.5))
            .expect("sim steps under serving load");
        for handle in handles {
            assert!(handle.join().expect("client thread") <= sim.steps());
        }
    });
    let snap = sim.telemetry().snapshot();
    assert_eq!(
        snap.counter("gateway", "requests"),
        (CLIENTS * CALLS) as u64,
        "every client call is counted"
    );
    assert_eq!(snap.counter("gateway", "bad_frames"), 0);
    assert_eq!(gateway.version(), sim.steps());
}

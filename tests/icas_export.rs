//! §1/§3.3: the ICAS open interface exercised against a live shipboard
//! run — "open interfaces to provide machinery condition and raw sensor
//! data to other shipboard systems such as ICAS."

use mpros::chiller::fault::{FaultProfile, FaultSeed};
use mpros::core::{MachineCondition, SimDuration, SimTime};
use mpros::pdme::icas::{export_snapshot, IcasSnapshot, ICAS_SCHEMA_VERSION};
use mpros::sim::{ShipboardSim, ShipboardSimConfig};

#[test]
fn live_run_exports_a_consumable_snapshot() {
    let mut sim = ShipboardSim::new(
        ShipboardSimConfig::new()
            .with_dc_count(2)
            .with_seed(13)
            .with_survey_period(SimDuration::from_secs(30.0)),
    )
    .unwrap();
    sim.seed_fault(
        0,
        FaultSeed {
            condition: MachineCondition::MotorBearingDefect,
            onset: SimTime::ZERO,
            time_to_failure: SimDuration::from_minutes(8.0),
            profile: FaultProfile::EarlyOnset,
        },
    );
    sim.run_for(SimDuration::from_minutes(6.0), SimDuration::from_secs(0.25))
        .unwrap();

    let snap = export_snapshot(sim.pdme(), sim.now(), SimDuration::from_secs(30.0));
    assert_eq!(snap.schema_version, ICAS_SCHEMA_VERSION);
    assert_eq!(snap.machines.len(), 2);
    assert_eq!(snap.data_concentrators.len(), 2);
    assert!(snap.data_concentrators.iter().all(|d| d.alive));

    // Machine 1 carries the fused fault; machine 2 is clean.
    let m1 = snap.machines.iter().find(|m| m.machine_id == 1).unwrap();
    let m2 = snap.machines.iter().find(|m| m.machine_id == 2).unwrap();
    assert!(m1.health < 0.5, "faulted machine health {}", m1.health);
    assert!(m1
        .conditions
        .iter()
        .any(|c| c.description.contains("bearing defect") && c.belief > 0.5));
    assert_eq!(m2.health, 1.0);
    assert!(m2.conditions.is_empty());

    // Round trip through the wire representation a consumer would parse.
    let json = snap.to_json().unwrap();
    let parsed = IcasSnapshot::from_json(&json).unwrap();
    assert_eq!(parsed, snap);
    // A consumer that only knows JSON finds the essentials.
    let value: serde_json::Value = serde_json::from_str(&json).unwrap();
    assert_eq!(value["schema_version"], ICAS_SCHEMA_VERSION);
    assert!(value["machines"].as_array().unwrap().len() == 2);
}

#[test]
fn snapshot_tracks_state_changes_over_time() {
    let mut sim = ShipboardSim::new(
        ShipboardSimConfig::new()
            .with_dc_count(1)
            .with_seed(17)
            .with_survey_period(SimDuration::from_secs(30.0)),
    )
    .unwrap();
    sim.seed_fault(
        0,
        FaultSeed {
            condition: MachineCondition::CondenserFouling,
            onset: SimTime::ZERO + SimDuration::from_minutes(2.0),
            time_to_failure: SimDuration::from_minutes(10.0),
            profile: FaultProfile::Linear,
        },
    );
    sim.run_for(SimDuration::from_minutes(1.0), SimDuration::from_secs(0.25))
        .unwrap();
    let early = export_snapshot(sim.pdme(), sim.now(), SimDuration::from_secs(30.0));
    sim.run_for(SimDuration::from_minutes(9.0), SimDuration::from_secs(0.25))
        .unwrap();
    let late = export_snapshot(sim.pdme(), sim.now(), SimDuration::from_secs(30.0));
    assert_eq!(early.machines[0].health, 1.0, "pre-onset snapshot is clean");
    assert!(
        late.machines[0].health < early.machines[0].health,
        "developing fault must degrade the exported health"
    );
    assert!(late.at_secs > early.at_secs);
}

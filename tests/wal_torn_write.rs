//! Property tests for the `mpros-store` WAL frame codec: every frame
//! survives the byte format bit for bit, every corrupted byte is
//! rejected by the CRC (never silently accepted), and a log truncated
//! at **every** prefix length recovers to exactly the last valid frame
//! — the torn-write contract the crash-restore path relies on.

use mpros::store::{encode_frame, scan_frame, scan_log, Frame, FrameScan};
use proptest::prelude::*;

fn arb_frame() -> impl Strategy<Value = Frame> {
    (
        0u8..=255,
        0u64..=u64::MAX,
        proptest::collection::vec(0u8..=255, 0..48),
    )
        .prop_map(|(kind, seq, payload)| Frame { kind, seq, payload })
}

fn arb_log() -> impl Strategy<Value = Vec<Frame>> {
    proptest::collection::vec(arb_frame(), 1..6)
}

/// Concatenated encoding plus the byte offset where each frame ends
/// (starting with offset 0 — the empty prefix is a valid log).
fn encode_log(frames: &[Frame]) -> (Vec<u8>, Vec<usize>) {
    let mut bytes = Vec::new();
    let mut boundaries = vec![0];
    for frame in frames {
        bytes.extend_from_slice(&encode_frame(frame));
        boundaries.push(bytes.len());
    }
    (bytes, boundaries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_frame_roundtrips(frame in arb_frame()) {
        let encoded = encode_frame(&frame);
        match scan_frame(&encoded) {
            FrameScan::Valid(back, consumed) => {
                prop_assert_eq!(&back, &frame);
                prop_assert_eq!(consumed, encoded.len());
            }
            other => prop_assert!(false, "valid frame did not scan: {:?}", other),
        }
        // Bytes after the frame must not change what is consumed.
        let mut padded = encoded.clone();
        padded.extend_from_slice(&[0xAA; 7]);
        match scan_frame(&padded) {
            FrameScan::Valid(back, consumed) => {
                prop_assert_eq!(back, frame);
                prop_assert_eq!(consumed, encoded.len());
            }
            other => prop_assert!(false, "padded frame did not scan: {:?}", other),
        }
    }

    #[test]
    fn any_corrupted_byte_is_rejected(frame in arb_frame(), pos_raw in 0usize..4096, bit in 0u8..8) {
        // Flip one bit anywhere in the encoded frame: magic, version,
        // kind, seq, length, payload or the CRC trailer itself. The
        // scan must never hand back a valid frame.
        let mut encoded = encode_frame(&frame);
        let pos = pos_raw % encoded.len();
        encoded[pos] ^= 1 << bit;
        prop_assert!(
            !matches!(scan_frame(&encoded), FrameScan::Valid(..)),
            "bit {bit} of byte {pos} flipped yet the frame scanned as valid"
        );
    }

    #[test]
    fn truncation_at_every_prefix_recovers_last_valid_frame(frames in arb_log()) {
        let (bytes, boundaries) = encode_log(&frames);
        for cut in 0..=bytes.len() {
            let scan = scan_log(&bytes[..cut]);
            let last_valid = *boundaries.iter().rfind(|&&b| b <= cut).unwrap();
            let whole_frames = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            prop_assert_eq!(
                scan.valid_len as usize, last_valid,
                "cut at {} did not recover to the last valid frame", cut
            );
            prop_assert_eq!(
                scan.frames.len(), whole_frames,
                "cut at {} yielded the wrong frame count", cut
            );
            prop_assert_eq!(&scan.frames, &frames[..whole_frames]);
            // A cut on a frame boundary is a clean tail; anywhere else
            // the scan must say why it stopped.
            prop_assert_eq!(scan.tail_error.is_some(), cut != last_valid);
        }
    }

    #[test]
    fn corruption_mid_log_stops_at_the_damaged_frame(
        frames in arb_log(),
        victim_raw in 0usize..4096,
        offset_raw in 0usize..4096,
    ) {
        let (mut bytes, boundaries) = encode_log(&frames);
        let victim = victim_raw % frames.len();
        let flip_at = boundaries[victim]
            + offset_raw % (boundaries[victim + 1] - boundaries[victim]);
        bytes[flip_at] ^= 0x10;
        let scan = scan_log(&bytes);
        prop_assert_eq!(
            scan.valid_len as usize, boundaries[victim],
            "scan did not stop at the frame containing the flipped byte"
        );
        prop_assert_eq!(&scan.frames, &frames[..victim]);
        prop_assert!(scan.tail_error.is_some());
    }
}

//! §6.3 over the full stack: "Under control of the System Executive
//! running in the PDME ... new finite-state machines may be downloaded
//! into the smart sensor. This will allow the behavior of the sensor to
//! adapt to its data" — a machine image travels PDME → network → DC and
//! replaces a running machine; the disassembler verifies what shipped.

use mpros::core::{DcId, MachineId, SimDuration};
use mpros::network::NetMessage;
use mpros::sbfr::builtin::{spike_machine, stiction_machine};
use mpros::sbfr::{disassemble, Action, Expr, ProgramBuilder};
use mpros::sim::{ShipboardSim, ShipboardSimConfig};

#[test]
fn pdme_downloads_a_new_machine_into_a_running_dc() {
    let mut sim = ShipboardSim::new(
        ShipboardSimConfig::new()
            .with_dc_count(1)
            .with_seed(21)
            .with_survey_period(SimDuration::from_secs(60.0)),
    )
    .unwrap();
    // Warm the system up.
    sim.run_for(SimDuration::from_secs(5.0), SimDuration::from_secs(0.25))
        .unwrap();

    // A "closer look" machine: retuned spike detector (the §6.3 adaptive
    // behavior — e.g. a lower edge threshold after a suspicion arises).
    let mut b = ProgramBuilder::new("sensitive spike watch", 0);
    let wait = b.state("Wait");
    let hit = b.state("Hit");
    b.transition(
        wait,
        hit,
        Expr::gt(Expr::Delta(0), Expr::Const(0.2)),
        vec![Action::OrStatus(0, 1)],
    );
    b.transition(
        hit,
        wait,
        Expr::eq(Expr::Status(0), Expr::Const(0.0)),
        vec![],
    );
    let image = b.build().unwrap().encode().unwrap();

    // Operators can audit exactly what is being shipped.
    let listing = disassemble(&image).unwrap();
    assert!(listing.contains("ΔIn:0 > 0.2"), "listing:\n{listing}");

    // Ship it over the simulated LAN to slot 0.
    sim.send_command(
        0,
        &NetMessage::DownloadSbfr {
            dc: DcId::new(1),
            slot: 0,
            image: image.clone(),
        },
    )
    .unwrap();
    // The command is delivered on the next tick and must not disturb the
    // running system.
    sim.run_for(SimDuration::from_secs(10.0), SimDuration::from_secs(0.25))
        .unwrap();

    // A corrupt image shipped the same way is rejected at the DC (the
    // step surfaces the error).
    sim.send_command(
        0,
        &NetMessage::DownloadSbfr {
            dc: DcId::new(1),
            slot: 0,
            image: vec![0xDE, 0xAD],
        },
    )
    .unwrap();
    let err = sim.step(SimDuration::from_secs(0.25));
    assert!(err.is_err(), "corrupt image must surface an error");
    let _ = MachineId::new(1);
}

#[test]
fn downloaded_images_roundtrip_the_wire_bit_for_bit() {
    for image in [
        spike_machine(0).encode().unwrap(),
        stiction_machine(1, 0).encode().unwrap(),
    ] {
        let msg = NetMessage::DownloadSbfr {
            dc: DcId::new(1),
            slot: 1,
            image: image.clone(),
        };
        let frame = mpros::network::encode_message(&msg).unwrap();
        match mpros::network::decode_message(frame).unwrap() {
            NetMessage::DownloadSbfr { image: back, .. } => assert_eq!(back, image),
            other => panic!("wrong kind: {other:?}"),
        }
    }
}

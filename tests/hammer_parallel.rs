//! Concurrency hammering: step the parallel simulation hard while
//! other threads continuously snapshot the shared telemetry domain and
//! the stepping thread interleaves ICAS exports. Nothing here checks
//! equivalence (that's `parallel_determinism.rs`) — this test exists to
//! surface panics, deadlocks and torn reads under real contention:
//! worker threads flushing span batches and bumping counters while
//! reader threads serialize snapshots of the same registry.

use mpros::chiller::fault::{FaultProfile, FaultSeed};
use mpros::core::{MachineCondition, SimDuration, SimTime};
use mpros::pdme::export_snapshot;
use mpros::sim::{ExecMode, ShipboardSim, ShipboardSimConfig};
use std::sync::atomic::{AtomicBool, Ordering};

#[test]
fn stepping_under_concurrent_snapshots_never_tears() {
    let mut sim = ShipboardSim::new(
        ShipboardSimConfig::new()
            .with_dc_count(4)
            .with_seed(42)
            .with_survey_period(SimDuration::from_secs(20.0))
            .with_exec(ExecMode::Parallel { workers: 4 }),
    )
    .expect("sim builds");
    for idx in [0, 3] {
        sim.seed_fault(
            idx,
            FaultSeed {
                condition: MachineCondition::MotorImbalance,
                onset: SimTime::ZERO,
                time_to_failure: SimDuration::from_minutes(5.0),
                profile: FaultProfile::Linear,
            },
        );
    }
    let telemetry = sim.telemetry().clone();
    let done = AtomicBool::new(false);
    let done = &done;
    let telemetry = &telemetry;

    crossbeam::thread::scope(|s| {
        // The driver: step in chunks, exporting ICAS between chunks so
        // PDME reads interleave with worker writes on the same domain.
        s.spawn(move |_| {
            // Survey-heavy steps: dt is half the survey period, so
            // every other step pushes a full survey through all DCs.
            let dt = SimDuration::from_secs(10.0);
            for chunk in 1..=8 {
                for _ in 0..3 {
                    sim.step(dt).expect("step succeeds under contention");
                }
                let icas = export_snapshot(sim.pdme(), sim.now(), SimDuration::from_secs(30.0));
                assert_eq!(icas.machines.len(), 4, "chunk {chunk}: machines missing");
                assert_eq!(icas.data_concentrators.len(), 4);
                assert!(
                    icas.data_concentrators.iter().all(|dc| dc.alive),
                    "chunk {chunk}: a DC went silent"
                );
            }
            assert!(sim.pdme().reports_received() > 0, "no traffic at all");
            done.store(true, Ordering::Release);
        });

        // The hammerers: three readers snapshotting as fast as they can,
        // checking counter monotonicity across snapshots (a torn or
        // backwards read would violate it).
        for reader in 0..3 {
            s.spawn(move |_| {
                let mut last_jobs = 0u64;
                let mut last_sent = 0u64;
                let mut snapshots = 0u64;
                while !done.load(Ordering::Acquire) {
                    let snap = telemetry.snapshot();
                    let jobs = snap.counter("exec", "jobs");
                    let sent = snap.counter("net", "sent");
                    assert!(
                        jobs >= last_jobs,
                        "reader {reader}: exec.jobs went backwards ({last_jobs} -> {jobs})"
                    );
                    assert!(
                        sent >= last_sent,
                        "reader {reader}: net.sent went backwards ({last_sent} -> {sent})"
                    );
                    // Snapshots must serialize even mid-write.
                    snap.to_json().expect("snapshot serializes");
                    last_jobs = jobs;
                    last_sent = sent;
                    snapshots += 1;
                }
                assert!(snapshots > 0, "reader {reader} never ran");
            });
        }
    })
    .expect("no thread panicked");
}

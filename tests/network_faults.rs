//! §4.9 robustness: "power supply and communications are stable in our
//! labs but may not be the same on board the ships." Lossy links and
//! partitions must degrade the system gracefully, never wedge it.

use mpros::chiller::fault::{FaultProfile, FaultSeed};
use mpros::core::{DcId, MachineCondition, SimDuration, SimTime};
use mpros::network::{Endpoint, NetworkConfig};
use mpros::sim::{ShipboardSim, ShipboardSimConfig};

fn lossy_sim(drop_probability: f64) -> ShipboardSim {
    let mut sim = ShipboardSim::new(
        ShipboardSimConfig::new()
            .with_dc_count(1)
            .with_seed(9)
            .with_survey_period(SimDuration::from_secs(20.0))
            .with_network(NetworkConfig::default().with_drop_probability(drop_probability)),
    )
    .unwrap();
    sim.seed_fault(
        0,
        FaultSeed {
            condition: MachineCondition::MotorImbalance,
            onset: SimTime::ZERO,
            time_to_failure: SimDuration::from_minutes(6.0),
            profile: FaultProfile::EarlyOnset,
        },
    );
    sim
}

#[test]
fn lossy_network_still_delivers_the_diagnosis() {
    let mut sim = lossy_sim(0.4);
    sim.run_for(SimDuration::from_minutes(8.0), SimDuration::from_secs(0.25))
        .unwrap();
    let stats = sim.network_mut().stats();
    assert!(stats.dropped > 0, "the lossy link should actually drop");
    // Severity keeps climbing, so re-reports keep flowing; eventually
    // one gets through and the conclusion lands.
    let list = sim.pdme().maintenance_list();
    assert!(
        list.iter()
            .any(|i| i.condition == MachineCondition::MotorImbalance),
        "diagnosis lost to the network: {list:?}"
    );
}

#[test]
fn partition_blanks_a_dc_then_heals() {
    let mut sim = lossy_sim(0.0);
    // Let the first reports through.
    sim.run_for(SimDuration::from_secs(30.0), SimDuration::from_secs(0.25))
        .unwrap();
    let received_before = sim.pdme().reports_received();
    assert!(received_before > 0);

    // Partition the DC: nothing arrives, and health decays.
    sim.network_mut()
        .set_partitioned(Endpoint::Dc(DcId::new(1)), true);
    sim.run_for(SimDuration::from_minutes(2.0), SimDuration::from_secs(0.25))
        .unwrap();
    assert_eq!(
        sim.pdme().reports_received(),
        received_before,
        "reports crossed a partition"
    );
    let health = sim
        .pdme()
        .dc_health(sim.now(), SimDuration::from_secs(30.0));
    assert_eq!(
        health[0],
        (DcId::new(1), false),
        "partitioned DC looks dead"
    );

    // Heal: heartbeats resume; the DC is alive again.
    sim.network_mut()
        .set_partitioned(Endpoint::Dc(DcId::new(1)), false);
    sim.run_for(SimDuration::from_secs(30.0), SimDuration::from_secs(0.25))
        .unwrap();
    let health = sim
        .pdme()
        .dc_health(sim.now(), SimDuration::from_secs(30.0));
    assert_eq!(health[0], (DcId::new(1), true), "DC did not recover");
    assert!(sim.pdme().reports_received() >= received_before);
}

#[test]
fn total_loss_never_wedges_the_simulation() {
    let mut sim = lossy_sim(1.0);
    sim.run_for(SimDuration::from_minutes(3.0), SimDuration::from_secs(0.25))
        .unwrap();
    assert_eq!(sim.pdme().reports_received(), 0);
    assert!(sim.pdme().maintenance_list().is_empty());
    let stats = sim.network_mut().stats();
    assert_eq!(stats.delivered, 0);
    assert!(stats.dropped > 0);
}

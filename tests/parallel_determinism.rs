//! The determinism-equivalence harness: the same seeded scenario must
//! produce **byte-for-byte identical** observable state whether DCs are
//! stepped sequentially or scattered across 2, 4 or 8 workers. This is
//! the contract the scatter-gather engine (`mpros::exec`) makes — see
//! the "Execution model" section of `src/sim.rs` and DESIGN.md.
//!
//! What is compared per scenario:
//! * the ICAS snapshot, as its exact JSON serialization;
//! * the total reports fused and received;
//! * every telemetry counter except the `exec` component (job counts
//!   exist only in parallel mode) — network deliveries, drops, batched
//!   reports, DC pipeline activity, fusion conflicts, all of it;
//! * the deterministic (simulated-time) histograms — bus transit and
//!   end-to-end report latency;
//! * the journal, normalized per component: within one component the
//!   event sequence is deterministic, while cross-component
//!   interleaving legitimately varies with worker scheduling.
//! * the full causal-trace export (Chrome trace-event JSON and JSONL),
//!   byte for byte — trace/span ids are purely derived and hop times
//!   are simulated, so the tree must not see the worker count at all.

use mpros::chiller::fault::{FaultProfile, FaultSeed};
use mpros::core::{DcId, FaultPlan, FaultTarget, MachineCondition, SimDuration, SimTime};
use mpros::network::NetworkConfig;
use mpros::pdme::export_snapshot;
use mpros::sim::{ExecMode, ShipboardSim, ShipboardSimConfig};
use std::collections::BTreeMap;

/// A seeded scenario: configuration plus the faults it injects.
struct Scenario {
    name: &'static str,
    dc_count: usize,
    seed: u64,
    network: NetworkConfig,
    fault_plan: FaultPlan,
    faults: Vec<(usize, FaultSeed)>,
    minutes: f64,
}

fn scenarios() -> Vec<Scenario> {
    vec![
        // A clean network with two progressing faults on a 4-DC fleet.
        Scenario {
            name: "clean-net-two-faults",
            dc_count: 4,
            seed: 11,
            network: NetworkConfig::default(),
            fault_plan: FaultPlan::none(),
            faults: vec![
                (
                    0,
                    FaultSeed {
                        condition: MachineCondition::MotorBearingDefect,
                        onset: SimTime::ZERO,
                        time_to_failure: SimDuration::from_minutes(10.0),
                        profile: FaultProfile::EarlyOnset,
                    },
                ),
                (
                    2,
                    FaultSeed {
                        condition: MachineCondition::GearToothWear,
                        onset: SimTime::from_secs(20.0),
                        time_to_failure: SimDuration::from_minutes(8.0),
                        profile: FaultProfile::Linear,
                    },
                ),
            ],
            minutes: 3.0,
        },
        // A lossy, jittery network: exercises the RNG draw-order pinning
        // (drops and jitter must fall on the same frames in every mode).
        Scenario {
            name: "lossy-net-one-fault",
            dc_count: 3,
            seed: 99,
            network: NetworkConfig::default()
                .with_drop_probability(0.15)
                .with_jitter(SimDuration::from_millis(4.0)),
            fault_plan: FaultPlan::none(),
            faults: vec![(
                1,
                FaultSeed {
                    condition: MachineCondition::RefrigerantLeak,
                    onset: SimTime::ZERO,
                    time_to_failure: SimDuration::from_minutes(6.0),
                    profile: FaultProfile::Step(0.9),
                },
            )],
            minutes: 3.0,
        },
        // Full adversity: a crash/restart cycle, a partition riding the
        // outbox retry path, a flatlined sensor and a PDME stall — the
        // survivability machinery itself must stay mode-invariant.
        Scenario {
            name: "fault-plan-crash-partition",
            dc_count: 3,
            seed: 23,
            network: NetworkConfig::default(),
            fault_plan: FaultPlan::none()
                .with_dc_crash(
                    DcId::new(2),
                    SimTime::from_secs(40.0),
                    SimTime::from_secs(75.0),
                )
                .with_partition(
                    FaultTarget::Dc(DcId::new(3)),
                    SimTime::from_secs(60.0),
                    SimTime::from_secs(95.0),
                )
                .with_sensor_dropout(
                    DcId::new(1),
                    1,
                    SimTime::from_secs(30.0),
                    SimTime::from_secs(90.0),
                )
                .with_pdme_stall(SimTime::from_secs(100.0), SimTime::from_secs(115.0)),
            faults: vec![(
                0,
                FaultSeed {
                    condition: MachineCondition::MotorBearingDefect,
                    onset: SimTime::ZERO,
                    time_to_failure: SimDuration::from_minutes(8.0),
                    profile: FaultProfile::EarlyOnset,
                },
            )],
            minutes: 4.0,
        },
    ]
}

/// Everything observable that must not depend on scheduling.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    icas_json: String,
    fused: usize,
    reports_received: usize,
    counters: Vec<(String, String, u64)>,
    sim_histograms: Vec<(String, String, u64, String)>,
    journal_by_component: BTreeMap<String, Vec<(f64, String, String)>>,
    chrome_trace: String,
    trace_jsonl: String,
    /// The Prometheus-style text exposition the gateway would serve —
    /// rendered from the filtered sim-domain metrics, so it must be
    /// byte-identical across modes like everything else it derives from.
    exposition: String,
    /// Every sealed flight-recorder incident as its exact JSON (scenario
    /// 3's DC crash guarantees at least one seal).
    incidents_json: String,
}

fn run(scenario: &Scenario, exec: ExecMode) -> Fingerprint {
    let mut sim = ShipboardSim::new(
        ShipboardSimConfig::new()
            .with_dc_count(scenario.dc_count)
            .with_seed(scenario.seed)
            .with_network(scenario.network.clone())
            .with_fault_plan(scenario.fault_plan.clone())
            .with_survey_period(SimDuration::from_secs(30.0))
            .with_exec(exec),
    )
    .expect("sim builds");
    for (idx, fault) in &scenario.faults {
        sim.seed_fault(*idx, *fault);
    }
    let fused = sim
        .run_for(
            SimDuration::from_minutes(scenario.minutes),
            SimDuration::from_secs(0.5),
        )
        .expect("scenario runs");

    let icas = export_snapshot(sim.pdme(), sim.now(), SimDuration::from_secs(30.0));
    let snap = sim.telemetry().snapshot();
    // Counters: drop the `exec` component — pool bookkeeping exists
    // only in parallel mode and is scheduling metadata, not state.
    let counters = snap
        .counters
        .iter()
        .filter(|c| c.component != "exec")
        .map(|c| (c.component.clone(), c.name.clone(), c.value))
        .collect();
    // Histograms in simulated time are fully deterministic; wall-clock
    // ones describe the host and are excluded. Fingerprint count and
    // the exact float stats.
    let sim_histograms = snap
        .histograms
        .iter()
        .filter(|h| {
            h.name.ends_with("sim_s")
                || h.name.ends_with("latency_s")
                || h.name.ends_with("transit_s")
        })
        .map(|h| {
            (
                h.component.clone(),
                h.name.clone(),
                h.count,
                format!(
                    "{:?}/{:?}/{:?}/{:?}/{:?}",
                    h.min, h.max, h.p50, h.p95, h.p99
                ),
            )
        })
        .collect();
    let mut journal_by_component: BTreeMap<String, Vec<(f64, String, String)>> = BTreeMap::new();
    for e in sim.telemetry().events() {
        journal_by_component
            .entry(e.component.clone())
            .or_default()
            .push((e.at.as_secs(), e.kind.clone(), e.detail.clone()));
    }
    let hops = sim.trace_hops();
    let serving = mpros::gateway::ServingSnapshot::build(
        sim.steps(),
        sim.now(),
        sim.pdme(),
        SimDuration::from_secs(30.0),
        sim.slo_verdict(),
        sim.telemetry(),
    );
    let recorder = sim.flight_recorder();
    let incidents_json = recorder
        .incidents()
        .iter()
        .map(|summary| {
            recorder
                .incident(summary.id)
                .expect("listed incident is retrievable")
                .to_json()
                .expect("incident serializes")
        })
        .collect::<Vec<_>>()
        .join("\n");
    Fingerprint {
        icas_json: icas.to_json().expect("ICAS serializes"),
        fused,
        reports_received: sim.pdme().reports_received(),
        counters,
        sim_histograms,
        journal_by_component,
        chrome_trace: mpros::telemetry::export::chrome_trace(&hops),
        trace_jsonl: mpros::telemetry::export::jsonl(&hops),
        exposition: serving.exposition,
        incidents_json,
    }
}

#[test]
fn parallel_stepping_is_byte_identical_to_sequential() {
    for scenario in scenarios() {
        let reference = run(&scenario, ExecMode::Sequential);
        assert!(
            reference.reports_received > 0,
            "{}: scenario produced no traffic — vacuous comparison",
            scenario.name
        );
        if scenario.name == "fault-plan-crash-partition" {
            // The DC crash window must have sealed at least one flight
            // recorder incident, or the incident comparison is vacuous.
            assert!(
                !reference.incidents_json.is_empty(),
                "{}: faulted scenario sealed no incidents",
                scenario.name
            );
        }
        for workers in [2, 4, 8] {
            let parallel = run(&scenario, ExecMode::Parallel { workers });
            assert_eq!(
                reference.icas_json, parallel.icas_json,
                "{}: ICAS snapshot diverged at {workers} workers",
                scenario.name
            );
            assert_eq!(
                reference.fused, parallel.fused,
                "{}: fused total diverged at {workers} workers",
                scenario.name
            );
            assert_eq!(
                reference.counters, parallel.counters,
                "{}: counters diverged at {workers} workers",
                scenario.name
            );
            assert_eq!(
                reference.sim_histograms, parallel.sim_histograms,
                "{}: simulated-time histograms diverged at {workers} workers",
                scenario.name
            );
            assert_eq!(
                reference.journal_by_component, parallel.journal_by_component,
                "{}: journal diverged at {workers} workers",
                scenario.name
            );
            assert_eq!(
                reference.chrome_trace, parallel.chrome_trace,
                "{}: Chrome trace export diverged at {workers} workers",
                scenario.name
            );
            assert_eq!(
                reference.trace_jsonl, parallel.trace_jsonl,
                "{}: JSONL trace export diverged at {workers} workers",
                scenario.name
            );
            assert_eq!(
                reference.exposition, parallel.exposition,
                "{}: metrics exposition diverged at {workers} workers",
                scenario.name
            );
            assert_eq!(
                reference.incidents_json, parallel.incidents_json,
                "{}: sealed incidents diverged at {workers} workers",
                scenario.name
            );
            assert_eq!(reference, parallel, "{}: full fingerprint", scenario.name);
        }
    }
}

/// The same mode twice must also be self-identical (guards against the
/// comparison accidentally passing because *everything* varies).
#[test]
fn each_mode_is_self_deterministic() {
    let all = scenarios();
    let scenario = &all[1];
    assert_eq!(
        run(scenario, ExecMode::Sequential),
        run(scenario, ExecMode::Sequential)
    );
    assert_eq!(
        run(scenario, ExecMode::Parallel { workers: 4 }),
        run(scenario, ExecMode::Parallel { workers: 4 })
    );
}

/// Distinct master seeds must produce distinct runs — the per-DC seed
/// derivation must not collapse streams.
#[test]
fn distinct_seeds_diverge() {
    let mut a = scenarios().remove(0);
    a.minutes = 1.0;
    let base = run(&a, ExecMode::Sequential);
    a.seed = a.seed.wrapping_add(1);
    let shifted = run(&a, ExecMode::Sequential);
    assert_ne!(
        base.icas_json, shifted.icas_json,
        "seed change did not alter the run"
    );
}

//! §7: the failure-prediction reporting protocol end to end — every
//! field of a report must survive DC → frame codec → network → PDME →
//! OOSM persistence → fusion, bit for bit.

use mpros::core::{
    Belief, ConditionReport, DcId, KnowledgeSourceId, MachineCondition, MachineId,
    PrognosticVector, ReportId, SimTime,
};
use mpros::network::{decode_message, encode_message, BatchEntry, NetMessage, MAX_BATCH};
use mpros::oosm::Oosm;
use mpros::pdme::PdmeExecutive;
use mpros::telemetry::{SpanId, TraceContext, TraceId};
use proptest::prelude::*;

fn arb_report() -> impl Strategy<Value = ConditionReport> {
    (
        0u64..1000,
        0u64..50,
        0usize..12,
        0.0..=1.0f64,
        0.0..=1.0f64,
        proptest::collection::vec((0.5..24.0f64, 0.01..=1.0f64), 0..5),
        ".{0,40}",
        ".{0,40}",
    )
        .prop_map(
            |(id, machine, cond_idx, belief, severity, prog_raw, expl, rec)| {
                let mut sorted = prog_raw;
                sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                sorted.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-3);
                let mut acc: f64 = 0.0;
                let pairs: Vec<(f64, f64)> = sorted
                    .into_iter()
                    .map(|(m, p)| {
                        acc = acc.max(p);
                        (m, acc)
                    })
                    .collect();
                ConditionReport::builder(
                    MachineId::new(machine),
                    MachineCondition::from_index(cond_idx).unwrap(),
                    Belief::new(belief),
                )
                .id(ReportId::new(id))
                .dc(DcId::new(1))
                .knowledge_source(KnowledgeSourceId::new(11))
                .severity(severity)
                .timestamp(SimTime::from_secs(id as f64))
                .explanation(expl)
                .recommendation(rec)
                .prognostic(PrognosticVector::from_months(&pairs).unwrap())
                .build()
            },
        )
}

/// A well-formed batch frame: 0..6 entries with strictly increasing
/// sequence numbers (gaps allowed, as after dropped frames), under an
/// arbitrary restart epoch.
fn arb_batch() -> impl Strategy<Value = NetMessage> {
    (
        0u64..100,
        0u64..4,
        proptest::collection::vec((1u64..50, 0u64..=u64::MAX, arb_report()), 0..6),
    )
        .prop_map(|(start, epoch, items)| {
            let mut seq = start;
            let entries = items
                .into_iter()
                .map(|(gap, trace_raw, report)| {
                    seq += gap;
                    BatchEntry {
                        seq,
                        trace: TraceContext::for_enqueued(TraceId(trace_raw)),
                        report,
                    }
                })
                .collect();
            NetMessage::ReportBatch {
                dc: DcId::new(2),
                epoch,
                entries,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_report_survives_the_wire(report in arb_report()) {
        let frame = encode_message(&NetMessage::Report(report.clone())).unwrap();
        let back = decode_message(frame).unwrap();
        prop_assert_eq!(back, NetMessage::Report(report));
    }

    #[test]
    fn any_report_survives_oosm_persistence(report in arb_report()) {
        let mut oosm = Oosm::new();
        let obj = oosm.post_report(&report).unwrap();
        let back = oosm.report_payload(obj).unwrap();
        prop_assert_eq!(back, report);
    }

    #[test]
    fn any_report_flows_into_fusion(report in arb_report()) {
        let mut pdme = PdmeExecutive::new();
        pdme.register_machine(report.machine, "machine under test");
        let summary = pdme.ingest(&[NetMessage::Report(report.clone())], SimTime::ZERO).unwrap();
        prop_assert_eq!(summary.fused, 1);
        let fused = pdme
            .fusion()
            .diagnostic()
            .belief(report.machine, report.condition);
        // Fused singleton belief equals the (capped) report belief for a
        // first report.
        prop_assert!((fused - report.belief.value().min(0.999)).abs() < 1e-9);
    }

    #[test]
    fn any_batch_survives_the_wire(batch in arb_batch()) {
        // Includes the empty batch ("nothing this step").
        let frame = encode_message(&batch).unwrap();
        let back = decode_message(frame).unwrap();
        prop_assert_eq!(back, batch);
    }

    #[test]
    fn duplicate_or_reordered_batch_seqs_are_rejected(batch in arb_batch()) {
        let NetMessage::ReportBatch { dc, epoch, entries } = batch else { unreachable!() };
        if !entries.is_empty() {
            // Duplicate the last entry's sequence number.
            let mut dup = entries.clone();
            dup.push(dup.last().unwrap().clone());
            prop_assert!(
                encode_message(&NetMessage::ReportBatch { dc, epoch, entries: dup }).is_err()
            );
        }
        // Reverse a multi-entry batch: strictly decreasing, rejected.
        if entries.len() >= 2 {
            let mut rev = entries;
            rev.reverse();
            prop_assert!(
                encode_message(&NetMessage::ReportBatch { dc, epoch, entries: rev }).is_err()
            );
        }
    }

    #[test]
    fn any_trace_context_survives_the_wire(
        seq in 1u64..1000,
        trace_raw in 0u64..=u64::MAX,
        parent_raw in 0u64..=u64::MAX,
        report in arb_report(),
    ) {
        // Arbitrary (not just derivable) trace/parent ids roundtrip:
        // the codec carries the context opaquely.
        let batch = NetMessage::ReportBatch {
            dc: DcId::new(3),
            epoch: 1,
            entries: vec![BatchEntry {
                seq,
                trace: TraceContext { trace: TraceId(trace_raw), parent: SpanId(parent_raw) },
                report,
            }],
        };
        let back = decode_message(encode_message(&batch).unwrap()).unwrap();
        prop_assert_eq!(back, batch);
    }

    #[test]
    fn truncated_frames_are_rejected(batch in arb_batch(), cut_fraction in 0.0..1.0f64) {
        let frame = encode_message(&batch).unwrap();
        // Any strict prefix must fail to decode — whether the cut lands
        // in the header, the length field, or mid-payload.
        let cut = ((frame.len() as f64) * cut_fraction) as usize;
        prop_assert!(cut < frame.len());
        prop_assert!(decode_message(frame.slice(0..cut)).is_err());
    }

    #[test]
    fn any_batch_flows_into_fusion(batch in arb_batch()) {
        let NetMessage::ReportBatch { ref entries, .. } = batch else { unreachable!() };
        let mut pdme = PdmeExecutive::new();
        for e in entries {
            pdme.register_machine(e.report.machine, "machine under test");
        }
        let summary = pdme
            .ingest(std::slice::from_ref(&batch), SimTime::from_secs(5000.0))
            .unwrap();
        prop_assert_eq!(summary.fused, entries.len());
        prop_assert_eq!(pdme.reports_received(), entries.len());
        // The ack watermark covers the whole batch, even an empty one.
        if let NetMessage::ReportBatch { dc, epoch, ref entries } = batch {
            if let Some(last) = entries.last() {
                prop_assert_eq!(summary.acks.len(), 1);
                let ack = summary.acks[0];
                prop_assert_eq!((ack.dc, ack.epoch, ack.last_seq), (dc, epoch, last.seq));
            } else {
                prop_assert!(summary.acks.is_empty());
            }
        }
    }
}

#[test]
fn max_size_batch_roundtrips_and_oversize_is_rejected() {
    let entry = |seq: u64| BatchEntry {
        seq,
        trace: TraceContext::for_enqueued(TraceId(seq ^ 0xABCD)),
        report: ConditionReport::builder(
            MachineId::new(1),
            MachineCondition::from_index(0).unwrap(),
            Belief::new(0.5),
        )
        .id(ReportId::new(seq))
        .dc(DcId::new(1))
        .timestamp(SimTime::ZERO)
        .build(),
    };
    let full = NetMessage::ReportBatch {
        dc: DcId::new(1),
        epoch: 0,
        entries: (1..=MAX_BATCH as u64).map(entry).collect(),
    };
    let back = decode_message(encode_message(&full).unwrap()).unwrap();
    assert_eq!(back, full);
    let over = NetMessage::ReportBatch {
        dc: DcId::new(1),
        epoch: 0,
        entries: (1..=MAX_BATCH as u64 + 1).map(entry).collect(),
    };
    assert!(encode_message(&over).is_err());
}

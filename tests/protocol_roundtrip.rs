//! §7: the failure-prediction reporting protocol end to end — every
//! field of a report must survive DC → frame codec → network → PDME →
//! OOSM persistence → fusion, bit for bit.

use mpros::core::{
    Belief, ConditionReport, DcId, KnowledgeSourceId, MachineCondition, MachineId,
    PrognosticVector, ReportId, SimTime,
};
use mpros::network::{decode_message, encode_message, NetMessage};
use mpros::oosm::Oosm;
use mpros::pdme::PdmeExecutive;
use proptest::prelude::*;

fn arb_report() -> impl Strategy<Value = ConditionReport> {
    (
        0u64..1000,
        0u64..50,
        0usize..12,
        0.0..=1.0f64,
        0.0..=1.0f64,
        proptest::collection::vec((0.5..24.0f64, 0.01..=1.0f64), 0..5),
        ".{0,40}",
        ".{0,40}",
    )
        .prop_map(
            |(id, machine, cond_idx, belief, severity, prog_raw, expl, rec)| {
                let mut sorted = prog_raw;
                sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
                sorted.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-3);
                let mut acc: f64 = 0.0;
                let pairs: Vec<(f64, f64)> = sorted
                    .into_iter()
                    .map(|(m, p)| {
                        acc = acc.max(p);
                        (m, acc)
                    })
                    .collect();
                ConditionReport::builder(
                    MachineId::new(machine),
                    MachineCondition::from_index(cond_idx).unwrap(),
                    Belief::new(belief),
                )
                .id(ReportId::new(id))
                .dc(DcId::new(1))
                .knowledge_source(KnowledgeSourceId::new(11))
                .severity(severity)
                .timestamp(SimTime::from_secs(id as f64))
                .explanation(expl)
                .recommendation(rec)
                .prognostic(PrognosticVector::from_months(&pairs).unwrap())
                .build()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_report_survives_the_wire(report in arb_report()) {
        let frame = encode_message(&NetMessage::Report(report.clone())).unwrap();
        let back = decode_message(frame).unwrap();
        prop_assert_eq!(back, NetMessage::Report(report));
    }

    #[test]
    fn any_report_survives_oosm_persistence(report in arb_report()) {
        let mut oosm = Oosm::new();
        let obj = oosm.post_report(&report).unwrap();
        let back = oosm.report_payload(obj).unwrap();
        prop_assert_eq!(back, report);
    }

    #[test]
    fn any_report_flows_into_fusion(report in arb_report()) {
        let mut pdme = PdmeExecutive::new();
        pdme.register_machine(report.machine, "machine under test");
        pdme.handle_message(&NetMessage::Report(report.clone()), SimTime::ZERO).unwrap();
        prop_assert_eq!(pdme.process_events().unwrap(), 1);
        let fused = pdme
            .fusion()
            .diagnostic()
            .belief(report.machine, report.condition);
        // Fused singleton belief equals the (capped) report belief for a
        // first report.
        prop_assert!((fused - report.belief.value().min(0.999)).abs() < 1e-9);
    }
}

//! E8 (§5.3): logical failure groups through the full stack — belief
//! sharing within a group, independence across groups, multiple
//! concurrent failures.

use mpros::chiller::fault::{FaultProfile, FaultSeed};
use mpros::core::{FailureGroup, MachineCondition, MachineId, SimDuration, SimTime};
use mpros::sim::{ShipboardSim, ShipboardSimConfig};

fn run_with_faults(faults: &[(MachineCondition, f64)]) -> ShipboardSim {
    let mut sim = ShipboardSim::new(
        ShipboardSimConfig::new()
            .with_dc_count(1)
            .with_seed(5)
            .with_survey_period(SimDuration::from_secs(30.0)),
    )
    .unwrap();
    for &(condition, minutes) in faults {
        sim.seed_fault(
            0,
            FaultSeed {
                condition,
                onset: SimTime::ZERO,
                time_to_failure: SimDuration::from_minutes(minutes),
                profile: FaultProfile::EarlyOnset,
            },
        );
    }
    sim.run_for(
        SimDuration::from_minutes(10.0),
        SimDuration::from_secs(0.25),
    )
    .unwrap();
    sim
}

#[test]
fn concurrent_faults_in_different_groups_both_surface() {
    // A bearing defect (Bearings group) and condenser fouling (Process
    // group) at once: §5.3's whole point is that neither steals the
    // other's probability mass.
    let sim = run_with_faults(&[
        (MachineCondition::MotorBearingDefect, 9.0),
        (MachineCondition::CondenserFouling, 9.0),
    ]);
    let diag = sim.pdme().fusion().diagnostic();
    let m = MachineId::new(1);
    let bearing = diag.belief(m, MachineCondition::MotorBearingDefect);
    let fouling = diag.belief(m, MachineCondition::CondenserFouling);
    assert!(bearing > 0.6, "bearing belief {bearing}");
    assert!(fouling > 0.6, "fouling belief {fouling}");
    // Both frames exist and are independent.
    let bearing_frame = diag.diagnosis(m, FailureGroup::Bearings).unwrap();
    let process_frame = diag.diagnosis(m, FailureGroup::Process).unwrap();
    assert_eq!(bearing_frame.accumulated_conflict, 0.0);
    // Conflict inside the process frame is possible (fuzzy may hedge),
    // but the two frames never exchanged mass: their beliefs both stay
    // high simultaneously — checked above.
    assert!(
        process_frame.unknown < 0.4,
        "process unknown {}",
        process_frame.unknown
    );
}

#[test]
fn within_group_unknown_shrinks_as_evidence_accumulates() {
    let sim = run_with_faults(&[(MachineCondition::MotorBearingDefect, 9.0)]);
    let diag = sim
        .pdme()
        .fusion()
        .diagnostic()
        .diagnosis(MachineId::new(1), FailureGroup::Bearings)
        .expect("bearing frame exists");
    assert!(
        diag.unknown < 0.3,
        "repeated evidence should shrink unknown: {}",
        diag.unknown
    );
    // The companion condition in the group has (almost) no belief.
    let companion = diag
        .beliefs
        .iter()
        .find(|(c, _)| *c == MachineCondition::CompressorBearingDefect)
        .unwrap();
    assert!(companion.1 < 0.1, "companion belief {}", companion.1);
}

#[test]
fn untouched_groups_stay_empty() {
    let sim = run_with_faults(&[(MachineCondition::MotorBearingDefect, 9.0)]);
    let diag = sim.pdme().fusion().diagnostic();
    assert!(diag
        .diagnosis(MachineId::new(1), FailureGroup::Electrical)
        .is_none());
    assert!(diag
        .diagnosis(MachineId::new(1), FailureGroup::Structural)
        .is_none());
}

//! Gateway and fleet wire protocol: every request and response variant
//! of both tag families must survive the frame codec bit for bit, and
//! malformed input — truncated frames, corrupted headers, frames from a
//! sibling family's tag range, frames stamped with a stale wire version —
//! must be rejected, never half-parsed. Mirrors
//! `tests/protocol_roundtrip.rs` for the serving plane.

use mpros::core::PrognosticVector;
use mpros::fleet::{
    decode_fleet_request, decode_fleet_response, encode_fleet_request, encode_fleet_response,
    FleetMachine, FleetPrognostic, FleetRequest, FleetResponse, FleetRollup, FleetSloVerdict,
    ShipDelta, ShipInfo,
};
use mpros::gateway::{
    decode_request, decode_response, encode_request, encode_response, DeltaKind, GatewayRequest,
    GatewayResponse, StatusDelta,
};
use mpros::network::decode_message;
use mpros::pdme::icas::{IcasCondition, IcasDc, IcasMachine, IcasSnapshot, ICAS_SCHEMA_VERSION};
use mpros::telemetry::{
    CounterDelta, CounterSnapshot, EventSnapshot, GaugeSample, GaugeSnapshot, HistogramSnapshot,
    HopRecord, Incident, IncidentTrigger, SloCheck, SloVerdict, StepRecord,
    INCIDENT_SCHEMA_VERSION,
};
use proptest::prelude::*;

fn arb_request() -> impl Strategy<Value = GatewayRequest> {
    prop_oneof![
        (0u64..100).prop_map(|machine| GatewayRequest::GetMachineStatus { machine }),
        Just(GatewayRequest::GetIcas),
        (0u64..100, 0usize..12).prop_map(|(machine, condition_id)| {
            GatewayRequest::GetPrognosticVector {
                machine,
                condition_id,
            }
        }),
        Just(GatewayRequest::GetSloVerdict),
        Just(GatewayRequest::GetCounters),
        (0u64..=u64::MAX).prop_map(|session| GatewayRequest::Subscribe { session }),
        Just(GatewayRequest::GetMetrics),
        (0u64..=u64::MAX, 0u32..10_000)
            .prop_map(|(cursor, max)| GatewayRequest::StreamJournal { cursor, max }),
        Just(GatewayRequest::ListIncidents),
        (0u64..=u64::MAX).prop_map(|id| GatewayRequest::GetIncident { id }),
        (0u64..=u64::MAX).prop_map(|trace| GatewayRequest::GetTrace { trace }),
    ]
}

fn arb_prognostic() -> impl Strategy<Value = PrognosticVector> {
    proptest::collection::vec((0.5..24.0f64, 0.01..=1.0f64), 0..5).prop_map(|raw| {
        let mut sorted = raw;
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        sorted.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-3);
        let mut acc: f64 = 0.0;
        let pairs: Vec<(f64, f64)> = sorted
            .into_iter()
            .map(|(m, p)| {
                acc = acc.max(p);
                (m, acc)
            })
            .collect();
        PrognosticVector::from_months(&pairs).unwrap()
    })
}

fn arb_machine() -> impl Strategy<Value = IcasMachine> {
    (
        0u64..50,
        ".{0,20}",
        0.0..=1.0f64,
        prop_oneof![Just("ok"), Just("degraded")],
        0usize..1000,
        proptest::collection::vec(
            (
                0usize..12,
                ".{0,20}",
                ".{0,10}",
                0.0..=1.0f64,
                0.0..=1.0f64,
                proptest::option::of(1.0..1e6f64),
            ),
            0..3,
        ),
    )
        .prop_map(
            |(machine_id, name, health, status, report_count, conds)| IcasMachine {
                machine_id,
                name,
                health,
                status: status.to_string(),
                report_count,
                conditions: conds
                    .into_iter()
                    .map(
                        |(condition_id, description, group, belief, severity, median_ttf_secs)| {
                            IcasCondition {
                                condition_id,
                                description,
                                group,
                                belief,
                                severity,
                                median_ttf_secs,
                            }
                        },
                    )
                    .collect(),
            },
        )
}

fn arb_delta() -> impl Strategy<Value = StatusDelta> {
    (
        0u64..10_000,
        0.0..1e6f64,
        0u64..50,
        prop_oneof![Just(DeltaKind::Degraded), Just(DeltaKind::Recovered)],
    )
        .prop_map(
            |(snapshot_version, at_secs, machine_id, kind)| StatusDelta {
                snapshot_version,
                at_secs,
                machine_id,
                kind,
            },
        )
}

fn arb_counter() -> impl Strategy<Value = CounterSnapshot> {
    (".{0,10}", ".{0,10}", 0u64..=u64::MAX).prop_map(|(component, name, value)| CounterSnapshot {
        component,
        name,
        value,
    })
}

fn arb_gauge() -> impl Strategy<Value = GaugeSnapshot> {
    (".{0,10}", ".{0,10}", -1e6..1e6f64).prop_map(|(component, name, value)| GaugeSnapshot {
        component,
        name,
        value,
    })
}

fn arb_histogram() -> impl Strategy<Value = HistogramSnapshot> {
    (
        ".{0,10}",
        ".{0,10}",
        0u64..100_000,
        proptest::option::of(0.0..1e3f64),
        proptest::option::of(0.0..1e3f64),
        proptest::option::of(0.0..1e3f64),
    )
        .prop_map(
            |(component, name, count, min, max, p50)| HistogramSnapshot {
                component,
                name,
                count,
                min,
                max,
                mean: p50,
                p50,
                p95: max,
                p99: max,
            },
        )
}

fn arb_event() -> impl Strategy<Value = EventSnapshot> {
    (0u64..100_000, 0.0..1e6f64, ".{0,10}", ".{0,10}", ".{0,30}").prop_map(
        |(seq, at_secs, component, kind, detail)| EventSnapshot {
            seq,
            at_secs,
            component,
            kind,
            detail,
        },
    )
}

fn arb_hop() -> impl Strategy<Value = HopRecord> {
    (
        1u64..=u64::MAX,
        1u64..=u64::MAX,
        proptest::option::of(1u64..=u64::MAX),
        prop_oneof![Just("dc_emit"), Just("send"), Just("deliver")],
        0u32..5,
        prop_oneof![Just("dc1"), Just("net"), Just("pdme")],
        (0.0..1e6f64, 0.0..100.0f64),
        ".{0,20}",
    )
        .prop_map(
            |(trace, span, parent, kind, attempt, track, (start, len), detail)| HopRecord {
                trace,
                span,
                parent,
                kind: kind.to_string(),
                attempt,
                track: track.to_string(),
                sim_start: start,
                sim_end: start + len,
                detail,
            },
        )
}

fn arb_trigger() -> impl Strategy<Value = IncidentTrigger> {
    prop_oneof![
        Just(IncidentTrigger::SloViolation),
        (1u64..100).prop_map(|dc| IncidentTrigger::DcCrashed { dc }),
        Just(IncidentTrigger::PdmeCrashRestore),
        ".{0,12}".prop_map(|label| IncidentTrigger::Manual { label }),
    ]
}

fn arb_step_record() -> impl Strategy<Value = StepRecord> {
    (
        0u64..100_000,
        0.0..1e6f64,
        proptest::collection::vec(arb_event(), 0..3),
        proptest::collection::vec(arb_hop(), 0..3),
        proptest::collection::vec(
            (".{0,10}", ".{0,10}", 0u64..1000, 0u64..100_000).prop_map(
                |(component, name, delta, total)| CounterDelta {
                    component,
                    name,
                    delta,
                    total,
                },
            ),
            0..3,
        ),
        proptest::collection::vec(
            (".{0,10}", ".{0,10}", -1e3..1e3f64).prop_map(|(component, name, value)| GaugeSample {
                component,
                name,
                value,
            }),
            0..3,
        ),
    )
        .prop_map(
            |(step, at_secs, events, hops, counter_deltas, gauges)| StepRecord {
                step,
                at_secs,
                events,
                hops,
                counter_deltas,
                gauges,
                slo: None,
            },
        )
}

fn arb_incident() -> impl Strategy<Value = Incident> {
    (
        0u64..=u64::MAX,
        arb_trigger(),
        0u64..100_000,
        0.0..1e6f64,
        0usize..8,
        0usize..4,
        proptest::collection::vec(arb_step_record(), 0..4),
    )
        .prop_map(
            |(id, trigger, step, at_secs, pre_steps, post_steps, records)| Incident {
                schema_version: INCIDENT_SCHEMA_VERSION,
                id,
                trigger,
                step,
                at_secs,
                pre_steps,
                post_steps,
                records,
            },
        )
}

fn arb_response() -> impl Strategy<Value = GatewayResponse> {
    let version = 0u64..10_000;
    prop_oneof![
        (version.clone(), arb_machine()).prop_map(|(snapshot_version, machine)| {
            GatewayResponse::MachineStatus {
                snapshot_version,
                machine,
            }
        }),
        (
            version.clone(),
            0.0..1e6f64,
            proptest::collection::vec(arb_machine(), 0..4),
            proptest::collection::vec((1u64..9, prop_oneof![Just(true), Just(false)]), 0..4),
        )
            .prop_map(|(snapshot_version, at_secs, machines, dcs)| {
                GatewayResponse::Icas {
                    snapshot_version,
                    icas: IcasSnapshot {
                        schema_version: ICAS_SCHEMA_VERSION,
                        at_secs,
                        machines,
                        data_concentrators: dcs
                            .into_iter()
                            .map(|(dc_id, alive)| IcasDc { dc_id, alive })
                            .collect(),
                    },
                }
            }),
        (version.clone(), 0u64..50, 0usize..12, arb_prognostic()).prop_map(
            |(snapshot_version, machine, condition_id, vector)| {
                GatewayResponse::PrognosticVector {
                    snapshot_version,
                    machine,
                    condition_id,
                    vector,
                }
            }
        ),
        (
            version.clone(),
            proptest::option::of((
                0.0..1e6f64,
                proptest::collection::vec(
                    (
                        ".{0,20}",
                        prop_oneof![Just(true), Just(false)],
                        0.0..1e6f64,
                        0.0..1e6f64,
                    ),
                    0..4
                ),
            )),
        )
            .prop_map(|(snapshot_version, verdict)| {
                GatewayResponse::SloVerdict {
                    snapshot_version,
                    verdict: verdict.map(|(at_secs, checks)| {
                        let checks: Vec<SloCheck> = checks
                            .into_iter()
                            .map(|(rule, pass, value, limit)| SloCheck {
                                rule,
                                pass,
                                value,
                                limit,
                            })
                            .collect();
                        SloVerdict {
                            at_secs,
                            pass: checks.iter().all(|c| c.pass),
                            checks,
                        }
                    }),
                }
            }),
        (
            version.clone(),
            proptest::collection::vec((".{0,10}", ".{0,10}", 0u64..=u64::MAX), 0..4),
        )
            .prop_map(|(snapshot_version, counters)| {
                GatewayResponse::Counters {
                    snapshot_version,
                    counters: counters
                        .into_iter()
                        .map(|(component, name, value)| CounterSnapshot {
                            component,
                            name,
                            value,
                        })
                        .collect(),
                }
            }),
        (
            version.clone(),
            0u64..=u64::MAX,
            0u64..1000,
            proptest::collection::vec(arb_delta(), 0..5),
        )
            .prop_map(|(snapshot_version, session, dropped, deltas)| {
                GatewayResponse::Deltas {
                    snapshot_version,
                    session,
                    dropped,
                    deltas,
                }
            }),
        (version.clone(), ".{0,40}").prop_map(|(snapshot_version, detail)| {
            GatewayResponse::NotFound {
                snapshot_version,
                detail,
            }
        }),
        (
            version.clone(),
            0.0..1e6f64,
            proptest::collection::vec(arb_counter(), 0..3),
            proptest::collection::vec(arb_gauge(), 0..3),
            proptest::collection::vec(arb_histogram(), 0..3),
            ".{0,60}",
        )
            .prop_map(
                |(snapshot_version, at_secs, counters, gauges, histograms, exposition)| {
                    GatewayResponse::Metrics {
                        snapshot_version,
                        at_secs,
                        counters,
                        gauges,
                        histograms,
                        exposition,
                    }
                },
            ),
        (
            version.clone(),
            0u64..=u64::MAX,
            0u64..1000,
            proptest::collection::vec(arb_event(), 0..4),
        )
            .prop_map(|(snapshot_version, next_cursor, dropped, events)| {
                GatewayResponse::Journal {
                    snapshot_version,
                    next_cursor,
                    dropped,
                    events,
                }
            }),
        (
            version.clone(),
            proptest::collection::vec(
                (arb_incident()).prop_map(|incident| incident.summary()),
                0..4,
            ),
        )
            .prop_map(|(snapshot_version, incidents)| {
                GatewayResponse::Incidents {
                    snapshot_version,
                    incidents,
                }
            }),
        (version.clone(), arb_incident()).prop_map(|(snapshot_version, incident)| {
            GatewayResponse::Incident {
                snapshot_version,
                incident,
            }
        }),
        (
            version,
            1u64..=u64::MAX,
            proptest::collection::vec(arb_hop(), 0..4),
        )
            .prop_map(|(snapshot_version, trace, hops)| GatewayResponse::Trace {
                snapshot_version,
                trace,
                hops,
            }),
    ]
}

fn arb_fleet_request() -> impl Strategy<Value = FleetRequest> {
    prop_oneof![
        Just(FleetRequest::ListShips),
        Just(FleetRequest::GetFleetRollup),
        (0u64..16).prop_map(|ship| FleetRequest::GetShipIcas { ship }),
        (0u64..=u64::MAX).prop_map(|session| FleetRequest::Subscribe { session }),
        (0u64..16, arb_request())
            .prop_map(|(ship, request)| FleetRequest::ForShip { ship, request }),
    ]
}

fn arb_ship_info() -> impl Strategy<Value = ShipInfo> {
    (
        0u64..16,
        prop_oneof![Just(true), Just(false)],
        0u64..10_000,
        0.0..1e6f64,
        0usize..32,
        proptest::option::of(prop_oneof![Just(true), Just(false)]),
    )
        .prop_map(
            |(ship_id, available, snapshot_version, at_secs, machines, slo_pass)| ShipInfo {
                ship_id,
                available,
                snapshot_version,
                at_secs,
                machines,
                slo_pass,
            },
        )
}

fn arb_ship_delta() -> impl Strategy<Value = ShipDelta> {
    (0u64..16, 0u64..10_000, arb_delta()).prop_map(|(ship_id, fleet_version, delta)| ShipDelta {
        ship_id,
        fleet_version,
        delta,
    })
}

fn arb_fleet_rollup() -> impl Strategy<Value = FleetRollup> {
    (
        1usize..16,
        proptest::collection::vec(0u64..16, 0..4),
        proptest::collection::vec(0u64..16, 0..4),
        proptest::collection::vec(
            (
                0u64..50,
                ".{0,20}",
                proptest::collection::vec(0u64..16, 0..4),
                prop_oneof![Just("ok"), Just("degraded")],
                0.0..=1.0f64,
            ),
            0..4,
        ),
        proptest::collection::vec(
            (
                0u64..50,
                0usize..12,
                proptest::collection::vec(0u64..16, 0..4),
                arb_prognostic(),
            ),
            0..3,
        ),
        proptest::collection::vec(arb_counter(), 0..4),
    )
        .prop_map(
            |(ship_count, available_ships, unavailable_ships, machines, prognostics, counters)| {
                FleetRollup {
                    ship_count,
                    available_ships,
                    unavailable_ships: unavailable_ships.clone(),
                    machines: machines
                        .into_iter()
                        .map(|(machine_id, name, ships, status, health)| FleetMachine {
                            machine_id,
                            name,
                            ships: ships.clone(),
                            status: status.to_string(),
                            health,
                            degraded_ships: if status == "degraded" {
                                ships
                            } else {
                                Vec::new()
                            },
                        })
                        .collect(),
                    prognostics: prognostics
                        .into_iter()
                        .map(
                            |(machine_id, condition_id, ships, vector)| FleetPrognostic {
                                machine_id,
                                condition_id,
                                ships,
                                vector,
                            },
                        )
                        .collect(),
                    slo: FleetSloVerdict {
                        pass: true,
                        failing_ships: Vec::new(),
                        unavailable_ships,
                    },
                    counters,
                }
            },
        )
}

fn arb_fleet_response() -> impl Strategy<Value = FleetResponse> {
    let version = 0u64..10_000;
    prop_oneof![
        (
            version.clone(),
            proptest::collection::vec(arb_ship_info(), 0..5)
        )
            .prop_map(|(fleet_version, ships)| FleetResponse::Ships {
                fleet_version,
                ships,
            }),
        (version.clone(), 0.0..1e6f64, arb_fleet_rollup()).prop_map(
            |(fleet_version, at_secs, rollup)| FleetResponse::FleetRollup {
                fleet_version,
                at_secs,
                rollup,
            }
        ),
        (
            version.clone(),
            0u64..16,
            0u64..10_000,
            0.0..1e6f64,
            proptest::collection::vec(arb_machine(), 0..3),
        )
            .prop_map(
                |(fleet_version, ship, snapshot_version, at_secs, machines)| {
                    FleetResponse::ShipIcas {
                        fleet_version,
                        ship,
                        snapshot_version,
                        icas: IcasSnapshot {
                            schema_version: ICAS_SCHEMA_VERSION,
                            at_secs,
                            machines,
                            data_concentrators: Vec::new(),
                        },
                    }
                }
            ),
        (
            version.clone(),
            0u64..=u64::MAX,
            0u64..1000,
            proptest::collection::vec(arb_ship_delta(), 0..5),
        )
            .prop_map(|(fleet_version, session, dropped, deltas)| {
                FleetResponse::FleetDeltas {
                    fleet_version,
                    session,
                    dropped,
                    deltas,
                }
            }),
        (
            version.clone(),
            0u64..16,
            prop_oneof![Just("shard_unavailable"), Just("unknown_ship")],
        )
            .prop_map(
                |(fleet_version, ship, detail)| FleetResponse::ShipUnavailable {
                    fleet_version,
                    ship,
                    detail: detail.to_string(),
                }
            ),
        (version, 0u64..16, arb_response()).prop_map(|(fleet_version, ship, response)| {
            FleetResponse::ShipReply {
                fleet_version,
                ship,
                response,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_request_survives_the_wire(req in arb_request()) {
        let frame = encode_request(&req).unwrap();
        prop_assert_eq!(decode_request(frame).unwrap(), req);
    }

    #[test]
    fn any_response_survives_the_wire(resp in arb_response()) {
        let frame = encode_response(&resp).unwrap();
        prop_assert_eq!(decode_response(frame).unwrap(), resp);
    }

    #[test]
    fn truncated_request_frames_are_rejected(req in arb_request(), cut_fraction in 0.0..1.0f64) {
        let frame = encode_request(&req).unwrap();
        let cut = ((frame.len() as f64) * cut_fraction) as usize;
        prop_assert!(cut < frame.len());
        prop_assert!(decode_request(frame.slice(0..cut)).is_err());
    }

    #[test]
    fn truncated_response_frames_are_rejected(resp in arb_response(), cut_fraction in 0.0..1.0f64) {
        let frame = encode_response(&resp).unwrap();
        let cut = ((frame.len() as f64) * cut_fraction) as usize;
        prop_assert!(cut < frame.len());
        prop_assert!(decode_response(frame.slice(0..cut)).is_err());
    }

    #[test]
    fn corrupted_headers_are_rejected(
        req in arb_request(),
        byte in 0usize..8,
        flip in 1u8..=255,
    ) {
        // Any change to any header byte — magic, version, type tag, or
        // the length field — must fail the decode. A flipped tag that
        // still lands in a valid range is caught by the tag-vs-body
        // cross-check; a flipped length by the exact-length check.
        let frame = encode_request(&req).unwrap();
        let mut bytes = frame.to_vec();
        bytes[byte] ^= flip;
        prop_assert!(decode_request(bytes::Bytes::from(bytes)).is_err());
    }

    #[test]
    fn wire_v4_frames_are_rejected_by_version_byte(req in arb_request(), resp in arb_response()) {
        // The observability tags (GetMetrics and friends) only exist in
        // wire v5; a peer still speaking v4 must be refused outright on
        // the version byte (index 2, after the 2-byte magic), never
        // best-effort parsed.
        let mut bytes = encode_request(&req).unwrap().to_vec();
        bytes[2] = 4;
        prop_assert!(decode_request(bytes::Bytes::from(bytes)).is_err());
        let mut bytes = encode_response(&resp).unwrap().to_vec();
        bytes[2] = 4;
        prop_assert!(decode_response(bytes::Bytes::from(bytes)).is_err());
    }

    #[test]
    fn ship_network_stack_rejects_gateway_frames(req in arb_request(), resp in arb_response()) {
        // A gateway frame misrouted into the DC/PDME transport decoder
        // must be refused on the tag range, not mis-parsed as a report.
        prop_assert!(decode_message(encode_request(&req).unwrap()).is_err());
        prop_assert!(decode_message(encode_response(&resp).unwrap()).is_err());
    }

    #[test]
    fn any_fleet_request_survives_the_wire(req in arb_fleet_request()) {
        let frame = encode_fleet_request(&req).unwrap();
        prop_assert_eq!(decode_fleet_request(frame).unwrap(), req);
    }

    #[test]
    fn any_fleet_response_survives_the_wire(resp in arb_fleet_response()) {
        let frame = encode_fleet_response(&resp).unwrap();
        prop_assert_eq!(decode_fleet_response(frame).unwrap(), resp);
    }

    #[test]
    fn truncated_fleet_request_frames_are_rejected(
        req in arb_fleet_request(),
        cut_fraction in 0.0..1.0f64,
    ) {
        let frame = encode_fleet_request(&req).unwrap();
        let cut = ((frame.len() as f64) * cut_fraction) as usize;
        prop_assert!(cut < frame.len());
        prop_assert!(decode_fleet_request(frame.slice(0..cut)).is_err());
    }

    #[test]
    fn truncated_fleet_response_frames_are_rejected(
        resp in arb_fleet_response(),
        cut_fraction in 0.0..1.0f64,
    ) {
        let frame = encode_fleet_response(&resp).unwrap();
        let cut = ((frame.len() as f64) * cut_fraction) as usize;
        prop_assert!(cut < frame.len());
        prop_assert!(decode_fleet_response(frame.slice(0..cut)).is_err());
    }

    #[test]
    fn corrupted_fleet_headers_are_rejected(
        req in arb_fleet_request(),
        resp in arb_fleet_response(),
        byte in 0usize..8,
        flip in 1u8..=255,
    ) {
        // Same discipline as the single-ship family: any change to any
        // header byte — magic, version, type tag, or the length field —
        // must fail the decode.
        let mut bytes = encode_fleet_request(&req).unwrap().to_vec();
        bytes[byte] ^= flip;
        prop_assert!(decode_fleet_request(bytes::Bytes::from(bytes)).is_err());
        let mut bytes = encode_fleet_response(&resp).unwrap().to_vec();
        bytes[byte] ^= flip;
        prop_assert!(decode_fleet_response(bytes::Bytes::from(bytes)).is_err());
    }

    #[test]
    fn wire_v5_frames_are_rejected_by_version_byte(
        req in arb_fleet_request(),
        resp in arb_fleet_response(),
    ) {
        // The fleet tags (ListShips and friends) only exist in wire v6;
        // a peer still speaking v5 must be refused outright on the
        // version byte (index 2, after the 2-byte magic), never
        // best-effort parsed — and the single-ship decoders moved to v6
        // with the same cut.
        let mut bytes = encode_fleet_request(&req).unwrap().to_vec();
        bytes[2] = 5;
        prop_assert!(decode_fleet_request(bytes::Bytes::from(bytes)).is_err());
        let mut bytes = encode_fleet_response(&resp).unwrap().to_vec();
        bytes[2] = 5;
        prop_assert!(decode_fleet_response(bytes::Bytes::from(bytes)).is_err());
        let mut bytes = encode_request(&GatewayRequest::GetIcas).unwrap().to_vec();
        bytes[2] = 5;
        prop_assert!(decode_request(bytes::Bytes::from(bytes)).is_err());
    }

    #[test]
    fn tag_families_reject_each_other(
        req in arb_request(),
        resp in arb_response(),
        freq in arb_fleet_request(),
        fresp in arb_fleet_response(),
    ) {
        // Four tag families share one frame header; each family's
        // decoder must refuse the other three ranges so a misrouted
        // frame fails loudly instead of half-parsing.
        for frame in [encode_fleet_request(&freq).unwrap(), encode_fleet_response(&fresp).unwrap()] {
            prop_assert!(decode_request(frame.clone()).is_err());
            prop_assert!(decode_response(frame.clone()).is_err());
            prop_assert!(decode_message(frame).is_err());
        }
        for frame in [encode_request(&req).unwrap(), encode_response(&resp).unwrap()] {
            prop_assert!(decode_fleet_request(frame.clone()).is_err());
            prop_assert!(decode_fleet_response(frame).is_err());
        }
    }
}

//! Gateway wire protocol: every request and response variant must
//! survive the frame codec bit for bit, and malformed input — truncated
//! frames, corrupted headers, frames from the ship network's tag range —
//! must be rejected, never half-parsed. Mirrors
//! `tests/protocol_roundtrip.rs` for the serving plane.

use mpros::core::PrognosticVector;
use mpros::gateway::{
    decode_request, decode_response, encode_request, encode_response, DeltaKind, GatewayRequest,
    GatewayResponse, StatusDelta,
};
use mpros::network::decode_message;
use mpros::pdme::icas::{IcasCondition, IcasDc, IcasMachine, IcasSnapshot, ICAS_SCHEMA_VERSION};
use mpros::telemetry::{CounterSnapshot, SloCheck, SloVerdict};
use proptest::prelude::*;

fn arb_request() -> impl Strategy<Value = GatewayRequest> {
    prop_oneof![
        (0u64..100).prop_map(|machine| GatewayRequest::GetMachineStatus { machine }),
        Just(GatewayRequest::GetIcas),
        (0u64..100, 0usize..12).prop_map(|(machine, condition_id)| {
            GatewayRequest::GetPrognosticVector {
                machine,
                condition_id,
            }
        }),
        Just(GatewayRequest::GetSloVerdict),
        Just(GatewayRequest::GetCounters),
        (0u64..=u64::MAX).prop_map(|session| GatewayRequest::Subscribe { session }),
    ]
}

fn arb_prognostic() -> impl Strategy<Value = PrognosticVector> {
    proptest::collection::vec((0.5..24.0f64, 0.01..=1.0f64), 0..5).prop_map(|raw| {
        let mut sorted = raw;
        sorted.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        sorted.dedup_by(|a, b| (a.0 - b.0).abs() < 1e-3);
        let mut acc: f64 = 0.0;
        let pairs: Vec<(f64, f64)> = sorted
            .into_iter()
            .map(|(m, p)| {
                acc = acc.max(p);
                (m, acc)
            })
            .collect();
        PrognosticVector::from_months(&pairs).unwrap()
    })
}

fn arb_machine() -> impl Strategy<Value = IcasMachine> {
    (
        0u64..50,
        ".{0,20}",
        0.0..=1.0f64,
        prop_oneof![Just("ok"), Just("degraded")],
        0usize..1000,
        proptest::collection::vec(
            (
                0usize..12,
                ".{0,20}",
                ".{0,10}",
                0.0..=1.0f64,
                0.0..=1.0f64,
                proptest::option::of(1.0..1e6f64),
            ),
            0..3,
        ),
    )
        .prop_map(
            |(machine_id, name, health, status, report_count, conds)| IcasMachine {
                machine_id,
                name,
                health,
                status: status.to_string(),
                report_count,
                conditions: conds
                    .into_iter()
                    .map(
                        |(condition_id, description, group, belief, severity, median_ttf_secs)| {
                            IcasCondition {
                                condition_id,
                                description,
                                group,
                                belief,
                                severity,
                                median_ttf_secs,
                            }
                        },
                    )
                    .collect(),
            },
        )
}

fn arb_delta() -> impl Strategy<Value = StatusDelta> {
    (
        0u64..10_000,
        0.0..1e6f64,
        0u64..50,
        prop_oneof![Just(DeltaKind::Degraded), Just(DeltaKind::Recovered)],
    )
        .prop_map(
            |(snapshot_version, at_secs, machine_id, kind)| StatusDelta {
                snapshot_version,
                at_secs,
                machine_id,
                kind,
            },
        )
}

fn arb_response() -> impl Strategy<Value = GatewayResponse> {
    let version = 0u64..10_000;
    prop_oneof![
        (version.clone(), arb_machine()).prop_map(|(snapshot_version, machine)| {
            GatewayResponse::MachineStatus {
                snapshot_version,
                machine,
            }
        }),
        (
            version.clone(),
            0.0..1e6f64,
            proptest::collection::vec(arb_machine(), 0..4),
            proptest::collection::vec((1u64..9, prop_oneof![Just(true), Just(false)]), 0..4),
        )
            .prop_map(|(snapshot_version, at_secs, machines, dcs)| {
                GatewayResponse::Icas {
                    snapshot_version,
                    icas: IcasSnapshot {
                        schema_version: ICAS_SCHEMA_VERSION,
                        at_secs,
                        machines,
                        data_concentrators: dcs
                            .into_iter()
                            .map(|(dc_id, alive)| IcasDc { dc_id, alive })
                            .collect(),
                    },
                }
            }),
        (version.clone(), 0u64..50, 0usize..12, arb_prognostic()).prop_map(
            |(snapshot_version, machine, condition_id, vector)| {
                GatewayResponse::PrognosticVector {
                    snapshot_version,
                    machine,
                    condition_id,
                    vector,
                }
            }
        ),
        (
            version.clone(),
            proptest::option::of((
                0.0..1e6f64,
                proptest::collection::vec(
                    (
                        ".{0,20}",
                        prop_oneof![Just(true), Just(false)],
                        0.0..1e6f64,
                        0.0..1e6f64,
                    ),
                    0..4
                ),
            )),
        )
            .prop_map(|(snapshot_version, verdict)| {
                GatewayResponse::SloVerdict {
                    snapshot_version,
                    verdict: verdict.map(|(at_secs, checks)| {
                        let checks: Vec<SloCheck> = checks
                            .into_iter()
                            .map(|(rule, pass, value, limit)| SloCheck {
                                rule,
                                pass,
                                value,
                                limit,
                            })
                            .collect();
                        SloVerdict {
                            at_secs,
                            pass: checks.iter().all(|c| c.pass),
                            checks,
                        }
                    }),
                }
            }),
        (
            version.clone(),
            proptest::collection::vec((".{0,10}", ".{0,10}", 0u64..=u64::MAX), 0..4),
        )
            .prop_map(|(snapshot_version, counters)| {
                GatewayResponse::Counters {
                    snapshot_version,
                    counters: counters
                        .into_iter()
                        .map(|(component, name, value)| CounterSnapshot {
                            component,
                            name,
                            value,
                        })
                        .collect(),
                }
            }),
        (
            version.clone(),
            0u64..=u64::MAX,
            0u64..1000,
            proptest::collection::vec(arb_delta(), 0..5),
        )
            .prop_map(|(snapshot_version, session, dropped, deltas)| {
                GatewayResponse::Deltas {
                    snapshot_version,
                    session,
                    dropped,
                    deltas,
                }
            }),
        (version, ".{0,40}").prop_map(|(snapshot_version, detail)| {
            GatewayResponse::NotFound {
                snapshot_version,
                detail,
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn any_request_survives_the_wire(req in arb_request()) {
        let frame = encode_request(&req).unwrap();
        prop_assert_eq!(decode_request(frame).unwrap(), req);
    }

    #[test]
    fn any_response_survives_the_wire(resp in arb_response()) {
        let frame = encode_response(&resp).unwrap();
        prop_assert_eq!(decode_response(frame).unwrap(), resp);
    }

    #[test]
    fn truncated_request_frames_are_rejected(req in arb_request(), cut_fraction in 0.0..1.0f64) {
        let frame = encode_request(&req).unwrap();
        let cut = ((frame.len() as f64) * cut_fraction) as usize;
        prop_assert!(cut < frame.len());
        prop_assert!(decode_request(frame.slice(0..cut)).is_err());
    }

    #[test]
    fn truncated_response_frames_are_rejected(resp in arb_response(), cut_fraction in 0.0..1.0f64) {
        let frame = encode_response(&resp).unwrap();
        let cut = ((frame.len() as f64) * cut_fraction) as usize;
        prop_assert!(cut < frame.len());
        prop_assert!(decode_response(frame.slice(0..cut)).is_err());
    }

    #[test]
    fn corrupted_headers_are_rejected(
        req in arb_request(),
        byte in 0usize..8,
        flip in 1u8..=255,
    ) {
        // Any change to any header byte — magic, version, type tag, or
        // the length field — must fail the decode. A flipped tag that
        // still lands in a valid range is caught by the tag-vs-body
        // cross-check; a flipped length by the exact-length check.
        let frame = encode_request(&req).unwrap();
        let mut bytes = frame.to_vec();
        bytes[byte] ^= flip;
        prop_assert!(decode_request(bytes::Bytes::from(bytes)).is_err());
    }

    #[test]
    fn ship_network_stack_rejects_gateway_frames(req in arb_request(), resp in arb_response()) {
        // A gateway frame misrouted into the DC/PDME transport decoder
        // must be refused on the tag range, not mis-parsed as a report.
        prop_assert!(decode_message(encode_request(&req).unwrap()).is_err());
        prop_assert!(decode_message(encode_response(&resp).unwrap()).is_err());
    }
}

//! Golden-vector conformance for the DSP substrate.
//!
//! Every transform is checked against a closed-form answer with a tight
//! absolute tolerance — sinusoids, impulses and DC offsets against their
//! analytic spectra, Parseval's theorem, DCT-II orthogonality, the
//! cepstrum of a synthetic echo, the envelope of an AM tone — and the
//! legacy allocating APIs are asserted *bit-identical* to the new
//! zero-allocation `*_into` paths through [`DspContext`].

use mpros_signal::cepstrum::{dominant_quefrency, real_cepstrum};
use mpros_signal::dct::{dct2, idct2};
use mpros_signal::dwt::{Wavelet, WaveletDecomposition};
use mpros_signal::envelope::{bandpass_envelope, hilbert_envelope};
use mpros_signal::features::{FeatureConfig, FeatureVector};
use mpros_signal::fft::{fft_real, ifft_real};
use mpros_signal::{Complex, DspContext, MultiLevelDwt, Spectrum, Window};
use std::f64::consts::PI;

/// Tight absolute tolerance for closed-form comparisons: the radix-2
/// FFT at these sizes accumulates well under 1e-9 of round-off per bin
/// on unit-scale inputs.
const TOL: f64 = 1e-9;

fn sine(n: usize, cycles: f64, amplitude: f64, phase: f64) -> Vec<f64> {
    (0..n)
        .map(|i| amplitude * (2.0 * PI * cycles * i as f64 / n as f64 + phase).sin())
        .collect()
}

// ---------------------------------------------------------------------
// Closed-form spectra.
// ---------------------------------------------------------------------

#[test]
fn fft_of_bin_centered_sinusoid_matches_closed_form() {
    // x[n] = A sin(2π k n / N)  ⇒  X[k] = -i A N/2, X[N-k] = +i A N/2,
    // every other bin exactly zero.
    let (n, k, a) = (1024usize, 37usize, 1.5f64);
    let x = sine(n, k as f64, a, 0.0);
    let spec = fft_real(&x).expect("power of two");
    let expect = a * n as f64 / 2.0;
    for (bin, z) in spec.iter().enumerate() {
        let (want_re, want_im) = if bin == k {
            (0.0, -expect)
        } else if bin == n - k {
            (0.0, expect)
        } else {
            (0.0, 0.0)
        };
        assert!(
            (z.re - want_re).abs() < TOL * n as f64 && (z.im - want_im).abs() < TOL * n as f64,
            "bin {bin}: got ({}, {}), want ({want_re}, {want_im})",
            z.re,
            z.im
        );
    }
}

#[test]
fn fft_of_impulse_is_flat() {
    // δ[0] transforms to 1 in every bin, exactly.
    let mut x = vec![0.0; 256];
    x[0] = 1.0;
    for z in fft_real(&x).expect("power of two") {
        assert!((z.re - 1.0).abs() < 1e-12 && z.im.abs() < 1e-12);
    }
}

#[test]
fn fft_of_dc_offset_concentrates_in_bin_zero() {
    let c = 0.75;
    let x = vec![c; 512];
    let spec = fft_real(&x).expect("power of two");
    assert!((spec[0].re - c * 512.0).abs() < TOL * 512.0);
    assert!(spec[0].im.abs() < TOL * 512.0);
    for z in &spec[1..] {
        assert!(z.abs() < TOL * 512.0, "leakage {}", z.abs());
    }
}

#[test]
fn parseval_energy_is_preserved() {
    // Σ|x|² = (1/N) Σ|X|², on a deterministic broadband signal.
    let n = 2048usize;
    let x: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64;
            (0.11 * t).sin() + 0.5 * (0.73 * t).cos() + 0.25 * (2.9 * t).sin()
        })
        .collect();
    let spec = fft_real(&x).expect("power of two");
    let time_energy: f64 = x.iter().map(|v| v * v).sum();
    let freq_energy: f64 = spec.iter().map(|z| z.norm_sq()).sum::<f64>() / n as f64;
    assert!(
        (time_energy - freq_energy).abs() < TOL * time_energy.max(1.0),
        "Parseval drift: {time_energy} vs {freq_energy}"
    );
}

#[test]
fn spectrum_reads_amplitude_through_every_window() {
    // A bin-centered tone must read its true amplitude after coherent-
    // gain correction, for every supported window.
    let (n, fs, a) = (4096usize, 16_384.0, 0.8);
    let cycles = 384.0; // exactly bin 384
    let x = sine(n, cycles, a, 0.3);
    let f_hz = cycles * fs / n as f64;
    for window in Window::ALL {
        let spec = Spectrum::compute(&x, fs, window).expect("computable");
        let read = spec.amplitude_near(f_hz, 3.0 * spec.resolution());
        assert!(
            (read - a).abs() < 1e-6,
            "{}: read {read}, want {a}",
            window.name()
        );
    }
}

// ---------------------------------------------------------------------
// DCT-II orthogonality.
// ---------------------------------------------------------------------

#[test]
fn dct2_basis_is_orthonormal() {
    // Transforming each standard basis vector gives the DCT matrix rows;
    // their pairwise dot products must be the identity.
    let n = 32usize;
    let mut rows = Vec::with_capacity(n);
    for i in 0..n {
        let mut e = vec![0.0; n];
        e[i] = 1.0;
        rows.push(dct2(&e));
    }
    for i in 0..n {
        for j in 0..n {
            let dot: f64 = (0..n).map(|k| rows[i][k] * rows[j][k]).sum();
            let want = if i == j { 1.0 } else { 0.0 };
            assert!((dot - want).abs() < TOL, "⟨{i},{j}⟩ = {dot}");
        }
    }
}

#[test]
fn dct2_roundtrip_is_tight() {
    let x: Vec<f64> = (0..64).map(|i| (i as f64 * 0.17).sin() * 3.0).collect();
    let back = idct2(&dct2(&x));
    for (a, b) in x.iter().zip(&back) {
        assert!((a - b).abs() < TOL, "{a} vs {b}");
    }
}

// ---------------------------------------------------------------------
// Cepstrum and envelope.
// ---------------------------------------------------------------------

#[test]
fn cepstrum_of_synthetic_echo_peaks_at_the_delay() {
    // x[n] = s[n] + α s[n-d]: the log-spectrum gains a cos(ωd) ripple,
    // so the cepstrum peaks at quefrency d.
    let (n, d, alpha) = (4096usize, 200usize, 0.6f64);
    // Deterministic broadband source: LCG white noise, so the log-
    // spectrum ripple from the echo is the only periodic structure.
    let mut state = 0x1234_5678_9abc_def0u64;
    let s: Vec<f64> = (0..n + d)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as f64 / (1u64 << 30) as f64 - 1.0
        })
        .collect();
    let x: Vec<f64> = (0..n).map(|i| s[i + d] + alpha * s[i]).collect();
    let cep = real_cepstrum(&x).expect("power of two");
    let q = dominant_quefrency(&cep, 50, n / 2).expect("non-empty range");
    assert!(
        (q as i64 - d as i64).unsigned_abs() <= 1,
        "echo delay read at {q}, planted at {d}"
    );
}

#[test]
fn envelope_of_am_tone_recovers_the_modulation() {
    // (1 + m cos(2π fm t)) sin(2π fc t): the Hilbert envelope IS the
    // modulation law, away from the block edges.
    let (n, fs) = (4096usize, 16_384.0);
    let (fc, fm, m) = (3_000.0, 64.0, 0.5);
    let x: Vec<f64> = (0..n)
        .map(|i| {
            let t = i as f64 / fs;
            (1.0 + m * (2.0 * PI * fm * t).cos()) * (2.0 * PI * fc * t).sin()
        })
        .collect();
    let env = hilbert_envelope(&x).expect("power of two");
    for (i, &e) in env.iter().enumerate().take(7 * n / 8).skip(n / 8) {
        let t = i as f64 / fs;
        let want = 1.0 + m * (2.0 * PI * fm * t).cos();
        assert!((e - want).abs() < 0.02, "envelope[{i}] = {e}, want {want}");
    }
}

// ---------------------------------------------------------------------
// Legacy allocating APIs ≡ zero-allocation `*_into` APIs, to the bit.
// ---------------------------------------------------------------------

fn assert_bits_eq(a: &[f64], b: &[f64], what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
    }
}

fn probe_block(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| {
            let t = i as f64;
            (0.21 * t).sin() + 0.45 * (1.37 * t).cos() + 0.1 * (4.11 * t).sin()
        })
        .collect()
}

#[test]
fn context_fft_and_ifft_match_legacy_bitwise() {
    let x = probe_block(2048);
    let legacy = fft_real(&x).expect("legacy fft");
    let mut ctx = DspContext::new();
    let mut freq: Vec<Complex> = Vec::new();
    ctx.fft_real_into(&x, &mut freq).expect("ctx fft");
    assert_eq!(legacy.len(), freq.len());
    for (a, b) in legacy.iter().zip(&freq) {
        assert_eq!(a.re.to_bits(), b.re.to_bits());
        assert_eq!(a.im.to_bits(), b.im.to_bits());
    }
    let legacy_back = ifft_real(&legacy).expect("legacy ifft");
    let mut back = Vec::new();
    ctx.ifft_real_into(&freq, &mut back).expect("ctx ifft");
    assert_bits_eq(&legacy_back, &back, "ifft");
}

#[test]
fn context_spectrum_matches_legacy_bitwise() {
    let x = probe_block(4096);
    let fs = 16_384.0;
    let mut ctx = DspContext::new();
    for window in Window::ALL {
        let legacy = Spectrum::compute(&x, fs, window).expect("legacy");
        let mut spec = Spectrum::default();
        ctx.spectrum_into(&x, fs, window, &mut spec).expect("ctx");
        assert_bits_eq(legacy.amplitudes(), spec.amplitudes(), window.name());
        assert_eq!(legacy.resolution().to_bits(), spec.resolution().to_bits());
        assert_eq!(legacy.sample_rate().to_bits(), spec.sample_rate().to_bits());
    }
}

#[test]
fn context_cepstrum_and_envelopes_match_legacy_bitwise() {
    let x = probe_block(2048);
    let fs = 16_384.0;
    let mut ctx = DspContext::new();

    let legacy = real_cepstrum(&x).expect("legacy cepstrum");
    let mut cep = Vec::new();
    ctx.cepstrum_into(&x, &mut cep).expect("ctx cepstrum");
    assert_bits_eq(&legacy, &cep, "cepstrum");

    let legacy = hilbert_envelope(&x).expect("legacy envelope");
    let mut env = Vec::new();
    ctx.hilbert_envelope_into(&x, &mut env)
        .expect("ctx envelope");
    assert_bits_eq(&legacy, &env, "hilbert_envelope");

    let legacy = bandpass_envelope(&x, fs, 1_800.0, 3_000.0).expect("legacy bandpass");
    let mut env = Vec::new();
    ctx.bandpass_envelope_into(&x, fs, 1_800.0, 3_000.0, &mut env)
        .expect("ctx bandpass");
    assert_bits_eq(&legacy, &env, "bandpass_envelope");
}

#[test]
fn context_envelope_spectrum_matches_legacy_chain_bitwise() {
    let x = probe_block(4096);
    let fs = 16_384.0;
    // The legacy chain the DLI used: bandpass envelope → remove mean →
    // Hann amplitude spectrum.
    let env = bandpass_envelope(&x, fs, 1_800.0, 3_000.0).expect("legacy bandpass");
    let mean = env.iter().sum::<f64>() / env.len() as f64;
    let ac: Vec<f64> = env.iter().map(|e| e - mean).collect();
    let legacy = Spectrum::compute(&ac, fs, Window::Hann).expect("legacy spectrum");

    let mut ctx = DspContext::new();
    let mut spec = Spectrum::default();
    ctx.envelope_spectrum_into(&x, fs, 1_800.0, 3_000.0, Window::Hann, &mut spec)
        .expect("ctx chain");
    assert_bits_eq(legacy.amplitudes(), spec.amplitudes(), "envelope spectrum");
}

#[test]
fn context_dwt_matches_legacy_bitwise() {
    let x = probe_block(1024);
    for wavelet in [Wavelet::Haar, Wavelet::Daubechies4] {
        for levels in 1..=4 {
            let legacy = WaveletDecomposition::analyze(&x, wavelet, levels).expect("legacy");
            let mut dwt = MultiLevelDwt::new();
            dwt.analyze_into(&x, wavelet, levels).expect("ctx analyze");
            assert_bits_eq(&legacy.approx, dwt.approx(), "approx");
            assert_eq!(legacy.details.len(), dwt.details().len());
            for (a, b) in legacy.details.iter().zip(dwt.details()) {
                assert_bits_eq(a, b, "detail");
            }
            let legacy_map = legacy.energy_map();
            let mut map = Vec::new();
            dwt.energy_map_into(&mut map);
            assert_bits_eq(&legacy_map, &map, "energy map");
            let legacy_rec = legacy.synthesize().expect("legacy synthesize");
            let mut rec = Vec::new();
            dwt.reconstruct_into(&mut rec).expect("ctx reconstruct");
            assert_bits_eq(&legacy_rec, &rec, "reconstruction");
        }
    }
}

#[test]
fn context_feature_vector_matches_legacy_bitwise() {
    let x = probe_block(2048);
    let config = FeatureConfig::default();
    let scalars = [0.35, 0.82];
    let legacy = FeatureVector::extract(&x, &config, &scalars).expect("legacy");
    let mut ctx = DspContext::new();
    let mut fv = FeatureVector::default();
    ctx.feature_vector_into(&x, &config, &scalars, &mut fv)
        .expect("ctx");
    assert_bits_eq(legacy.values(), fv.values(), "feature vector");
    assert_eq!(fv.len(), FeatureVector::dimension(&config, scalars.len()));
}

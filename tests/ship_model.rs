//! §4: the Object-Oriented Ship Model exercised as the paper describes —
//! physical hierarchy, relationships, persistence mapping, events, and
//! the §10.1 health rollup over it.

use mpros::core::{Belief, ConditionReport, MachineCondition, MachineId, ReportId, SimTime};
use mpros::network::NetMessage;
use mpros::oosm::{ObjectKind, Oosm, OosmEvent, Relation, Value};
use mpros::pdme::{health, PdmeExecutive};

/// Build the §4.3 model: ship → decks → A/C system → machines with
/// part-of, proximity and flow relations.
fn build_ship(oosm: &mut Oosm) -> (mpros::core::ObjectId, Vec<mpros::core::ObjectId>) {
    let ship = oosm.create_object(ObjectKind::Ship, "USNS Mercy");
    let deck = oosm.create_object(ObjectKind::Deck, "3rd deck");
    let system = oosm.create_object(ObjectKind::System, "chilled water system");
    oosm.relate(deck, Relation::PartOf, ship).unwrap();
    oosm.relate(system, Relation::PartOf, deck).unwrap();
    let names = ["motor", "compressor", "condenser", "evaporator", "chw pump"];
    let machines: Vec<_> = names
        .iter()
        .map(|n| {
            let m = oosm.create_object(ObjectKind::Machine, n);
            oosm.relate(m, Relation::PartOf, system).unwrap();
            m
        })
        .collect();
    oosm.relate(machines[0], Relation::ProximateTo, machines[1])
        .unwrap();
    oosm.relate(machines[1], Relation::FlowsTo, machines[2])
        .unwrap();
    oosm.relate(machines[2], Relation::FlowsTo, machines[3])
        .unwrap();
    (ship, machines)
}

#[test]
fn hierarchy_traverses_in_both_directions() {
    let mut oosm = Oosm::new();
    let (ship, machines) = build_ship(&mut oosm);
    // Downward: ship → deck → system → machines.
    let decks = oosm.related_to(ship, Relation::PartOf);
    assert_eq!(decks.len(), 1);
    let systems = oosm.related_to(decks[0], Relation::PartOf);
    assert_eq!(systems.len(), 1);
    assert_eq!(oosm.related_to(systems[0], Relation::PartOf).len(), 5);
    // Upward from any machine.
    assert_eq!(
        oosm.related(machines[0], Relation::PartOf),
        vec![systems[0]]
    );
    // Flow chain.
    assert_eq!(
        oosm.related(machines[1], Relation::FlowsTo),
        vec![machines[2]]
    );
    assert_eq!(
        oosm.related(machines[2], Relation::FlowsTo),
        vec![machines[3]]
    );
}

#[test]
fn persistence_mapping_is_observable() {
    // §4.6: "Object types are mapped to tables and properties and
    // relationships are mapped to columns and helper tables."
    let mut oosm = Oosm::new();
    let (_, machines) = build_ship(&mut oosm);
    for (i, &m) in machines.iter().enumerate() {
        oosm.set_property(m, "manufacturer", Value::Text("York".into()))
            .unwrap();
        oosm.set_property(m, "capacity_tons", Value::Float(150.0 + i as f64))
            .unwrap();
    }
    let store = oosm.store();
    assert_eq!(
        store.table_names(),
        vec!["objects", "properties", "relationships"]
    );
    assert_eq!(store.row_count("objects").unwrap(), 8); // ship+deck+system+5
    assert_eq!(store.row_count("properties").unwrap(), 10);
    assert_eq!(store.row_count("relationships").unwrap(), 10); // 7 part-of + 1 prox + 2 flow
}

#[test]
fn common_properties_of_the_paper_roundtrip() {
    // §4.2: "Some common properties include name, manufacturer, energy
    // usage, capacity, and location."
    let mut oosm = Oosm::new();
    let m = oosm.create_object(ObjectKind::Machine, "A/C Compressor 1");
    oosm.set_property(m, "manufacturer", Value::Text("Carrier".into()))
        .unwrap();
    oosm.set_property(m, "energy_usage_kw", Value::Float(420.0))
        .unwrap();
    oosm.set_property(m, "capacity_tons", Value::Int(200))
        .unwrap();
    oosm.set_property(m, "location", Value::Text("3rd deck, frame 110".into()))
        .unwrap();
    let props = oosm.properties(m);
    assert_eq!(props.len(), 4);
    assert_eq!(
        oosm.property(m, "location"),
        Some(Value::Text("3rd deck, frame 110".into()))
    );
}

#[test]
fn events_fire_for_every_mutation_kind() {
    let mut oosm = Oosm::new();
    let sub = oosm.subscribe();
    let (_, machines) = build_ship(&mut oosm);
    oosm.set_property(machines[0], "rpm", Value::Float(3550.0))
        .unwrap();
    oosm.delete_object(machines[4]).unwrap();
    let events = sub.drain();
    let created = events
        .iter()
        .filter(|e| matches!(e, OosmEvent::ObjectCreated { .. }))
        .count();
    let related = events
        .iter()
        .filter(|e| matches!(e, OosmEvent::RelationAdded { .. }))
        .count();
    assert_eq!(created, 8);
    assert_eq!(related, 10);
    assert!(events
        .iter()
        .any(|e| matches!(e, OosmEvent::PropertyChanged { .. })));
    assert!(events
        .iter()
        .any(|e| matches!(e, OosmEvent::ObjectDeleted { .. })));
}

#[test]
fn health_rollup_spans_the_full_hierarchy() {
    let mut pdme = PdmeExecutive::new();
    pdme.register_machine(MachineId::new(1), "chiller motor");
    let motor_obj = pdme.oosm().machine_object(MachineId::new(1)).unwrap();
    let ship = {
        let oosm = pdme.oosm_mut();
        let (ship, _) = build_ship(oosm);
        // Attach the registered machine under the same system.
        let system = oosm.find_by_name("chilled water system").unwrap();
        oosm.relate(motor_obj, Relation::PartOf, system).unwrap();
        ship
    };
    // Fault the registered machine.
    let r = ConditionReport::builder(
        MachineId::new(1),
        MachineCondition::GearToothWear,
        Belief::new(0.9),
    )
    .id(ReportId::new(1))
    .build();
    pdme.ingest(&[NetMessage::Report(r)], SimTime::ZERO)
        .unwrap();
    let tree = health::health_of(&pdme, ship);
    assert!(
        (tree.health - 0.1).abs() < 1e-6,
        "ship health {}",
        tree.health
    );
    // Four levels deep: ship → deck → system → machine.
    let rendered = health::render(&tree);
    assert!(
        rendered.contains("      chiller motor"),
        "render:\n{rendered}"
    );
}

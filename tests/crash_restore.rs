//! Crash-restore determinism: a run whose PDME is torn down mid-flight
//! and rebuilt from the durable store (latest snapshot + WAL tail) must
//! produce **byte-identical** observable output to the run that never
//! crashed — the durability layer is invisible in every mode.
//!
//! What is compared between the crashed and uninterrupted runs:
//! * the ICAS snapshot, as its exact JSON serialization;
//! * the SLO watchdog's final verdict, as its exact JSON serialization;
//! * the total reports fused and received;
//! * the deterministic (simulated-time) histograms — bus transit and
//!   end-to-end report latency.
//!
//! Counters are deliberately *not* compared wholesale: the crashed run
//! legitimately records `store.recovery_replayed` and `sim pdme_crash`
//! journal events that the uninterrupted run does not.
//!
//! The torn-write test exercises the other half of the contract: the
//! WAL truncated at byte offsets in its tail must recover cleanly to
//! the last valid frame, and a PDME restored from any clean frame
//! boundary must be exactly replayable.

use mpros::chiller::fault::{FaultProfile, FaultSeed};
use mpros::core::{FaultPlan, MachineCondition, SimDuration, SimTime};
use mpros::network::NetworkConfig;
use mpros::pdme::{export_snapshot, PdmeExecutive};
use mpros::sim::{ExecMode, ShipboardSim, ShipboardSimConfig};
use mpros::store::{scan_frame, FrameScan, RecoveryManager};
use mpros::telemetry::SloPolicy;

/// The lossy-network campaign from the determinism harness: 3 DCs, a
/// dropping/jittering bus and one step-profile fault — enough traffic
/// that the WAL tail carries real batches, acks and supervision state.
fn lossy_config(exec: ExecMode, fault_plan: FaultPlan) -> ShipboardSimConfig {
    ShipboardSimConfig::new()
        .with_dc_count(3)
        .with_seed(99)
        .with_network(
            NetworkConfig::default()
                .with_drop_probability(0.15)
                .with_jitter(SimDuration::from_millis(4.0)),
        )
        .with_fault_plan(fault_plan)
        .with_survey_period(SimDuration::from_secs(30.0))
        .with_slo(SloPolicy::standard(30.0, 120.0, 0.9))
        .with_exec(exec)
}

fn build(exec: ExecMode, fault_plan: FaultPlan) -> ShipboardSim {
    let mut sim = ShipboardSim::new(lossy_config(exec, fault_plan)).expect("sim builds");
    sim.seed_fault(
        1,
        FaultSeed {
            condition: MachineCondition::RefrigerantLeak,
            onset: SimTime::ZERO,
            time_to_failure: SimDuration::from_minutes(6.0),
            profile: FaultProfile::Step(0.9),
        },
    );
    sim
}

/// Everything observable that must not depend on whether (or where) the
/// PDME crashed and restored.
#[derive(Debug, PartialEq)]
struct Fingerprint {
    icas_json: String,
    slo_json: String,
    fused: usize,
    reports_received: usize,
    sim_histograms: Vec<(String, String, u64, String)>,
}

fn fingerprint(sim: &ShipboardSim, fused: usize) -> Fingerprint {
    let icas = export_snapshot(sim.pdme(), sim.now(), SimDuration::from_secs(30.0));
    let snap = sim.telemetry().snapshot();
    let sim_histograms = snap
        .histograms
        .iter()
        .filter(|h| {
            h.name.ends_with("sim_s")
                || h.name.ends_with("latency_s")
                || h.name.ends_with("transit_s")
        })
        .map(|h| {
            (
                h.component.clone(),
                h.name.clone(),
                h.count,
                format!(
                    "{:?}/{:?}/{:?}/{:?}/{:?}",
                    h.min, h.max, h.p50, h.p95, h.p99
                ),
            )
        })
        .collect();
    Fingerprint {
        icas_json: icas.to_json().expect("ICAS serializes"),
        slo_json: sim
            .slo_verdict()
            .expect("watchdog ran")
            .to_json()
            .expect("verdict serializes"),
        fused,
        reports_received: sim.pdme().reports_received(),
        sim_histograms,
    }
}

/// Run the campaign for 3 minutes; returns the fingerprint plus the
/// number of WAL records replayed through recovery (0 when no crash).
fn run(exec: ExecMode, fault_plan: FaultPlan) -> (Fingerprint, u64) {
    let mut sim = build(exec, fault_plan);
    let fused = sim
        .run_for(SimDuration::from_minutes(3.0), SimDuration::from_secs(0.5))
        .expect("campaign runs");
    let replayed = sim
        .telemetry()
        .snapshot()
        .counter("store", "recovery_replayed");
    (fingerprint(&sim, fused), replayed)
}

/// The tentpole contract: `FaultKind::PdmeCrash` mid-run tears the
/// engine down and rebuilds it from snapshot + WAL tail, and the final
/// ICAS export, SLO verdict and simulated-time histograms are
/// byte-identical to the uninterrupted run — sequentially and at every
/// worker count.
#[test]
fn crashed_run_is_byte_identical_to_uninterrupted() {
    // The crash window opens mid-campaign, after real traffic and the
    // first periodic snapshot, so recovery replays a non-trivial tail.
    let crash_plan =
        FaultPlan::none().with_pdme_crash(SimTime::from_secs(80.0), SimTime::from_secs(81.0));
    let (reference, _) = run(ExecMode::Sequential, FaultPlan::none());
    assert!(
        reference.reports_received > 0,
        "scenario produced no traffic — vacuous comparison"
    );
    for exec in [
        ExecMode::Sequential,
        ExecMode::Parallel { workers: 2 },
        ExecMode::Parallel { workers: 4 },
        ExecMode::Parallel { workers: 8 },
    ] {
        let (crashed, replayed) = run(exec, crash_plan.clone());
        assert!(
            replayed > 0,
            "{exec:?}: crash fired but recovery replayed no WAL records — vacuous"
        );
        assert_eq!(
            reference.icas_json, crashed.icas_json,
            "{exec:?}: ICAS snapshot diverged after crash-restore"
        );
        assert_eq!(
            reference.slo_json, crashed.slo_json,
            "{exec:?}: SLO verdict diverged after crash-restore"
        );
        assert_eq!(
            reference.sim_histograms, crashed.sim_histograms,
            "{exec:?}: simulated-time histograms diverged after crash-restore"
        );
        assert_eq!(reference, crashed, "{exec:?}: full fingerprint");
    }
}

/// Crashing at *arbitrary* seeded steps — between ticks rather than on
/// a fault-plan edge, including twice in one run — must also be
/// output-transparent.
#[test]
fn restore_at_arbitrary_steps_is_transparent() {
    let dt = SimDuration::from_secs(0.5);
    let total_steps = 360; // 3 minutes
    let run_manual = |crash_at: &[u64]| {
        let mut sim = build(ExecMode::Sequential, FaultPlan::none());
        let mut fused = 0;
        for step in 0..total_steps {
            fused += sim.step(dt).expect("step runs");
            if crash_at.contains(&step) {
                sim.crash_restore_pdme().expect("crash-restore succeeds");
            }
        }
        fingerprint(&sim, fused)
    };
    let reference = run_manual(&[]);
    assert!(reference.reports_received > 0, "vacuous comparison");
    // One early crash (WAL-tail replay from the baseline snapshot), one
    // just past a periodic snapshot, and a double-crash run.
    for crash_at in [&[37u64][..], &[151][..], &[66, 287][..]] {
        assert_eq!(
            reference,
            run_manual(crash_at),
            "crash at steps {crash_at:?} changed observable output"
        );
    }
}

/// Byte offsets of every clean frame boundary in `bytes`, in order,
/// starting with 0.
fn frame_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = vec![0];
    let mut offset = 0;
    while let FrameScan::Valid(_, consumed) = scan_frame(&bytes[offset..]) {
        offset += consumed;
        boundaries.push(offset);
    }
    assert_eq!(offset, bytes.len(), "live WAL ends on a frame boundary");
    boundaries
}

/// Torn-write survivability: truncate the live WAL at every byte offset
/// across its tail frames and at every frame boundary — recovery must
/// land exactly on the last valid frame and the restored engine must
/// match the live one wherever the log is whole.
#[test]
fn torn_wal_tail_recovers_to_last_valid_frame() {
    // A shorter seeded run keeps the log small enough to scan
    // exhaustively; 100 steps crosses the periodic-snapshot cadence.
    let mut sim = build(ExecMode::Sequential, FaultPlan::none());
    let mut fused = 0;
    for _ in 0..100 {
        fused += sim.step(SimDuration::from_secs(0.5)).expect("step runs");
    }
    assert!(fused > 0, "no traffic — vacuous log");
    let bytes = sim.store().contents().expect("store readable");
    let boundaries = frame_boundaries(&bytes);
    assert!(
        boundaries.len() > 20,
        "expected a multi-frame log, got {} frames",
        boundaries.len() - 1
    );
    let manager = RecoveryManager::new(sim.telemetry());

    // Every byte offset across the last handful of frames (the region a
    // torn append actually damages), plus every frame boundary.
    let tail_start = boundaries[boundaries.len() - 4];
    let cuts = (tail_start..=bytes.len()).chain(boundaries.iter().copied());
    for cut in cuts {
        let recovered = manager.recover(&bytes[..cut]);
        let last_valid = *boundaries.iter().rfind(|&&b| b <= cut).unwrap();
        assert_eq!(
            recovered.valid_len as usize, last_valid,
            "cut at {cut}: recovery did not land on the last valid frame"
        );
        assert_eq!(
            recovered.dropped_bytes as usize,
            cut - last_valid,
            "cut at {cut}: dropped-byte accounting wrong"
        );
        // Any clean prefix must restore without error.
        if cut == last_valid {
            PdmeExecutive::restore(&recovered)
                .unwrap_or_else(|e| panic!("restore from clean prefix {cut} failed: {e}"));
        }
    }

    // The untruncated log restores to exactly the live engine.
    let restored = PdmeExecutive::restore(&manager.recover(&bytes)).expect("full restore");
    assert_eq!(
        restored.snapshot_bytes(),
        sim.pdme().snapshot_bytes(),
        "full-log restore is not byte-identical to the live engine"
    );

    // A flipped byte mid-log stops recovery at the frame containing the
    // damage — nothing after a corrupt frame is trusted.
    for &flip_at in &[
        boundaries[1] + 3,
        boundaries[boundaries.len() / 2] + 7,
        bytes.len() - 1,
    ] {
        let mut corrupt = bytes.clone();
        corrupt[flip_at] ^= 0x40;
        let recovered = manager.recover(&corrupt);
        let containing = *boundaries.iter().rfind(|&&b| b <= flip_at).unwrap();
        assert_eq!(
            recovered.valid_len as usize, containing,
            "flip at {flip_at}: recovery should stop at the damaged frame"
        );
        PdmeExecutive::restore(&recovered).expect("restore from corrupt-truncated log");
    }
}

//! End-to-end causal tracing through the assembled ship.
//!
//! Every condition report minted by a DC owns a deterministic trace;
//! these tests reconstruct single-report journeys hop by hop — emission,
//! enqueue, (re)transmission, delivery, PDME ingest, fusion, ship-model
//! update — and pin the failure paths: retries stay on the original
//! trace across a partition, a crash loses pending frames on `CrashLost`
//! hops and restarts onto a *fresh* trace stream, and the SLO watchdog
//! converts a forced PDME stall into a machine-readable failure that a
//! calm sea never produces.

use mpros::chiller::fault::{FaultProfile, FaultSeed};
use mpros::core::{DcId, FaultPlan, FaultTarget, MachineCondition, SimDuration, SimTime};
use mpros::sim::{ShipboardSim, ShipboardSimConfig};
use mpros::telemetry::export::{chrome_trace, jsonl};
use mpros::telemetry::trace::e2e_latencies;
use mpros::telemetry::{HopKind, SloPolicy, TraceHop};

fn bearing_fault() -> FaultSeed {
    FaultSeed {
        condition: MachineCondition::MotorBearingDefect,
        onset: SimTime::ZERO,
        time_to_failure: SimDuration::from_minutes(8.0),
        profile: FaultProfile::EarlyOnset,
    }
}

fn run_sim(fault_plan: FaultPlan, slo: SloPolicy, minutes: f64) -> ShipboardSim {
    let mut sim = ShipboardSim::new(
        ShipboardSimConfig::new()
            .with_dc_count(2)
            .with_seed(17)
            .with_fault_plan(fault_plan)
            .with_slo(slo)
            .with_survey_period(SimDuration::from_secs(30.0)),
    )
    .expect("sim builds");
    sim.seed_fault(0, bearing_fault());
    sim.run_for(
        SimDuration::from_minutes(minutes),
        SimDuration::from_secs(0.5),
    )
    .expect("scenario runs");
    sim
}

/// Group one trace's hops (already canonically ordered).
fn hops_of(hops: &[TraceHop], trace: mpros::telemetry::TraceId) -> Vec<&TraceHop> {
    hops.iter().filter(|h| h.trace == trace).collect()
}

#[test]
fn single_report_journey_reconstructs_end_to_end() {
    let sim = run_sim(FaultPlan::none(), SloPolicy::none(), 3.0);
    let hops = sim.trace_hops();
    assert!(!hops.is_empty(), "calm sea still emits reports");

    // Pick a trace that completed the whole journey.
    let done = hops
        .iter()
        .find(|h| h.kind == HopKind::OosmUpdate)
        .expect("at least one report fused into the ship model");
    let chain = hops_of(&hops, done.trace);
    let kinds: Vec<HopKind> = chain.iter().map(|h| h.kind).collect();
    assert_eq!(
        kinds,
        vec![
            HopKind::DcEmit,
            HopKind::Enqueue,
            HopKind::Send,
            HopKind::Deliver,
            HopKind::Ingest,
            HopKind::Fuse,
            HopKind::OosmUpdate,
        ],
        "full journey in causal order"
    );
    // The parent chain links every hop to its predecessor's span. The
    // Send hop parents under Enqueue (not Deliver under Send directly —
    // it does, but via the attempt-stamped span).
    assert_eq!(chain[0].parent, None, "DcEmit is the root");
    assert_eq!(chain[1].parent, Some(chain[0].span));
    assert_eq!(chain[2].parent, Some(chain[1].span));
    assert_eq!(chain[3].parent, Some(chain[2].span));
    assert_eq!(
        chain[4].parent,
        Some(chain[1].span),
        "ingest closes the wire ctx"
    );
    assert_eq!(chain[5].parent, Some(chain[4].span));
    assert_eq!(chain[6].parent, Some(chain[5].span));
    // Tracks: DC root on its own track, transport on net, closeout on pdme.
    assert_eq!(chain[0].track, "dc1");
    assert!(chain[1..4].iter().all(|h| h.track == "net"));
    assert!(chain[4..].iter().all(|h| h.track == "pdme"));
    // Sim time never runs backwards along the chain.
    for w in chain.windows(2) {
        assert!(w[1].sim_start >= w[0].sim_start - 1e-12);
    }

    // Trace-derived e2e latencies exist and are plausible (sub-step
    // delivery on the default 5 ms network).
    let lat = e2e_latencies(&hops);
    assert!(!lat.is_empty());
    assert!(lat.iter().all(|&l| (0.0..60.0).contains(&l)), "{lat:?}");
}

#[test]
fn partition_retries_ride_the_same_trace() {
    // DC 1 is partitioned for 40 s: its frames ride the outbox on
    // backoff and cross after the heal — same trace, rising attempts.
    let plan = FaultPlan::none().with_partition(
        FaultTarget::Dc(DcId::new(1)),
        SimTime::from_secs(30.0),
        SimTime::from_secs(70.0),
    );
    let sim = run_sim(plan, SloPolicy::none(), 3.0);
    let hops = sim.trace_hops();

    // Find a trace that needed more than one transmission and was
    // eventually delivered.
    let retried = hops
        .iter()
        .find(|h| h.kind == HopKind::Deliver && h.attempt > 1)
        .expect("the 40 s partition forces retries");
    let chain = hops_of(&hops, retried.trace);
    let sends: Vec<&&TraceHop> = chain.iter().filter(|h| h.kind == HopKind::Send).collect();
    assert!(sends.len() > 1, "retransmissions visible on the trace");
    for (i, s) in sends.iter().enumerate() {
        assert_eq!(s.attempt, i as u32 + 1, "attempts count up");
        // Every retry hangs off the same enqueue span: a retransmission
        // is a new span on the *original* trace, never a fresh trace.
        assert_eq!(s.parent, sends[0].parent);
    }
    assert_eq!(
        chain.iter().filter(|h| h.kind == HopKind::Enqueue).count(),
        1,
        "one enqueue, many sends"
    );
    // Nothing was given up: the retry budget outlasts the partition.
    assert!(chain.iter().all(|h| h.kind != HopKind::Expire));
    assert_eq!(sim.network().stats().expired, 0);
}

#[test]
fn crash_loses_frames_on_trace_and_restarts_a_fresh_stream() {
    let plan = FaultPlan::none().with_dc_crash(
        DcId::new(1),
        SimTime::from_secs(40.0),
        SimTime::from_secs(80.0),
    );
    let seed_before = {
        let sim =
            ShipboardSim::new(ShipboardSimConfig::new().with_dc_count(2).with_seed(17)).unwrap();
        sim.dc_trace_seed(0)
    };
    let sim = run_sim(plan, SloPolicy::none(), 4.0);
    let hops = sim.trace_hops();

    // Unacked frames died with the node, visible as CrashLost hops.
    let lost: Vec<&TraceHop> = hops
        .iter()
        .filter(|h| h.kind == HopKind::CrashLost)
        .collect();
    for h in &lost {
        assert_eq!(h.detail, "dc crash");
    }
    // The restarted DC derives traces from a new epoch-folded seed: the
    // sim exposes it, and it differs from the epoch-0 stream even
    // though the rebuilt IdAllocator reuses the same raw report ids.
    assert_eq!(sim.dc_epoch(0), 1, "one crash window completed");
    assert_ne!(sim.dc_trace_seed(0), seed_before);
    // Reports emitted after the restart completed the journey.
    let post_restart_fused = hops.iter().any(|h| {
        h.kind == HopKind::OosmUpdate && h.sim_start > 80.0 && {
            // Same trace has a DcEmit root after the crash window.
            hops.iter()
                .any(|r| r.trace == h.trace && r.kind == HopKind::DcEmit && r.sim_start >= 80.0)
        }
    });
    assert!(
        post_restart_fused,
        "fresh-epoch traces close out end to end"
    );
}

#[test]
fn slo_watchdog_passes_calm_sea_and_fails_a_forced_stall() {
    let policy = SloPolicy::standard(5.0, 60.0, 0.9);

    // Calm sea: every rule holds on the default network.
    let calm = run_sim(FaultPlan::none(), policy.clone(), 3.0);
    let verdict = calm.slo_verdict().expect("watchdog ran");
    assert!(verdict.pass, "calm sea violates no SLO: {verdict:?}");

    // A 60 s PDME stall parks frames in the network; on resume their
    // ingest latency blows the 5 s p95 budget and the watchdog fails.
    let plan =
        FaultPlan::none().with_pdme_stall(SimTime::from_secs(30.0), SimTime::from_secs(90.0));
    let stalled = run_sim(plan, policy, 3.0);
    let verdict = stalled.slo_verdict().expect("watchdog ran");
    assert!(!verdict.pass, "stall must breach the latency SLO");
    let failing = verdict.failing();
    assert!(
        failing.iter().any(|r| r.contains("p95")),
        "the p95 latency rule is the one that broke: {failing:?}"
    );
    // The breach and the (absent) recovery are journaled under "slo".
    assert!(stalled
        .telemetry()
        .events()
        .iter()
        .any(|e| e.component == "slo" && e.kind == "slo_violation"));
}

#[test]
fn completed_journey_is_retrievable_over_the_gateway_wire() {
    use mpros::gateway::{GatewayClient, GatewayConfig};

    let mut sim = run_sim(FaultPlan::none(), SloPolicy::none(), 3.0);
    let hops = sim.trace_hops();
    let done = hops
        .iter()
        .find(|h| h.kind == HopKind::OosmUpdate)
        .expect("at least one report fused into the ship model");
    let trace = done.trace;
    let expected = hops_of(&hops, trace);

    // A remote console asks for the same journey by trace id: the served
    // hops must match the in-process chain field for field (minus the
    // diagnostic wall-clock, which never crosses the wire).
    let gateway = sim.attach_gateway(GatewayConfig::new());
    let client = GatewayClient::connect(gateway, 7);
    let served = client.trace(trace.raw()).expect("known trace serves");

    assert_eq!(served.len(), expected.len(), "hop count over the wire");
    let kinds: Vec<&str> = served.iter().map(|h| h.kind.as_str()).collect();
    assert_eq!(
        kinds,
        vec![
            "dc_emit",
            "enqueue",
            "send",
            "deliver",
            "ingest",
            "fuse",
            "oosm_update",
        ],
        "served chain is the full causal journey"
    );
    for (wire, local) in served.iter().zip(expected.iter()) {
        assert_eq!(wire.trace, local.trace.raw());
        assert_eq!(wire.span, local.span.raw());
        assert_eq!(wire.parent, local.parent.map(|p| p.raw()));
        assert_eq!(wire.kind, local.kind.as_str());
        assert_eq!(wire.attempt, local.attempt);
        assert_eq!(wire.track, local.track);
        assert_eq!(wire.sim_start.to_bits(), local.sim_start.to_bits());
        assert_eq!(wire.sim_end.to_bits(), local.sim_end.to_bits());
        assert_eq!(wire.detail, local.detail);
    }

    // An id the log never saw is a NotFound error, not an empty chain.
    let miss = client.trace(0xdead_beef_dead_beef);
    assert!(miss.is_err(), "unknown trace must not serve: {miss:?}");
}

#[test]
fn chrome_trace_export_is_valid_json_with_expected_tracks() {
    let sim = run_sim(FaultPlan::none(), SloPolicy::none(), 2.0);
    let hops = sim.trace_hops();
    let chrome = chrome_trace(&hops);
    let doc: serde_json::Value = serde_json::from_str(&chrome).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
    // Thread-name metadata declares one track per DC plus net and pdme.
    let meta_names: Vec<String> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .filter_map(|e| {
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(|n| n.as_str())
                .map(str::to_owned)
        })
        .collect();
    // Only DC 1 carries a seeded fault, so it is the only DC track; a
    // healthy DC that never emits a report never opens one.
    for track in ["dc1", "net", "pdme"] {
        assert!(meta_names.iter().any(|n| n == track), "missing {track}");
    }
    // Every JSONL line parses too.
    let lines = jsonl(&hops);
    for line in lines.lines() {
        serde_json::from_str::<serde_json::Value>(line).expect("JSONL line parses");
    }
}

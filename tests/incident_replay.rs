//! Incident replay: a sealed flight-recorder `Incident` from a faulted
//! run is a deterministic artifact. These tests pin the two halves of
//! that claim:
//!
//! * **Mode invariance, over the wire** — an 8-DC run with a mid-run DC
//!   crash seals the same incidents (same deterministic ids, same exact
//!   JSON bundles) and serves the same Prometheus text exposition
//!   whether the fleet stepped sequentially or across 2/4/8 workers,
//!   and everything is fetched through the framed wire-v5 protocol,
//!   not in-process accessors.
//! * **Durability invariance** — tearing the PDME down mid-run and
//!   rebuilding it from the store (snapshot + WAL tail) leaves every
//!   previously sealed incident byte-identical to the uninterrupted
//!   run's, and the restore itself seals a `pdme_crash_restore`
//!   incident whose id any observer can recompute from the scenario
//!   seed and the step alone.

use mpros::chiller::fault::{FaultProfile, FaultSeed};
use mpros::core::{DcId, FaultPlan, MachineCondition, SimDuration, SimTime};
use mpros::gateway::{GatewayClient, GatewayConfig};
use mpros::sim::{ExecMode, ShipboardSim, ShipboardSimConfig};
use mpros::telemetry::{incident_id, IncidentTrigger};

const SEED: u64 = 41;

/// A fleet with a progressing bearing defect and a DC crash window at
/// t = 40–70 s: the crash edge fires the recorder well inside the run,
/// leaving plenty of post-window steps to seal the bundle.
fn faulted_sim(dc_count: usize, exec: ExecMode) -> ShipboardSim {
    let mut sim = ShipboardSim::new(
        ShipboardSimConfig::new()
            .with_dc_count(dc_count)
            .with_seed(SEED)
            .with_survey_period(SimDuration::from_secs(30.0))
            .with_fault_plan(FaultPlan::none().with_dc_crash(
                DcId::new(2),
                SimTime::from_secs(40.0),
                SimTime::from_secs(70.0),
            ))
            .with_exec(exec),
    )
    .expect("sim builds");
    for idx in [0usize, dc_count / 2] {
        sim.seed_fault(
            idx,
            FaultSeed {
                condition: MachineCondition::MotorBearingDefect,
                onset: SimTime::ZERO,
                time_to_failure: SimDuration::from_minutes(8.0),
                profile: FaultProfile::EarlyOnset,
            },
        );
    }
    sim
}

#[test]
fn sealed_incidents_and_exposition_are_mode_invariant_over_the_wire() {
    let fetch = |exec: ExecMode| {
        let mut sim = faulted_sim(8, exec);
        sim.run_for(SimDuration::from_minutes(3.0), SimDuration::from_secs(0.5))
            .expect("faulted run completes");
        let gateway = sim.attach_gateway(GatewayConfig::new());
        let client = GatewayClient::connect(gateway, 1);

        let summaries = client.incidents().expect("ListIncidents serves");
        assert!(!summaries.is_empty(), "faulted run sealed no incidents");
        assert!(
            summaries
                .iter()
                .any(|s| matches!(s.trigger, IncidentTrigger::DcCrashed { .. })),
            "the DC crash window must be among the sealed triggers"
        );
        for s in &summaries {
            // The id is pure: master seed ⊕ trigger ⊕ step, nothing else.
            assert_eq!(
                s.id,
                incident_id(SEED, &s.trigger, s.step),
                "served id is not recomputable from the summary"
            );
        }
        let ids: Vec<u64> = summaries.iter().map(|s| s.id).collect();
        let bundles = summaries
            .iter()
            .map(|s| {
                client
                    .incident(s.id)
                    .expect("listed incident serves")
                    .to_json()
                    .expect("incident serializes")
            })
            .collect::<Vec<_>>()
            .join("\n");
        let exposition = client.metrics().expect("GetMetrics serves").exposition;
        (ids, bundles, exposition)
    };

    let (ref_ids, ref_bundles, ref_exposition) = fetch(ExecMode::Sequential);
    for workers in [2, 4, 8] {
        let (ids, bundles, exposition) = fetch(ExecMode::Parallel { workers });
        assert_eq!(ref_ids, ids, "incident ids diverged at {workers} workers");
        assert_eq!(
            ref_bundles, bundles,
            "incident JSON diverged at {workers} workers"
        );
        assert_eq!(
            ref_exposition, exposition,
            "text exposition diverged at {workers} workers"
        );
    }
}

#[test]
fn sealed_incident_survives_a_wal_crash_restore_byte_identically() {
    let dt = SimDuration::from_secs(0.5);

    // The uninterrupted reference run.
    let mut reference = faulted_sim(4, ExecMode::Sequential);
    reference
        .run_for(SimDuration::from_secs(180.0), dt)
        .expect("reference run completes");
    let crash_incidents: Vec<_> = reference
        .flight_recorder()
        .incidents()
        .into_iter()
        .filter(|s| matches!(s.trigger, IncidentTrigger::DcCrashed { .. }))
        .collect();
    assert!(
        !crash_incidents.is_empty(),
        "the DC crash window sealed no incident"
    );

    // The same scenario, but the PDME is torn down at t = 120 s — after
    // the DC-crash incident sealed — and rebuilt from snapshot + WAL.
    let mut restored = faulted_sim(4, ExecMode::Sequential);
    restored
        .run_for(SimDuration::from_secs(120.0), dt)
        .expect("pre-crash segment completes");
    restored
        .crash_restore_pdme()
        .expect("restore from the store");
    restored
        .run_for(SimDuration::from_secs(60.0), dt)
        .expect("post-restore segment completes");

    for s in &crash_incidents {
        let a = reference
            .flight_recorder()
            .incident(s.id)
            .expect("reference retains the incident")
            .to_json()
            .expect("incident serializes");
        let b = restored
            .flight_recorder()
            .incident(s.id)
            .expect("incident survives the crash-restore")
            .to_json()
            .expect("incident serializes");
        assert_eq!(a, b, "incident {:016x} changed across the restore", s.id);
    }

    // The restore is itself a trigger edge with a recomputable id.
    let restores: Vec<_> = restored
        .flight_recorder()
        .incidents()
        .into_iter()
        .filter(|s| matches!(s.trigger, IncidentTrigger::PdmeCrashRestore))
        .collect();
    assert_eq!(restores.len(), 1, "exactly one restore incident");
    assert_eq!(
        restores[0].id,
        incident_id(SEED, &IncidentTrigger::PdmeCrashRestore, restores[0].step)
    );
    assert!(
        reference
            .flight_recorder()
            .incidents()
            .iter()
            .all(|s| !matches!(s.trigger, IncidentTrigger::PdmeCrashRestore)),
        "the uninterrupted run must not see a restore trigger"
    );
}

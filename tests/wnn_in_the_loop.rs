//! §6.2 integration: a trained WNN attached to a running Data
//! Concentrator contributes reports to the PDME alongside DLI — the
//! "designed for integration of Wavelet Neural Net ... from Georgia
//! Tech" milestone (§3.3), exercised end to end.

use mpros::chiller::fault::{FaultProfile, FaultSeed};
use mpros::core::{KnowledgeSourceId, MachineCondition, SimDuration, SimTime};
use mpros::sim::{ShipboardSim, ShipboardSimConfig};
use mpros::wnn::{DatasetBuilder, TrainParams, WnnClassifier, WnnConfig};

#[test]
fn wnn_reports_flow_to_the_pdme() {
    // Train the compact classifier (its class set includes the fault we
    // will seed).
    let config = WnnConfig::small_test();
    let dataset = DatasetBuilder::new(config.clone(), 2).build().unwrap();
    let clf = WnnClassifier::train(
        config,
        &dataset,
        &TrainParams {
            epochs: 250,
            learning_rate: 0.02,
            ..Default::default()
        },
    )
    .unwrap();
    // Persistence round trip on the way in — the artifact a shipboard
    // installation would load.
    let clf = WnnClassifier::from_json(&clf.to_json().unwrap()).unwrap();

    let mut sim = ShipboardSim::new(
        ShipboardSimConfig::new()
            .with_dc_count(1)
            .with_seed(3)
            .with_survey_period(SimDuration::from_secs(30.0)),
    )
    .unwrap();
    sim.dc_mut(0).attach_wnn(clf);
    sim.seed_fault(
        0,
        FaultSeed {
            condition: MachineCondition::MotorImbalance,
            onset: SimTime::ZERO,
            time_to_failure: SimDuration::from_secs(1.0),
            profile: FaultProfile::Step(0.9),
        },
    );
    sim.run_for(SimDuration::from_minutes(3.0), SimDuration::from_secs(0.25))
        .unwrap();

    let reports = sim
        .pdme()
        .reports_for_machine(mpros::core::MachineId::new(1));
    let wnn_ks = KnowledgeSourceId::new(13); // DC 1, WNN slot
    let wnn_reports: Vec<_> = reports
        .iter()
        .filter(|r| r.knowledge_source == wnn_ks)
        .collect();
    assert!(
        !wnn_reports.is_empty(),
        "WNN contributed nothing; sources seen: {:?}",
        reports
            .iter()
            .map(|r| r.knowledge_source)
            .collect::<Vec<_>>()
    );
    // Live blocks come from an unseen plant (different noise seed and
    // load than the training grid) and the throttle keeps only a couple
    // of WNN reports; what the integration must guarantee is that the
    // WNN called the seeded truth at least once (distribution-shift
    // accuracy itself is measured by exp_wnn_accuracy).
    assert!(
        wnn_reports
            .iter()
            .any(|r| r.condition == MachineCondition::MotorImbalance),
        "WNN never called the seeded fault: {:?}",
        wnn_reports.iter().map(|r| r.condition).collect::<Vec<_>>()
    );
    // And DLI agreed, so fusion reinforced the belief.
    let fused = sim.pdme().fusion().diagnostic().belief(
        mpros::core::MachineId::new(1),
        MachineCondition::MotorImbalance,
    );
    assert!(fused > 0.8, "fused belief {fused}");
}

//! Fleet-plane contracts, end to end through `Fleet`:
//!
//! * **Determinism** — for the same seeded fleet scenario, every fleet
//!   response (the raw wire bytes, version stamps, rollup, prognostic
//!   fusion and subscription history included) is identical whether
//!   each ship stepped sequentially or across 2/4/8 pool workers, *and*
//!   whatever order the shards were visited in within each fleet round
//!   (including one scoped thread per shard). This lifts the
//!   `tests/gateway_serving.rs` contract one level: a fleet response is
//!   a pure function of (fleet version, request).
//! * **Fleet-size independence** — ship 0 serves the same bytes whether
//!   it sails alone or in a four-ship fleet, because ship seeds derive
//!   from the fleet seed and the ship id alone.
//! * **Crash isolation** — crashing one shard mid-run leaves every
//!   other shard's served bytes unchanged, the rollup reports the shard
//!   unavailable, and ship-scoped requests against it answer
//!   `shard_unavailable` until the shard is restored.

use mpros::chiller::fault::{FaultProfile, FaultSeed};
use mpros::core::{DcId, FaultPlan, MachineCondition, SimDuration, SimTime};
use mpros::fleet::{
    decode_fleet_response, encode_fleet_request, Fleet, FleetConfig, FleetRequest, FleetResponse,
};
use mpros::gateway::{encode_request, GatewayRequest};
use mpros::sim::{ExecMode, ShipboardSimConfig};
use mpros::telemetry::SloPolicy;

const SHIPS: usize = 3;
const ROUNDS: usize = 120;
const POLL_EVERY: usize = 30;
const DT_SECS: f64 = 1.0;
/// Frames before the final request script: the registering subscribe
/// plus the mid-run polls.
const PRELUDE: usize = 1 + ROUNDS / POLL_EVERY;

/// The reference fleet scenario: three ships, four DCs each, a bearing
/// defect on every ship's first plant (so prognostics exist to fuse),
/// and staggered DC crash windows on ships 0 and 1 (so supervision
/// edges flow into the fleet subscription stream).
fn build_fleet(exec: ExecMode, parallel_ships: bool) -> Fleet {
    let mut fleet = Fleet::new(
        FleetConfig::new()
            .with_ship_count(SHIPS)
            .with_seed(11)
            .with_ship(
                ShipboardSimConfig::new()
                    .with_dc_count(4)
                    .with_survey_period(SimDuration::from_secs(30.0))
                    .with_dc_timeout(SimDuration::from_secs(15.0))
                    .with_slo(SloPolicy::standard(30.0, 120.0, 0.9))
                    .with_exec(exec),
            )
            .with_ship_fault_plan(
                0,
                FaultPlan::none().with_dc_crash(
                    DcId::new(2),
                    SimTime::from_secs(40.0),
                    SimTime::from_secs(80.0),
                ),
            )
            .with_ship_fault_plan(
                1,
                FaultPlan::none().with_dc_crash(
                    DcId::new(3),
                    SimTime::from_secs(60.0),
                    SimTime::from_secs(100.0),
                ),
            )
            .with_parallel_ships(parallel_ships),
    )
    .expect("fleet builds");
    for ship in 0..SHIPS {
        fleet.ship_mut(ship).seed_fault(
            0,
            FaultSeed {
                condition: MachineCondition::MotorBearingDefect,
                onset: SimTime::ZERO,
                time_to_failure: SimDuration::from_minutes(8.0),
                profile: FaultProfile::EarlyOnset,
            },
        );
    }
    fleet
}

fn call(fleet: &Fleet, req: &FleetRequest) -> Vec<u8> {
    fleet
        .gateway()
        .handle_frame(encode_fleet_request(req).expect("request encodes"))
        .expect("request serves")
        .to_vec()
}

/// Run the reference scenario stepping shards in `order` each round
/// (or one scoped thread per shard when `parallel_ships`), polling the
/// fleet subscription on a fixed cadence, then answer a fixed request
/// script from the final fleet snapshot. Returns every raw response
/// frame, mid-run polls included.
fn fleet_fingerprint(exec: ExecMode, order: &[usize], parallel_ships: bool) -> Vec<Vec<u8>> {
    let mut fleet = build_fleet(exec, parallel_ships);
    let mut frames = Vec::new();
    // Register the subscriber before any edges, so every schedule
    // queues the same delta history.
    frames.push(call(&fleet, &FleetRequest::Subscribe { session: 42 }));

    let dt = SimDuration::from_secs(DT_SECS);
    for round in 1..=ROUNDS {
        if parallel_ships {
            fleet.step(dt).expect("fleet step");
        } else {
            fleet.step_permuted(dt, order).expect("fleet step");
        }
        if round % POLL_EVERY == 0 {
            frames.push(call(&fleet, &FleetRequest::Subscribe { session: 42 }));
        }
    }

    let mut script = vec![
        FleetRequest::ListShips,
        FleetRequest::GetFleetRollup,
        FleetRequest::GetShipIcas { ship: 9 }, // unknown-ship leg
        FleetRequest::Subscribe { session: 42 },
    ];
    for ship in 0..SHIPS as u64 {
        script.push(FleetRequest::GetShipIcas { ship });
        script.push(FleetRequest::ForShip {
            ship,
            request: GatewayRequest::GetIcas,
        });
        script.push(FleetRequest::ForShip {
            ship,
            request: GatewayRequest::GetSloVerdict,
        });
        script.push(FleetRequest::ForShip {
            ship,
            request: GatewayRequest::GetCounters,
        });
        script.push(FleetRequest::ForShip {
            ship,
            request: GatewayRequest::GetPrognosticVector {
                machine: 1,
                condition_id: MachineCondition::MotorBearingDefect.index(),
            },
        });
    }
    frames.extend(script.iter().map(|req| call(&fleet, req)));
    frames
}

fn decoded(frame: &[u8]) -> FleetResponse {
    decode_fleet_response(bytes::Bytes::copy_from_slice(frame)).expect("response decodes")
}

#[test]
fn fleet_responses_are_byte_identical_across_exec_modes_and_interleavings() {
    let reference = fleet_fingerprint(ExecMode::Sequential, &[0, 1, 2], false);

    // Guard against vacuity before comparing bytes: the subscription
    // stream must carry real per-ship edges...
    let history: usize = reference
        .iter()
        .map(|f| match decoded(f) {
            FleetResponse::FleetDeltas {
                deltas, dropped, ..
            } => {
                assert_eq!(dropped, 0, "the per-cadence poller must never drop");
                deltas.len()
            }
            _ => 0,
        })
        .sum();
    assert!(
        history >= 2,
        "expected supervision edges from two crash windows, saw {history}"
    );
    // ...the rollup must fuse real prognostics over every ship and
    // carry a real machine census...
    match decoded(&reference[PRELUDE + 1]) {
        FleetResponse::FleetRollup {
            fleet_version,
            rollup,
            ..
        } => {
            assert_eq!(fleet_version, ROUNDS as u64 + 1);
            assert_eq!(rollup.ship_count, SHIPS);
            assert_eq!(rollup.available_ships.len(), SHIPS);
            assert_eq!(rollup.machines.len(), 4, "four machine classes");
            assert!(!rollup.prognostics.is_empty(), "no fleet prognostics fused");
            assert!(
                rollup.prognostics.iter().any(|p| p.ships.len() == SHIPS),
                "no curve fused across every ship"
            );
        }
        other => panic!("wrong response {other:?}"),
    }
    // ...the unknown-ship leg must answer as such, and every ship's
    // ICAS must carry its machines.
    match decoded(&reference[PRELUDE + 2]) {
        FleetResponse::ShipUnavailable { detail, .. } => assert_eq!(detail, "unknown_ship"),
        other => panic!("wrong response {other:?}"),
    }
    match decoded(&reference[PRELUDE + 4]) {
        FleetResponse::ShipIcas { icas, .. } => assert_eq!(icas.machines.len(), 4),
        other => panic!("wrong response {other:?}"),
    }

    // Shard-visit interleavings under sequential in-ship execution.
    for order in [[2usize, 1, 0], [1, 2, 0], [0, 2, 1]] {
        let permuted = fleet_fingerprint(ExecMode::Sequential, &order, false);
        assert_eq!(
            reference, permuted,
            "fleet bytes diverged stepping shards in order {order:?}"
        );
    }
    // In-ship worker pools, and one scoped thread per shard.
    for workers in [2, 4, 8] {
        let parallel = fleet_fingerprint(ExecMode::Parallel { workers }, &[0, 1, 2], false);
        assert_eq!(
            reference, parallel,
            "fleet bytes diverged at {workers} in-ship workers"
        );
    }
    let threaded = fleet_fingerprint(ExecMode::Parallel { workers: 4 }, &[0, 1, 2], true);
    assert_eq!(
        reference, threaded,
        "fleet bytes diverged with one thread per shard"
    );
}

#[test]
fn ship_zero_bytes_are_independent_of_fleet_size() {
    // Ship seeds derive from (fleet seed, ship id) alone, so ship 0
    // must serve identical bytes alone and in company. Drive the
    // comparison over the v5 compatibility path: raw single-ship frames
    // route to shard 0 of either fleet.
    let mut solo = build_fleet(ExecMode::Sequential, false);
    // build_fleet configures three ships; rebuild the same scenario at
    // one ship (the ship-1 fault plan simply has no shard to bind to).
    let mut solo_cfg = FleetConfig::new()
        .with_ship_count(1)
        .with_seed(11)
        .with_ship(
            ShipboardSimConfig::new()
                .with_dc_count(4)
                .with_survey_period(SimDuration::from_secs(30.0))
                .with_dc_timeout(SimDuration::from_secs(15.0))
                .with_slo(SloPolicy::standard(30.0, 120.0, 0.9)),
        );
    solo_cfg = solo_cfg.with_ship_fault_plan(
        0,
        FaultPlan::none().with_dc_crash(
            DcId::new(2),
            SimTime::from_secs(40.0),
            SimTime::from_secs(80.0),
        ),
    );
    let mut alone = Fleet::new(solo_cfg).expect("solo fleet builds");
    alone.ship_mut(0).seed_fault(
        0,
        FaultSeed {
            condition: MachineCondition::MotorBearingDefect,
            onset: SimTime::ZERO,
            time_to_failure: SimDuration::from_minutes(8.0),
            profile: FaultProfile::EarlyOnset,
        },
    );

    let dt = SimDuration::from_secs(DT_SECS);
    for _ in 0..60 {
        solo.step(dt).expect("company fleet steps");
        alone.step(dt).expect("solo fleet steps");
    }

    for req in [
        GatewayRequest::GetIcas,
        GatewayRequest::GetCounters,
        GatewayRequest::GetSloVerdict,
        GatewayRequest::GetMachineStatus { machine: 1 },
    ] {
        let frame = encode_request(&req).expect("request encodes");
        let in_company = solo
            .gateway()
            .handle_frame(frame.clone())
            .expect("company serves")
            .to_vec();
        let while_alone = alone
            .gateway()
            .handle_frame(frame)
            .expect("solo serves")
            .to_vec();
        assert_eq!(
            in_company, while_alone,
            "ship 0 bytes depend on fleet size for {req:?}"
        );
    }
}

#[test]
fn crashing_one_shard_leaves_the_others_bytes_unchanged() {
    let dt = SimDuration::from_secs(DT_SECS);
    let half = ROUNDS / 2;

    // Control: the same fleet with no crash.
    let mut control = build_fleet(ExecMode::Sequential, false);
    for _ in 0..ROUNDS {
        control.step(dt).expect("control steps");
    }

    // Subject: ship 1's shard crashes halfway through.
    let mut fleet = build_fleet(ExecMode::Sequential, false);
    for _ in 0..half {
        fleet.step(dt).expect("subject steps");
    }
    fleet.crash_shard(1);
    let pinned_before_crash = match decoded(&call(&fleet, &FleetRequest::ListShips)) {
        FleetResponse::Ships { ships, .. } => ships[1].snapshot_version,
        other => panic!("wrong response {other:?}"),
    };
    for _ in half..ROUNDS {
        fleet.step(dt).expect("subject steps around the crash");
    }

    // The rollup reports the shard unavailable; fleet versions agree
    // with the control (a crash never perturbs the publish cadence).
    match decoded(&call(&fleet, &FleetRequest::GetFleetRollup)) {
        FleetResponse::FleetRollup {
            fleet_version,
            rollup,
            ..
        } => {
            assert_eq!(fleet_version, control.version());
            assert_eq!(rollup.unavailable_ships, vec![1]);
            assert_eq!(rollup.available_ships, vec![0, 2]);
            assert_eq!(rollup.slo.unavailable_ships, vec![1]);
        }
        other => panic!("wrong response {other:?}"),
    }
    // Ship-scoped requests against the crashed shard degrade loudly...
    match decoded(&call(&fleet, &FleetRequest::GetShipIcas { ship: 1 })) {
        FleetResponse::ShipUnavailable { detail, .. } => assert_eq!(detail, "shard_unavailable"),
        other => panic!("wrong response {other:?}"),
    }
    // ...while the surviving shards serve byte-for-byte what the
    // crash-free control serves.
    for ship in [0u64, 2] {
        for req in [
            GatewayRequest::GetIcas,
            GatewayRequest::GetCounters,
            GatewayRequest::GetPrognosticVector {
                machine: 1,
                condition_id: MachineCondition::MotorBearingDefect.index(),
            },
        ] {
            let probe = FleetRequest::ForShip { ship, request: req };
            assert_eq!(
                call(&fleet, &probe),
                call(&control, &probe),
                "ship {ship} bytes perturbed by ship 1's crash"
            );
        }
    }

    // Restoring the shard brings it back: it resumes stepping from its
    // crash-restored state and the rollup counts it again.
    fleet.restore_shard(1).expect("shard restores");
    fleet.step(dt).expect("post-restore step");
    match decoded(&call(&fleet, &FleetRequest::ListShips)) {
        FleetResponse::Ships { ships, .. } => {
            assert!(ships[1].available);
            assert!(
                ships[1].snapshot_version > pinned_before_crash,
                "restored shard did not step"
            );
        }
        other => panic!("wrong response {other:?}"),
    }
    match decoded(&call(&fleet, &FleetRequest::GetFleetRollup)) {
        FleetResponse::FleetRollup { rollup, .. } => {
            assert_eq!(rollup.available_ships, vec![0, 1, 2]);
            assert!(rollup.unavailable_ships.is_empty());
        }
        other => panic!("wrong response {other:?}"),
    }
}

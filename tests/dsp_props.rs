//! Property-based conformance for the DSP substrate: round-trips,
//! perfect reconstruction, window identities, and bit-identical scratch
//! reuse through the [`DspContext`] hot path.

use mpros_signal::dwt::{Wavelet, WaveletDecomposition};
use mpros_signal::fft::{fft_real, ifft_real};
use mpros_signal::{DspContext, Spectrum, Window};
use proptest::prelude::*;

/// Largest proptest block: signals are sliced from one generated pool.
const POOL: usize = 4096;

fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// FFT → IFFT round-trips within 1e-9 at *every* supported power-of-two
/// size — the deterministic sweep the property test below samples from.
#[test]
fn fft_roundtrip_all_power_of_two_sizes() {
    for exp in 1..=14usize {
        let n = 1 << exp;
        let x: Vec<f64> = (0..n)
            .map(|i| ((i * 37 + exp) as f64 * 0.63).sin())
            .collect();
        let back = ifft_real(&fft_real(&x).expect("forward")).expect("inverse");
        let err = max_abs_diff(&x, &back);
        assert!(err <= 1e-9, "n={n}: round-trip error {err}");
    }
}

proptest! {
    /// Round-trip at a random power-of-two size with random contents.
    #[test]
    fn fft_ifft_roundtrip(
        exp in 1usize..=12,
        vals in proptest::collection::vec(-100.0..100.0f64, POOL..=POOL)
    ) {
        let x = &vals[..1 << exp];
        let back = ifft_real(&fft_real(x).expect("forward")).expect("inverse");
        let scale = x.iter().fold(1.0f64, |m, v| m.max(v.abs()));
        prop_assert!(max_abs_diff(x, &back) <= 1e-9 * scale);
    }

    /// Multi-level DWT reconstructs the signal perfectly, for both
    /// wavelet families and every level depth the block supports —
    /// through the legacy pyramid and the reusable workspace alike.
    #[test]
    fn dwt_perfect_reconstruction(
        levels in 1usize..=5,
        haar in 0usize..2,
        vals in proptest::collection::vec(-10.0..10.0f64, 1024..=1024)
    ) {
        let wavelet = if haar == 1 { Wavelet::Haar } else { Wavelet::Daubechies4 };
        let decomp = WaveletDecomposition::analyze(&vals, wavelet, levels).expect("analyzes");
        let back = decomp.synthesize().expect("synthesizes");
        prop_assert!(max_abs_diff(&vals, &back) <= 1e-9);

        let mut dwt = mpros_signal::MultiLevelDwt::new();
        dwt.analyze_into(&vals, wavelet, levels).expect("analyzes");
        let mut rec = Vec::new();
        dwt.reconstruct_into(&mut rec).expect("reconstructs");
        prop_assert!(max_abs_diff(&vals, &rec) <= 1e-9);
    }

    /// Windows are symmetric (`w[i] = w[n-1-i]`) and their coherent gain
    /// is exactly the mean of the coefficients.
    #[test]
    fn window_symmetry_and_coherent_gain(n in 2usize..=1024, which in 0usize..5) {
        let window = Window::ALL[which];
        for i in 0..n {
            let (a, b) = (window.coefficient(i, n), window.coefficient(n - 1 - i, n));
            prop_assert!((a - b).abs() < 1e-12, "{}[{i}] asymmetric: {a} vs {b}", window.name());
        }
        let mean = (0..n).map(|i| window.coefficient(i, n)).sum::<f64>() / n as f64;
        let gain = window.coherent_gain(n);
        prop_assert!((gain - mean).abs() < 1e-15, "gain {gain} vs mean {mean}");
    }

    /// Repeated calls through one context reuse scratch buffers and
    /// cached plans yet stay bit-identical — including after the plan
    /// cache has been stretched across block sizes.
    #[test]
    fn scratch_reuse_is_bit_identical(
        vals in proptest::collection::vec(-50.0..50.0f64, POOL..=POOL)
    ) {
        let fs = 16_384.0;
        let mut ctx = DspContext::new();
        let mut first = Spectrum::default();
        let mut again = Spectrum::default();
        ctx.spectrum_into(&vals, fs, Window::Hann, &mut first).expect("first");
        // Stretch the scratch arena with a different (smaller) size in
        // between, then recompute the original.
        let mut small = Spectrum::default();
        ctx.spectrum_into(&vals[..256], fs, Window::Blackman, &mut small).expect("small");
        ctx.spectrum_into(&vals, fs, Window::Hann, &mut again).expect("again");
        prop_assert_eq!(first.amplitudes().len(), again.amplitudes().len());
        for (a, b) in first.amplitudes().iter().zip(again.amplitudes()) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
        let reuses = ctx.stats().scratch_reuses;
        prop_assert!(reuses > 0, "second pass must reuse scratch, stats: {:?}", ctx.stats());

        let mut cep1 = Vec::new();
        let mut cep2 = Vec::new();
        ctx.cepstrum_into(&vals[..2048], &mut cep1).expect("cepstrum");
        ctx.cepstrum_into(&vals[..2048], &mut cep2).expect("cepstrum again");
        for (a, b) in cep1.iter().zip(&cep2) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

//! Allocation-regression gate for the DSP hot path.
//!
//! A counting global allocator wraps the system allocator; the test runs
//! one full DC survey pass (acquisition → spectral features → WNN
//! preprocessing) to warm every scratch buffer and cached plan, then
//! runs a second pass at a different sim time with counting enabled and
//! asserts that the steady state performs **zero** heap allocations.
//!
//! This file holds exactly one `#[test]` so no sibling test can allocate
//! on another thread while the counter is armed.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use mpros_chiller::plant::{ChillerPlant, PlantConfig};
use mpros_chiller::vibration::AccelLocation;
use mpros_core::{MachineId, SimTime};
use mpros_dc::hw::{AcquisitionChain, HwConfig};
use mpros_dli::{SpectralFeatures, SurveyScratch, VibrationSurvey};
use mpros_signal::DspContext;
use mpros_wnn::WnnConfig;

/// Wraps [`System`]; counts alloc/realloc/alloc_zeroed while armed.
struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

/// One steady-state survey pass: acquire every channel into the reused
/// workspace, extract spectral features, and build the WNN input vector
/// — the exact per-step DSP work a `DataConcentrator` performs.
#[allow(clippy::too_many_arguments)]
fn survey_pass(
    plant: &ChillerPlant,
    chain: &mut AcquisitionChain,
    survey: &mut VibrationSurvey,
    ctx: &mut DspContext,
    scratch: &mut SurveyScratch,
    features: &mut SpectralFeatures,
    wnn: &WnnConfig,
    wnn_features: &mut Vec<f64>,
    t0: SimTime,
) {
    survey.load = plant.load_at(t0);
    chain.survey_into(plant, t0, &mut survey.blocks);
    SpectralFeatures::extract_into(ctx, survey, scratch, features).expect("feature extraction");
    wnn.extract_features_into(ctx, &survey.blocks, survey.load, wnn_features)
        .expect("wnn preprocessing");
}

#[test]
fn steady_state_survey_performs_zero_dsp_allocations() {
    let plant = ChillerPlant::new(PlantConfig::new(MachineId::new(1), 42));
    let hw = HwConfig::standard();
    let channels = hw.channels.len();
    let mut chain = AcquisitionChain::new(hw).expect("chain builds");

    let mut survey = VibrationSurvey {
        train: plant.train().clone(),
        load: 0.0,
        sample_rate: 16_384.0,
        blocks: Vec::new(),
    };
    while survey.blocks.len() < channels {
        survey
            .blocks
            .push((AccelLocation::MotorDriveEnd, Vec::new()));
    }
    let mut ctx = DspContext::new();
    let mut scratch = SurveyScratch::default();
    let mut features = SpectralFeatures::default();
    let wnn = WnnConfig::small_test();
    let mut wnn_features = Vec::new();

    // Cold pass: sizes every block, scratch buffer, and FFT plan.
    survey_pass(
        &plant,
        &mut chain,
        &mut survey,
        &mut ctx,
        &mut scratch,
        &mut features,
        &wnn,
        &mut wnn_features,
        SimTime::from_secs(0.0),
    );
    let cold_stats = ctx.stats();
    assert!(cold_stats.plans_created > 0, "cold pass must create plans");

    // Warm pass at a different instant: everything must be reused.
    ALLOCATIONS.store(0, Ordering::SeqCst);
    ARMED.store(true, Ordering::SeqCst);
    survey_pass(
        &plant,
        &mut chain,
        &mut survey,
        &mut ctx,
        &mut scratch,
        &mut features,
        &wnn,
        &mut wnn_features,
        SimTime::from_secs(120.0),
    );
    ARMED.store(false, Ordering::SeqCst);
    let heap_hits = ALLOCATIONS.load(Ordering::SeqCst);

    let warm_stats = ctx.stats();
    assert_eq!(
        warm_stats.plans_created, cold_stats.plans_created,
        "warm pass must not create new FFT plans"
    );
    assert!(
        warm_stats.scratch_reuses > cold_stats.scratch_reuses,
        "warm pass must reuse scratch buffers"
    );
    assert_eq!(
        heap_hits, 0,
        "steady-state DC survey allocated {heap_hits} times in the DSP path \
         (plans {:?} -> {:?})",
        cold_stats, warm_stats
    );
}

//! §4.9 / §6.3 survivability end to end: a seeded fault campaign —
//! DC crash with restart, network partition riding the acked-retry
//! transport, a PDME stall — must degrade the fleet *visibly* (OOSM
//! status, ICAS export, journal) and then converge back to the no-fault
//! baseline once every window heals. The acked outbox must carry every
//! report across the outages: `net.expired` stays zero whenever the
//! partitions heal inside the retry budget.

use mpros::chiller::fault::{FaultProfile, FaultSeed};
use mpros::core::{
    DcId, FaultPlan, FaultTarget, MachineCondition, MachineId, SimDuration, SimTime,
};
use mpros::network::{decode_message, encode_message, NetMessage};
use mpros::pdme::icas::export_snapshot;
use mpros::sim::{ShipboardSim, ShipboardSimConfig};
use proptest::prelude::*;

const DT: f64 = 0.5;
const DC_TIMEOUT: f64 = 30.0;

/// Three DCs, each with a developing plant fault so every station has
/// something to say (and to re-detect after an outage).
fn fleet(fault_plan: FaultPlan) -> ShipboardSim {
    let mut sim = ShipboardSim::new(
        ShipboardSimConfig::new()
            .with_dc_count(3)
            .with_seed(41)
            .with_fault_plan(fault_plan)
            .with_dc_timeout(SimDuration::from_secs(DC_TIMEOUT))
            .with_survey_period(SimDuration::from_secs(30.0)),
    )
    .unwrap();
    for (idx, condition) in [
        (0, MachineCondition::MotorBearingDefect),
        (1, MachineCondition::GearToothWear),
        (2, MachineCondition::CondenserFouling),
    ] {
        sim.seed_fault(
            idx,
            FaultSeed {
                condition,
                onset: SimTime::ZERO,
                time_to_failure: SimDuration::from_minutes(8.0),
                profile: FaultProfile::EarlyOnset,
            },
        );
    }
    sim
}

/// The campaign under test: DC 2 crashes and restarts, DC 3 rides out
/// a partition on its outbox, and the PDME itself stalls for a spell.
fn campaign() -> FaultPlan {
    FaultPlan::none()
        .with_pdme_stall(SimTime::from_secs(45.0), SimTime::from_secs(60.0))
        .with_dc_crash(
            DcId::new(2),
            SimTime::from_secs(60.0),
            SimTime::from_secs(120.0),
        )
        .with_partition(
            FaultTarget::Dc(DcId::new(3)),
            SimTime::from_secs(90.0),
            SimTime::from_secs(150.0),
        )
}

/// High-confidence maintenance conclusions: the convergence target.
fn strong_conclusions(sim: &ShipboardSim) -> Vec<(MachineId, MachineCondition)> {
    let mut items: Vec<_> = sim
        .pdme()
        .maintenance_list()
        .iter()
        .filter(|i| i.belief > 0.5)
        .map(|i| (i.machine, i.condition))
        .collect();
    items.sort();
    items.dedup();
    items
}

#[test]
fn crashed_and_partitioned_fleet_converges_to_the_no_fault_baseline() {
    let dt = SimDuration::from_secs(DT);

    // Baseline: the same seeded ship with a calm sea.
    let mut baseline = fleet(FaultPlan::none());
    baseline
        .run_for(SimDuration::from_minutes(8.0), dt)
        .unwrap();
    let baseline_conclusions = strong_conclusions(&baseline);
    assert_eq!(
        baseline_conclusions.len(),
        3,
        "every seeded fault should reach a strong conclusion: {baseline_conclusions:?}"
    );

    // The faulted run, stopped mid-campaign to observe the degradation.
    let mut sim = fleet(campaign());
    sim.run_for(SimDuration::from_secs(110.0), dt).unwrap();
    assert!(sim.is_crashed(1), "DC 2 is inside its crash window");
    assert_eq!(
        sim.pdme().degraded_machines(),
        vec![MachineId::new(2)],
        "the crashed DC's machine is marked degraded after the timeout"
    );
    let mid = export_snapshot(sim.pdme(), sim.now(), SimDuration::from_secs(DC_TIMEOUT));
    assert_eq!(mid.machines[1].status, "degraded");
    assert!(
        !mid.data_concentrators[1].alive,
        "crashed DC looks dead to ICAS"
    );

    // Let every window heal and the retries drain.
    sim.run_for(
        SimDuration::from_minutes(8.0) - SimDuration::from_secs(110.0),
        dt,
    )
    .unwrap();

    // Reliability: the outbox retried across the outages and never gave
    // a frame up — the partitions healed inside the retry budget.
    let stats = sim.network().stats();
    assert!(
        stats.retries > 0,
        "the partition must exercise the retry path"
    );
    assert_eq!(
        stats.expired, 0,
        "no report batch may expire when outages heal in budget"
    );
    assert!(stats.dropped > 0, "partitioned frames are counted dropped");

    // Recovery lifecycle is journaled: degrade, recover, re-download,
    // and the machines coming back as fresh reports land.
    let events = sim.telemetry().events();
    let kinds: Vec<&str> = events.iter().map(|e| e.kind.as_str()).collect();
    for kind in [
        "dc_degraded",
        "dc_recovered",
        "machine_degraded",
        "machine_recovered",
        "pdme_stall",
        "pdme_resume",
    ] {
        assert!(kinds.contains(&kind), "missing journal event {kind:?}");
    }
    assert!(
        sim.dc_epoch(1) >= 1,
        "the restarted DC rejoined under a fresh batch epoch"
    );

    // Convergence: the healed fleet reaches the same strong conclusions
    // as the calm-sea baseline, every machine back to `ok`, every DC
    // alive.
    assert_eq!(strong_conclusions(&sim), baseline_conclusions);
    assert!(
        sim.pdme().degraded_machines().is_empty(),
        "fresh reports cleared every degraded mark"
    );
    let end = export_snapshot(sim.pdme(), sim.now(), SimDuration::from_secs(DC_TIMEOUT));
    assert!(end.machines.iter().all(|m| m.status == "ok"), "{end:?}");
    assert!(end.data_concentrators.iter().all(|d| d.alive));
    for (base, healed) in baseline
        .pdme()
        .maintenance_list()
        .iter()
        .zip(end.machines.iter().flat_map(|m| &m.conditions))
    {
        // Beliefs need not match bit-for-bit (the crash lost volatile
        // detector state), but the healed fleet must be no less sure.
        if healed.description == base.condition.to_string() {
            assert!(
                healed.belief > base.belief - 0.25,
                "healed belief {} collapsed vs baseline {}",
                healed.belief,
                base.belief
            );
        }
    }
}

#[test]
fn pdme_stall_defers_fusion_without_losing_reports() {
    let plan =
        FaultPlan::none().with_pdme_stall(SimTime::from_secs(60.0), SimTime::from_secs(120.0));
    let dt = SimDuration::from_secs(DT);
    let mut sim = fleet(plan);
    sim.run_for(SimDuration::from_secs(59.0), dt).unwrap();
    let before = sim.pdme().reports_received();
    assert!(before > 0, "first surveys land before the stall");
    // Inside the stall nothing reaches the executive...
    sim.run_for(SimDuration::from_secs(55.0), dt).unwrap();
    assert!(sim.is_pdme_stalled());
    assert_eq!(sim.pdme().reports_received(), before);
    // ...and after it lifts, the queued traffic drains — nothing lost.
    sim.run_for(SimDuration::from_minutes(2.0), dt).unwrap();
    assert!(!sim.is_pdme_stalled());
    assert!(sim.pdme().reports_received() > before);
    assert_eq!(sim.network().stats().expired, 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The transport ack must survive the wire bit-for-bit: the retry
    /// protocol rests on `(dc, epoch, last_seq)` round-tripping exactly.
    #[test]
    fn ack_frames_roundtrip_the_codec(
        dc in 1u64..1000,
        epoch in 0u64..64,
        last_seq in 0u64..u64::MAX / 2,
    ) {
        let msg = NetMessage::Ack {
            dc: DcId::new(dc),
            epoch,
            last_seq,
        };
        let back = decode_message(encode_message(&msg).unwrap()).unwrap();
        prop_assert_eq!(back, msg);
    }
}

//! Offline shim for `serde_derive`.
//!
//! Hand-rolled derive macros (no `syn`/`quote` available offline): the
//! input item is parsed with the raw `proc_macro` API — only the shape
//! (struct/enum, field and variant names) matters, field *types* are
//! never needed because the generated code lets inference pick the
//! right `Deserialize` impl from the constructor position — and the
//! output impl is rendered as a string and re-parsed.
//!
//! Supported shapes (everything MPROS derives on): named structs,
//! tuple/newtype structs, unit-only enums, enums mixing unit / newtype
//! / tuple / struct variants, and `#[serde(transparent)]`. Generics are
//! not supported. JSON conventions match real serde: externally tagged
//! enums, newtype structs as their inner value, `Option` ↔ `null`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
struct Input {
    name: String,
    kind: Kind,
}

#[derive(Debug)]
enum Kind {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<String>),
}

/// Derive the shim's `serde::Serialize` (value-model rendering).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_serialize(&parsed)
        .parse()
        .expect("serde_derive shim generated invalid Serialize impl")
}

/// Derive the shim's `serde::Deserialize` (value-model rebuilding).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    gen_deserialize(&parsed)
        .parse()
        .expect("serde_derive shim generated invalid Deserialize impl")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Input {
    let mut toks = input.into_iter().peekable();
    skip_attrs_and_vis(&mut toks);
    let item_kind = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    if matches!(toks.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generics are not supported (type {name})");
    }
    let kind = match item_kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Kind::UnitStruct,
            other => panic!("serde_derive shim: unsupported struct body {other:?}"),
        },
        "enum" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            other => panic!("serde_derive shim: expected enum body, got {other:?}"),
        },
        other => panic!("serde_derive shim: cannot derive for `{other}` items"),
    };
    Input { name, kind }
}

/// Skip leading `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                // The bracketed attribute body.
                toks.next();
            }
            Some(TokenTree::Ident(i)) if i.to_string() == "pub" => {
                toks.next();
                if matches!(
                    toks.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    toks.next();
                }
            }
            _ => return,
        }
    }
}

/// Parse `name: Type, ...` bodies: field names at angle-bracket depth 0.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        match toks.next() {
            Some(TokenTree::Ident(i)) => fields.push(i.to_string()),
            None => break,
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        }
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected `:`, got {other:?}"),
        }
        skip_type(&mut toks);
    }
    fields
}

/// Consume type tokens up to (and including) the next top-level comma.
fn skip_type(toks: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut depth = 0i32;
    for tok in toks.by_ref() {
        if let TokenTree::Punct(p) = &tok {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => return,
                _ => {}
            }
        }
    }
}

/// Count comma-separated fields of a tuple struct / tuple variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut toks = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        if toks.peek().is_none() {
            break;
        }
        count += 1;
        skip_type(&mut toks);
    }
    count
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut toks = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected variant name, got {other:?}"),
        };
        let shape = match toks.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let s = count_tuple_fields(g.stream());
                toks.next();
                VariantShape::Tuple(s)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = parse_named_fields(g.stream());
                toks.next();
                VariantShape::Struct(f)
            }
            _ => VariantShape::Unit,
        };
        // Skip an optional `= discriminant` and the trailing comma.
        skip_type(&mut toks);
        variants.push(Variant { name, shape });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => {
            let mut s = String::from("let mut m = ::serde::Map::new();\n");
            for f in fields {
                s.push_str(&format!(
                    "m.insert(\"{f}\".to_string(), ::serde::Serialize::to_value(&self.{f}));\n"
                ));
            }
            s.push_str("::serde::Value::Object(m)");
            s
        }
        Kind::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Kind::UnitStruct => "::serde::Value::Null".to_string(),
        Kind::Enum(variants) => {
            let mut s = String::from("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => s.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::String(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(1) => s.push_str(&format!(
                        "{name}::{vn}(__f0) => {{\n\
                         let mut m = ::serde::Map::new();\n\
                         m.insert(\"{vn}\".to_string(), ::serde::Serialize::to_value(__f0));\n\
                         ::serde::Value::Object(m)\n}}\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        s.push_str(&format!(
                            "{name}::{vn}({}) => {{\n\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(\"{vn}\".to_string(), ::serde::Value::Array(vec![{}]));\n\
                             ::serde::Value::Object(m)\n}}\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds = fields.join(", ");
                        let mut inner = String::from("let mut inner = ::serde::Map::new();\n");
                        for f in fields {
                            inner.push_str(&format!(
                                "inner.insert(\"{f}\".to_string(), ::serde::Serialize::to_value({f}));\n"
                            ));
                        }
                        s.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => {{\n{inner}\
                             let mut m = ::serde::Map::new();\n\
                             m.insert(\"{vn}\".to_string(), ::serde::Value::Object(inner));\n\
                             ::serde::Value::Object(m)\n}}\n"
                        ));
                    }
                }
            }
            s.push('}');
            s
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_named_fields_de(type_path: &str, fields: &[String], map_expr: &str) -> String {
    let mut s = format!("::std::result::Result::Ok({type_path} {{\n");
    for f in fields {
        s.push_str(&format!(
            "{f}: ::serde::Deserialize::from_value({map_expr}.get(\"{f}\")\
             .unwrap_or(&::serde::Value::Null)).map_err(|e| e.in_field(\"{f}\"))?,\n"
        ));
    }
    s.push_str("})");
    s
}

fn gen_deserialize(input: &Input) -> String {
    let name = &input.name;
    let body = match &input.kind {
        Kind::NamedStruct(fields) => format!(
            "let m = match v.as_object() {{\n\
             Some(m) => m,\n\
             None => return ::std::result::Result::Err(::serde::DeError::custom(\
             \"expected object for {name}\")),\n}};\n{}",
            gen_named_fields_de(name, fields, "m")
        ),
        Kind::TupleStruct(1) => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Kind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = match v.as_array() {{\n\
                 Some(a) if a.len() == {n} => a,\n\
                 _ => return ::std::result::Result::Err(::serde::DeError::custom(\
                 \"expected {n}-element array for {name}\")),\n}};\n\
                 ::std::result::Result::Ok({name}({}))",
                items.join(", ")
            )
        }
        Kind::UnitStruct => format!("::std::result::Result::Ok({name})"),
        Kind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantShape::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}(\
                         ::serde::Deserialize::from_value(__payload)\
                         .map_err(|e| e.in_field(\"{vn}\"))?)),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet __arr = match __payload.as_array() {{\n\
                             Some(a) if a.len() == {n} => a,\n\
                             _ => return ::std::result::Result::Err(::serde::DeError::custom(\
                             \"expected {n}-element array for {name}::{vn}\")),\n}};\n\
                             ::std::result::Result::Ok({name}::{vn}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let inner = gen_named_fields_de(&format!("{name}::{vn}"), fields, "mm");
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{\nlet mm = match __payload.as_object() {{\n\
                             Some(m) => m,\n\
                             None => return ::std::result::Result::Err(::serde::DeError::custom(\
                             \"expected object payload for {name}::{vn}\")),\n}};\n{inner}\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::String(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown {name} variant {{__other}}\"))),\n}},\n\
                 ::serde::Value::Object(__m) if __m.len() == 1 => {{\n\
                 let (__k, __payload) = __m.iter().next().expect(\"len checked\");\n\
                 let _ = __payload;\n\
                 match __k.as_str() {{\n{data_arms}\
                 __other => ::std::result::Result::Err(::serde::DeError::custom(\
                 format!(\"unknown {name} variant {{__other}}\"))),\n}}\n}},\n\
                 _ => ::std::result::Result::Err(::serde::DeError::custom(\
                 \"expected externally tagged variant for {name}\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
         {body}\n}}\n}}\n"
    )
}

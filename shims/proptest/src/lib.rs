//! Offline shim for `proptest`.
//!
//! A deterministic random-testing harness with proptest's surface
//! syntax: the [`Strategy`] trait with `prop_map` / `prop_recursive` /
//! `boxed`, range and tuple and `collection::vec` strategies, a
//! `".{m,n}"` string-pattern strategy, and the [`proptest!`] /
//! [`prop_assert!`] / [`prop_oneof!`] macros. No shrinking: a failing
//! case panics with the generated inputs left in the assert message.
//! Cases are seeded per test name, so runs are reproducible.
#![forbid(unsafe_code)]

use rand::{Rng, SeedableRng, StdRng};
use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

/// Runner configuration (`cases` = iterations per property).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// The generator driving strategies; deterministic per test name.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// Seed from a test name (stable across runs and platforms).
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        TestRng {
            inner: StdRng::seed_from_u64(h),
        }
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.inner
    }
}

/// A value generator. Unlike real proptest there is no shrinking and
/// `generate` returns the value directly.
pub trait Strategy: 'static {
    /// The type of generated values.
    type Value;

    /// Produce one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> MapStrategy<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O + 'static,
    {
        MapStrategy { base: self, f }
    }

    /// Type-erase into a cloneable boxed strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Build recursive values: each level chooses between the leaf
    /// strategy (`self`) and whatever `recurse` builds from the
    /// previous level, to a maximum depth of `depth`. The
    /// `_desired_size` / `_expected_branch_size` tuning knobs of real
    /// proptest are accepted and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut level = leaf.clone();
        for _ in 0..depth {
            level = Union::new(vec![leaf.clone(), recurse(level).boxed()]).boxed();
        }
        level
    }
}

trait DynStrategy<V> {
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<V>(Arc<dyn DynStrategy<V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V: 'static> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate_dyn(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct MapStrategy<S, F> {
    base: S,
    f: F,
}

impl<S, O, F> Strategy for MapStrategy<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O + 'static,
    O: 'static,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + 'static> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between alternative strategies of one value type
/// (what [`prop_oneof!`] builds).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// A union over the given alternatives (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: 'static> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let idx = rng.rng().gen_range(0..self.options.len());
        self.options[idx].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.rng().gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

/// Minimal `".{m,n}"` regex-pattern strategy: a string of `m..=n`
/// characters drawn from a set that exercises ASCII, JSON-escaped
/// characters, and multibyte UTF-8. Other patterns fall back to short
/// alphanumeric strings.
impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        const CHARS: &[char] = &[
            'a', 'b', 'z', 'A', 'Z', '0', '9', ' ', '_', '-', '.', ',', ';', '/', '+', '*', '(',
            ')', '"', '\\', '\n', '\t', 'é', 'λ', '中', '😀',
        ];
        let (lo, hi) = parse_repeat_pattern(self).unwrap_or((0, 16));
        let len = rng.rng().gen_range(lo..=hi);
        (0..len)
            .map(|_| CHARS[rng.rng().gen_range(0..CHARS.len())])
            .collect()
    }
}

/// Parse `".{m,n}"` into `(m, n)`.
fn parse_repeat_pattern(pat: &str) -> Option<(usize, usize)> {
    let rest = pat.strip_prefix(".{")?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?))
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Inclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n }
        }
    }

    /// Strategy for `Vec<S::Value>` with sizes drawn from `size`.
    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    /// A vector of values from `elem`, sized within `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.rng().gen_range(self.size.lo..=self.size.hi);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Option<S::Value>`.
    pub struct OptionStrategy<S> {
        inner: S,
    }

    /// `None` or `Some` of the inner strategy, even odds (matching the
    /// upstream default of an unweighted `of`).
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            if rng.rng().gen_range(0..2) == 1 {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }
}

impl TestRng {
    #[doc(hidden)]
    pub fn __rng(&mut self) -> &mut StdRng {
        self.rng()
    }
}

/// Everything a property test usually imports.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, BoxedStrategy, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert inside a property test (panics with the formatted message).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*)
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// The property-test harness macro. Supports an optional
/// `#![proptest_config(...)]` header and any number of
/// `#[test] fn name(pat in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__config.cases {
                let _ = __case;
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_test("ranges");
        for _ in 0..500 {
            let v = Strategy::generate(&(3u16..9), &mut rng);
            assert!((3..9).contains(&v));
            let f = Strategy::generate(&(0.0..=1.0f64), &mut rng);
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn pattern_strategy_respects_length() {
        let mut rng = crate::TestRng::for_test("pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&".{0,40}", &mut rng);
            assert!(s.chars().count() <= 40);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_with_config(a in 0u64..10, b in 0u64..10) {
            prop_assert!(a < 10 && b < 10);
        }
    }

    proptest! {
        #[test]
        fn oneof_map_and_vec_compose(
            xs in crate::collection::vec(prop_oneof![0i64..10, 100i64..110], 1..8),
            label in ".{1,5}",
        ) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|&x| (0..10).contains(&x) || (100..110).contains(&x)));
            prop_assert!(!label.is_empty());
        }
    }

    #[test]
    fn recursive_strategy_terminates() {
        #[derive(Debug, Clone)]
        enum Tree {
            Leaf(u8),
            Node(Box<Tree>, Box<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(n) => {
                    let _ = n;
                    1
                }
                Tree::Node(a, b) => 1 + depth(a).max(depth(b)),
            }
        }
        let strat = (0u8..8)
            .prop_map(Tree::Leaf)
            .prop_recursive(4, 32, 2, |inner| {
                (inner.clone(), inner).prop_map(|(a, b)| Tree::Node(Box::new(a), Box::new(b)))
            });
        let mut rng = crate::TestRng::for_test("tree");
        for _ in 0..200 {
            let t = Strategy::generate(&strat, &mut rng);
            assert!(depth(&t) <= 5, "{t:?}");
        }
    }
}

//! Offline shim for `serde_json`: a JSON printer/parser over the value
//! model defined in the `serde` shim. Floats are printed with Rust's
//! shortest-roundtrip formatting, so a print → parse cycle preserves
//! every `f64` bit-for-bit (the behavior MPROS's protocol tests rely
//! on, equivalent to real serde_json's `float_roundtrip` feature).
#![forbid(unsafe_code)]

pub use serde::{Map, Number, Value};

use serde::{DeError, Deserialize, Serialize};
use std::fmt;

/// Error from serializing or parsing JSON.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Self {
        Error::new(e)
    }
}

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------

/// Serialize `value` to a compact JSON string.
pub fn to_string<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize `value` to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: ?Sized + Serialize>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some("  "), 0);
    Ok(out)
}

/// Serialize `value` to compact JSON bytes.
pub fn to_vec<T: ?Sized + Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: ?Sized + Serialize>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

/// Rebuild a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    T::from_value(&value).map_err(Error::from)
}

fn write_value(out: &mut String, v: &Value, indent: Option<&str>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<&str>, depth: usize) {
    if let Some(pad) = indent {
        out.push('\n');
        for _ in 0..depth {
            out.push_str(pad);
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0C}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// Parse a `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_document(s)?;
    T::from_value(&value).map_err(Error::from)
}

/// Parse a `T` from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|e| Error::new(format!("invalid UTF-8: {e}")))?;
    from_str(s)
}

const MAX_DEPTH: usize = 128;

fn parse_document(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value> {
        if depth > MAX_DEPTH {
            return Err(Error::new("recursion limit exceeded"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(Error::new(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error::new("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, kw: &str, value: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(value)
        } else {
            Err(Error::new(format!(
                "invalid literal at offset {}",
                self.pos
            )))
        }
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("expected `,` or `]` at {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value(depth + 1)?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(Error::new(format!("expected `,` or `}}` at {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: copy unescaped UTF-8 runs wholesale.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' || c < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                let run = std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(format!("invalid UTF-8 in string: {e}")))?;
                out.push_str(run);
            }
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{08}'),
                        b'f' => out.push('\u{0C}'),
                        b'u' => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pair handling.
                            if (0xD800..0xDC00).contains(&cp) {
                                self.expect(b'\\')?;
                                self.expect(b'u')?;
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                out.push(
                                    char::from_u32(combined)
                                        .ok_or_else(|| Error::new("invalid surrogate pair"))?,
                                );
                            } else {
                                out.push(
                                    char::from_u32(cp)
                                        .ok_or_else(|| Error::new("invalid \\u escape"))?,
                                );
                            }
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(Error::new("unescaped control character in string"))
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number bytes are ASCII");
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::from_u64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::from_i64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::from_f64(f)))
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for doc in ["null", "true", "false", "0", "-7", "123456789", "1.5"] {
            let v: Value = from_str(doc).unwrap();
            assert_eq!(to_string(&v).unwrap(), doc);
        }
    }

    #[test]
    fn floats_roundtrip_bit_for_bit() {
        for &f in &[
            0.1,
            1.0 / 3.0,
            f64::MIN_POSITIVE,
            1e300,
            -2.2250738585072014e-308,
            12345.678901234567,
        ] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(f.to_bits(), back.to_bits(), "{json}");
        }
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        let back: f64 = from_str("2.0").unwrap();
        assert_eq!(back, 2.0);
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "line\nbreak \"quoted\" back\\slash tab\t λ 中";
        let json = to_string(&s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn unicode_escapes_parse() {
        let v: String = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, "é😀");
    }

    #[test]
    fn object_order_is_preserved() {
        let v: Value = from_str(r#"{"b": 1, "a": 2}"#).unwrap();
        assert_eq!(to_string(&v).unwrap(), r#"{"b":1,"a":2}"#);
    }

    #[test]
    fn pretty_printing_indents() {
        let v: Value = from_str(r#"{"a":[1,2]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1"), "{pretty}");
    }

    #[test]
    fn malformed_documents_error() {
        for doc in ["{", "[1,", "\"abc", "{\"a\" 1}", "tru", "1 2", ""] {
            assert!(from_str::<Value>(doc).is_err(), "{doc:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_rejected_not_crashed() {
        let doc = "[".repeat(100_000);
        assert!(from_str::<Value>(&doc).is_err());
    }
}

//! Offline shim for the `rand` crate.
//!
//! Implements only what MPROS uses: a deterministic seedable `StdRng`
//! (xoshiro256++ seeded through SplitMix64) and `Rng::gen_range` over
//! half-open and inclusive integer/float ranges. Deterministic per seed
//! across platforms, which is what the simulation tests rely on.
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Core entropy source: a stream of uniform `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator from a `u64` seed (always available, unlike the
    /// full `rand` trait which goes through associated seed arrays).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range sampling, mirroring `rand::distributions::uniform` far enough
/// for `gen_range` call sites.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw one value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// User-facing convenience methods; blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform draw from `range` (half-open `a..b` or inclusive
    /// `a..=b`).
    fn gen_range<T: SampleRange>(&mut self, range: T) -> T::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// A uniform `bool` with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Map 64 random bits to a uniform f64 in `[0, 1)`.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Map 64 random bits to a uniform f32 in `[0, 1)`.
#[inline]
fn unit_f32(bits: u64) -> f32 {
    ((bits >> 40) as f32) * (1.0 / (1u64 << 24) as f32)
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for Range<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty f32 range");
        let v = self.start + unit_f32(rng.next_u64()) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive f64 range");
        // Scale a [0,1] draw (2^53 inclusive steps) across the span.
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        (lo + unit * (hi - lo)).clamp(lo, hi)
    }
}

impl SampleRange for RangeInclusive<f32> {
    type Output = f32;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "gen_range: empty inclusive f32 range");
        let unit = ((rng.next_u64() >> 40) as f32) * (1.0 / ((1u64 << 24) - 1) as f32);
        (lo + unit * (hi - lo)).clamp(lo, hi)
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = self.into_inner();
                assert!(lo <= hi, "gen_range: empty inclusive range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let draw = (rng.next_u64() as u128) % span;
                (lo as i128 + draw as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the shim's stand-in for
    /// `rand::rngs::StdRng`). Not cryptographically secure; plenty for
    /// simulation noise and shuffles.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

pub use rngs::StdRng;

/// Minimal `thread_rng` stand-in: deterministic, freshly seeded per call
/// from a process-wide counter (kept only for API compatibility).
pub fn thread_rng() -> rngs::StdRng {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0x5EED);
    rngs::StdRng::seed_from_u64(COUNTER.fetch_add(1, Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_range_is_in_bounds_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = rng.gen_range(0.0..1.0f64);
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn inclusive_usize_range_hits_endpoints() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 4];
        for _ in 0..1000 {
            seen[rng.gen_range(0..=3usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn epsilon_range_stays_positive() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let v = rng.gen_range(f64::EPSILON..1.0);
            assert!(v > 0.0 && v < 1.0);
        }
    }
}

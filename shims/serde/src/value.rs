//! The JSON-shaped value tree shared by the `serde` and `serde_json`
//! shims. Lives here (rather than in `serde_json`) so the inherent
//! methods and the `Serialize`/`Deserialize` impls can be defined next
//! to the type.

use std::fmt;
use std::ops::Index;

/// A JSON number: unsigned, signed, or floating point.
#[derive(Debug, Clone, Copy)]
pub struct Number {
    n: N,
}

#[derive(Debug, Clone, Copy)]
enum N {
    U(u64),
    I(i64),
    F(f64),
}

impl Number {
    /// From an unsigned integer.
    pub fn from_u64(n: u64) -> Self {
        Number { n: N::U(n) }
    }

    /// From a signed integer (stored unsigned when non-negative, which
    /// matches how a JSON parser would classify the same digits).
    pub fn from_i64(n: i64) -> Self {
        if n >= 0 {
            Number { n: N::U(n as u64) }
        } else {
            Number { n: N::I(n) }
        }
    }

    /// From a float.
    pub fn from_f64(n: f64) -> Self {
        Number { n: N::F(n) }
    }

    /// As `u64`, if representable.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::U(n) => Some(n),
            N::I(n) => u64::try_from(n).ok(),
            N::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            N::F(_) => None,
        }
    }

    /// As `i64`, if representable.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::U(n) => i64::try_from(n).ok(),
            N::I(n) => Some(n),
            N::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            N::F(_) => None,
        }
    }

    /// As `f64` (always possible, possibly lossy for huge integers).
    pub fn as_f64(&self) -> Option<f64> {
        match self.n {
            N::U(n) => Some(n as f64),
            N::I(n) => Some(n as f64),
            N::F(f) => Some(f),
        }
    }

    /// Whether this number was parsed/stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::F(_))
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.n, other.n) {
            (N::U(a), N::U(b)) => a == b,
            (N::I(a), N::I(b)) => a == b,
            // Float representations compare exactly as floats; this is
            // what a parse/print roundtrip preserves.
            (N::F(a), N::F(b)) => a == b || (a.is_nan() && b.is_nan()),
            (N::U(a), N::I(b)) | (N::I(b), N::U(a)) => i64::try_from(a) == Ok(b),
            (N::U(a), N::F(b)) | (N::F(b), N::U(a)) => b.fract() == 0.0 && a as f64 == b,
            (N::I(a), N::F(b)) | (N::F(b), N::I(a)) => b.fract() == 0.0 && a as f64 == b,
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::U(n) => write!(f, "{n}"),
            N::I(n) => write!(f, "{n}"),
            N::F(x) if !x.is_finite() => write!(f, "null"),
            // Rust's shortest-roundtrip Display guarantees the value
            // parses back bit-for-bit; append `.0` when it would
            // otherwise read as an integer, matching serde_json.
            N::F(x) => {
                let s = format!("{x}");
                if s.contains(['.', 'e', 'E', 'n', 'i']) {
                    f.write_str(&s)
                } else {
                    write!(f, "{s}.0")
                }
            }
        }
    }
}

/// An insertion-ordered string-keyed map of values (the shim's
/// `serde_json::Map`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert (or replace) a key.
    pub fn insert(&mut self, key: String, value: Value) -> Option<Value> {
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Whether the key is present.
    pub fn contains_key(&self, key: &str) -> bool {
        self.get(key).is_some()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// Iterate keys in insertion order.
    pub fn keys(&self) -> impl Iterator<Item = &String> {
        self.entries.iter().map(|(k, _)| k)
    }

    /// Iterate values in insertion order.
    pub fn values(&self) -> impl Iterator<Item = &Value> {
        self.entries.iter().map(|(_, v)| v)
    }
}

impl<'a> IntoIterator for &'a Map {
    type Item = (&'a String, &'a Value);
    type IntoIter = std::iter::Map<
        std::slice::Iter<'a, (String, Value)>,
        fn(&'a (String, Value)) -> (&'a String, &'a Value),
    >;
    fn into_iter(self) -> Self::IntoIter {
        fn split(e: &(String, Value)) -> (&String, &Value) {
            (&e.0, &e.1)
        }
        self.entries.iter().map(split)
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<I: IntoIterator<Item = (String, Value)>>(iter: I) -> Self {
        let mut m = Map::new();
        for (k, v) in iter {
            m.insert(k, v);
        }
        m
    }
}

/// A JSON value tree (the shim's `serde_json::Value`).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`
    #[default]
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    /// `Some(bool)` if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `Some(u64)` if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// `Some(i64)` if this is an integral number in `i64` range.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// `Some(f64)` if this is any number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// `Some(&str)` if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// `Some(&Vec<Value>)` if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// `Some(&Map)` if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Whether this is an object.
    pub fn is_object(&self) -> bool {
        matches!(self, Value::Object(_))
    }

    /// Whether this is an array.
    pub fn is_array(&self) -> bool {
        matches!(self, Value::Array(_))
    }

    /// Object-key lookup (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl Index<&str> for Value {
    type Output = Value;
    /// Object-key indexing; yields `Null` for non-objects / missing
    /// keys, matching serde_json.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;
    /// Array indexing; yields `Null` out of bounds, matching serde_json.
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(idx).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

macro_rules! impl_value_eq_num {
    ($($t:ty => $conv:ident as $wide:ty),* $(,)?) => {$(
        impl PartialEq<$t> for Value {
            fn eq(&self, other: &$t) -> bool {
                self.$conv().map(|v| v == *other as $wide).unwrap_or(false)
            }
        }
        impl PartialEq<Value> for $t {
            fn eq(&self, other: &Value) -> bool {
                other == self
            }
        }
    )*};
}

impl_value_eq_num!(
    u8 => as_u64 as u64, u16 => as_u64 as u64, u32 => as_u64 as u64,
    u64 => as_u64 as u64, usize => as_u64 as u64,
    i8 => as_i64 as i64, i16 => as_i64 as i64, i32 => as_i64 as i64,
    i64 => as_i64 as i64, isize => as_i64 as i64,
    f32 => as_f64 as f64, f64 => as_f64 as f64,
);

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<String> for Value {
    fn eq(&self, other: &String) -> bool {
        self.as_str() == Some(other.as_str())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(Number::from_u64(n))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(Number::from_i64(n))
    }
}

impl From<f64> for Value {
    fn from(n: f64) -> Self {
        Value::Number(Number::from_f64(n))
    }
}

impl From<Vec<Value>> for Value {
    fn from(a: Vec<Value>) -> Self {
        Value::Array(a)
    }
}

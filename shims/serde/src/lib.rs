//! Offline shim for `serde`.
//!
//! Instead of serde's visitor architecture, this shim uses a simple
//! value model: [`Serialize`] renders a type to a [`Value`] tree and
//! [`Deserialize`] rebuilds the type from one. The derive macros in the
//! companion `serde_derive` shim generate impls of these traits with
//! the same JSON conventions as real serde (externally tagged enums,
//! transparent newtypes, `Option` ↔ `null`), so documents produced by
//! this shim match what the real crates would emit for the types MPROS
//! defines.
#![forbid(unsafe_code)]

mod value;

pub use value::{Map, Number, Value};

// The derive macros; `use serde::{Serialize, Deserialize}` picks up the
// trait and the macro together (they live in separate namespaces).
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Error produced while rebuilding a type from a [`Value`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    msg: String,
}

impl DeError {
    /// A new error with the given message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        DeError {
            msg: msg.to_string(),
        }
    }

    /// Wrap this error with the field/variant it occurred in.
    pub fn in_field(self, field: &str) -> Self {
        DeError {
            msg: format!("{field}: {}", self.msg),
        }
    }

    /// The error message.
    pub fn message(&self) -> &str {
        &self.msg
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for DeError {}

/// A type that can render itself as a [`Value`] tree.
pub trait Serialize {
    /// Render to a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can rebuild itself from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuild from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_u64(*self as u64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(Number::from_i64(*self as i64))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| DeError::custom(concat!("expected ", stringify!($t))))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::custom(concat!("out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self))
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64().ok_or_else(|| DeError::custom("expected f64"))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(Number::from_f64(*self as f64))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .map(|f| f as f32)
            .ok_or_else(|| DeError::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_bool().ok_or_else(|| DeError::custom("expected bool"))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_owned)
            .ok_or_else(|| DeError::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v.as_str().ok_or_else(|| DeError::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let arr = v
            .as_array()
            .ok_or_else(|| DeError::custom("expected array"))?;
        arr.iter().map(T::from_value).collect()
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v
                    .as_array()
                    .ok_or_else(|| DeError::custom("expected tuple array"))?;
                const LEN: usize = 0 $(+ { let _ = $idx; 1 })+;
                if arr.len() != LEN {
                    return Err(DeError::custom("tuple arity mismatch"));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    )+};
}

impl_tuple!(
    (A: 0),
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3)
);

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        let mut m = Map::new();
        for (k, v) in self {
            m.insert(k.clone(), v.to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort keys for deterministic output.
        let mut keys: Vec<&String> = self.keys().collect();
        keys.sort();
        let mut m = Map::new();
        for k in keys {
            m.insert(k.clone(), self[k].to_value());
        }
        Value::Object(m)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let obj = v
            .as_object()
            .ok_or_else(|| DeError::custom("expected object"))?;
        obj.iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

//! Offline shim for `criterion`.
//!
//! Provides the macro/struct surface the MPROS benches use and a small
//! timing loop that prints mean iteration time (and throughput when
//! declared). `cargo test`/`cargo bench` run each benchmark briefly so
//! the targets stay cheap in CI; set `CRITERION_FULL=1` for longer,
//! more stable measurement runs.
#![forbid(unsafe_code)]

use std::fmt::{self, Display};
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Prevent the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Declared work per iteration, used to report throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier for a parameterized benchmark (`group/function/param`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id from a function name and a parameter display value.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Passed to benchmark closures; `iter` runs and times the payload.
pub struct Bencher {
    quick: bool,
    /// Mean nanoseconds per iteration, filled by `iter`.
    mean_ns: f64,
    iters: u64,
}

impl Bencher {
    /// Time `f`, storing the mean iteration cost.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup + calibration.
        let start = Instant::now();
        black_box(f());
        let first = start.elapsed();
        if self.quick {
            self.mean_ns = first.as_nanos() as f64;
            self.iters = 1;
            return;
        }
        // Aim for ~200ms of measurement, 10..=10_000 iterations.
        let per_iter = first.as_nanos().max(1) as u64;
        let target = Duration::from_millis(200).as_nanos() as u64;
        let iters = (target / per_iter).clamp(10, 10_000);
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        let total = start.elapsed();
        self.mean_ns = total.as_nanos() as f64 / iters as f64;
        self.iters = iters;
    }
}

fn quick_mode() -> bool {
    std::env::var("CRITERION_FULL").is_err()
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, mean_ns: f64, iters: u64, throughput: Option<Throughput>) {
    let mut line = format!(
        "bench {name:<50} {:>12}/iter ({iters} iters)",
        human_time(mean_ns)
    );
    if let Some(tp) = throughput {
        let per_sec = |n: u64| n as f64 / (mean_ns / 1e9);
        match tp {
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:.3e} elem/s", per_sec(n)));
            }
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:.3e} B/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// The benchmark driver.
pub struct Criterion {
    quick: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            quick: quick_mode(),
        }
    }
}

impl Criterion {
    /// Run one benchmark function.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            quick: self.quick,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(&id.to_string(), b.mean_ns, b.iters, None);
        self
    }

    /// Configure sample count (accepted and ignored; the shim sizes
    /// runs by wall-clock).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            quick: self.quick,
            throughput: None,
            _parent: self,
        }
    }
}

/// A group of related benchmarks sharing throughput declarations.
pub struct BenchmarkGroup<'a> {
    name: String,
    quick: bool,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Declare per-iteration work for subsequent benchmarks.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Configure sample count (accepted and ignored).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Run one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            quick: self.quick,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b);
        report(
            &format!("{}/{}", self.name, id),
            b.mean_ns,
            b.iters,
            self.throughput,
        );
        self
    }

    /// Run one parameterized benchmark in this group.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher {
            quick: self.quick,
            mean_ns: 0.0,
            iters: 0,
        };
        f(&mut b, input);
        report(
            &format!("{}/{}", self.name, id),
            b.mean_ns,
            b.iters,
            self.throughput,
        );
        self
    }

    /// Finish the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Define a function that runs a list of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` for a benchmark target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Ignore harness flags passed by `cargo test`/`cargo bench`
            // (e.g. `--bench`, `--test`); run everything.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        c.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        let mut group = c.benchmark_group("grouped");
        group.throughput(Throughput::Elements(128));
        group.bench_function("vec_push", |b| b.iter(|| (0..128).collect::<Vec<i32>>()));
        group.bench_with_input(BenchmarkId::new("scaled", 4), &4usize, |b, &n| {
            b.iter(|| vec![0u8; n * 100])
        });
        group.finish();
    }

    criterion_group!(benches, sample_bench);
    criterion_group!(
        name = named;
        config = Criterion::default();
        targets = sample_bench
    );

    #[test]
    fn groups_run_to_completion() {
        benches();
        named();
    }
}

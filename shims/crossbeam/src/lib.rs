//! Offline shim for `crossbeam`: MPMC channels with disconnect
//! detection (`crossbeam::channel`) and scoped threads
//! (`crossbeam::thread::scope`), built on std primitives.
#![forbid(unsafe_code)]

/// Multi-producer multi-consumer FIFO channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex, PoisonError};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty but senders remain.
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// An unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueue `value`; fails if every [`Receiver`] has been dropped.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(value));
            }
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .push_back(value);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake blocked receivers so they observe
                // the disconnect.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Sender {{ .. }}")
        }
    }

    impl<T> Receiver<T> {
        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            match q.pop_front() {
                Some(v) => Ok(v),
                None if self.shared.senders.load(Ordering::Acquire) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        /// Dequeue, blocking until a value arrives or all senders drop.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self
                .shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            loop {
                if let Some(v) = q.pop_front() {
                    return Ok(v);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .ready
                    .wait(q)
                    .unwrap_or_else(PoisonError::into_inner);
            }
        }

        /// Number of values currently queued.
        pub fn len(&self) -> usize {
            self.shared
                .queue
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .len()
        }

        /// Whether the queue is currently empty.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    impl<T> fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "Receiver {{ .. }}")
        }
    }
}

/// Scoped threads with the crossbeam calling convention.
pub mod thread {
    /// Handle passed to the scope closure; spawns threads joined before
    /// [`scope`] returns.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Handle to a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<'scope, T> ScopedJoinHandle<'scope, T> {
        /// Wait for the thread to finish.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawn a thread guaranteed to join before the scope ends. The
        /// closure receives the scope handle (crossbeam convention;
        /// call sites typically bind it `|_|`).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner_scope = self.inner;
            ScopedJoinHandle {
                inner: inner_scope.spawn(move || {
                    let wrapper = Scope { inner: inner_scope };
                    f(&wrapper)
                }),
            }
        }
    }

    /// Run `f` with a [`Scope`]; all spawned threads are joined before
    /// this returns. `Err` carries the panic payload if any spawned
    /// thread (or `f` itself) panicked.
    pub fn scope<'env, F, R>(f: F) -> std::thread::Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        let mut result = None;
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            std::thread::scope(|s| {
                let wrapper = Scope { inner: s };
                result = Some(f(&wrapper));
            });
        }));
        match outcome {
            Ok(()) => Ok(result.expect("scope closure completed")),
            Err(payload) => Err(payload),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_fifo_and_disconnect() {
        let (tx, rx) = channel::unbounded();
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        assert_eq!(rx.try_recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Empty));
        drop(tx);
        assert_eq!(rx.try_recv(), Err(channel::TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_receiver_drop() {
        let (tx, rx) = channel::unbounded();
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn blocking_recv_across_threads() {
        let (tx, rx) = channel::unbounded();
        thread::scope(|s| {
            s.spawn(move |_| {
                std::thread::sleep(std::time::Duration::from_millis(10));
                tx.send(42u32).unwrap();
            });
            assert_eq!(rx.recv(), Ok(42));
        })
        .unwrap();
    }

    #[test]
    fn scope_joins_all_threads() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        })
        .unwrap();
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn scope_propagates_panics_as_err() {
        let r = thread::scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(r.is_err());
    }
}

//! Offline shim for `parking_lot`: a [`Mutex`]/[`RwLock`] with the
//! parking_lot calling convention (no poison `Result`s) backed by the
//! std primitives.
#![forbid(unsafe_code)]

use std::sync::{self, PoisonError};

/// A mutual-exclusion lock whose `lock()` returns the guard directly.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Wrap `value` in a mutex.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available. Unlike std, a panic
    /// in a previous holder does not poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A readers-writer lock with the parking_lot calling convention.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive-write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Wrap `value` in a readers-writer lock.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }
}

//! Offline shim for the `bytes` crate: cheaply cloneable immutable byte
//! buffers ([`Bytes`]), a growable builder ([`BytesMut`]), and the
//! cursor-style [`Buf`]/[`BufMut`] traits — just enough for the MPROS
//! wire codec.
#![forbid(unsafe_code)]

use std::ops::{Bound, Deref, RangeBounds};
use std::sync::Arc;

/// An immutable, reference-counted byte buffer. Clones and slices share
/// the same backing allocation.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::new(Vec::new()),
            start: 0,
            end: 0,
        }
    }

    /// Copy a static slice into an owned buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }

    /// Length of the view in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-view of this buffer.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Copy the view out into a fresh `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    fn as_slice(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl Default for Bytes {
    fn default() -> Self {
        Bytes::new()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        let end = data.len();
        Bytes {
            data: Arc::new(data),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::from(data.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Bytes {}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "b\"")?;
        for &b in self.as_slice() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Read cursor over a byte source. Reading consumes from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Advance the cursor by `cnt` bytes.
    fn advance(&mut self, cnt: usize);
    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Whether any bytes remain.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Copy `dst.len()` bytes out, consuming them.
    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.remaining() >= dst.len(), "copy_to_slice underflow");
        dst.copy_from_slice(&self.chunk()[..dst.len()]);
        self.advance(dst.len());
    }

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }
    fn advance(&mut self, cnt: usize) {
        assert!(cnt <= self.len(), "advance past end");
        self.start += cnt;
    }
    fn chunk(&self) -> &[u8] {
        self.as_slice()
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> Self {
        BytesMut { buf: Vec::new() }
    }

    /// An empty builder with reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no bytes have been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_builder() {
        let mut b = BytesMut::with_capacity(16);
        b.put_slice(b"MP");
        b.put_u8(7);
        b.put_u32_le(0xDEAD_BEEF);
        let frozen = b.freeze();
        assert_eq!(frozen.len(), 7);

        let mut cur = frozen.clone();
        let mut magic = [0u8; 2];
        cur.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"MP");
        assert_eq!(cur.get_u8(), 7);
        assert_eq!(cur.get_u32_le(), 0xDEAD_BEEF);
        assert!(!cur.has_remaining());
    }

    #[test]
    fn slices_share_storage() {
        let b = Bytes::from(vec![1, 2, 3, 4, 5]);
        let s = b.slice(1..4);
        assert_eq!(&s[..], &[2, 3, 4]);
        assert_eq!(s.slice(..2).to_vec(), vec![2, 3]);
    }
}

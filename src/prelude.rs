//! The supported public surface, in one import.
//!
//! `use mpros::prelude::*;` brings in everything a typical embedder
//! needs: the assembled simulation and its builder-style configuration,
//! execution modes, fault planning, the serving gateway and its client,
//! and the telemetry/SLO snapshot types those APIs hand back.
//!
//! Anything *not* re-exported here is still reachable through the
//! per-subsystem modules (`mpros::pdme`, `mpros::network`, ...) but is
//! considered an internal surface: it may move or change shape between
//! revisions without the deprecation care the prelude gets. CI diffs
//! the rendered public API against `API_SURFACE.txt` (see
//! `scripts/api_surface.sh`), so additions and removals here are
//! reviewed, never accidental.

pub use crate::sim::{ExecMode, ShipboardSim, ShipboardSimConfig};

// Core vocabulary: time, identity, conditions, reports, errors.
pub use mpros_core::{
    Belief, ConditionReport, DcId, Error, MachineCondition, MachineId, PrognosticVector, Result,
    SimDuration, SimTime,
};

// Fault planning (scheduled adversity against simulated time).
pub use mpros_core::{FaultKind, FaultPlan, FaultPlanConfig, FaultTarget};

// Network and transport configuration.
pub use mpros_network::{NetworkConfig, OutboxConfig};

// The serving layer: gateway, its configuration, the framed protocol
// and the client that speaks it.
pub use mpros_gateway::{
    DeltaBatch, Gateway, GatewayClient, GatewayConfig, GatewayRequest, GatewayResponse,
    JournalPage, MetricsReport, ServingSnapshot, StatusDelta,
};

// The fleet plane: sharded multi-ship simulation behind one routing
// gateway with a fleet-wide knowledge rollup (wire v6).
pub use mpros_fleet::{
    Fleet, FleetClient, FleetConfig, FleetDeltaBatch, FleetGateway, FleetGatewayConfig,
    FleetRequest, FleetResponse, FleetRollup, FleetSnapshot, RollupReport, ShipDelta, ShipInfo,
};

// ICAS interchange documents served by the gateway.
pub use mpros_pdme::IcasSnapshot;

// Observability: the shared domain handle, its exported snapshot
// types, and the SLO watchdog vocabulary.
pub use mpros_telemetry::{
    CounterSnapshot, SloPolicy, SloRule, SloVerdict, Telemetry, TelemetrySnapshot,
};

// The flight recorder: bounded incident capture with deterministic
// ids, sealed bundles retrievable over the gateway (wire v5).
pub use mpros_telemetry::{
    FlightRecorder, Incident, IncidentSummary, IncidentTrigger, RecorderConfig,
};

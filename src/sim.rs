//! The assembled shipboard simulation (Fig. 1).
//!
//! Wires the full MPROS stack together the way the paper's diagram does:
//! one [`ChillerPlant`] per Data Concentrator, each DC hosting the four
//! algorithm suites; condition reports travel over the simulated ship
//! network to the PDME, which posts them to the OOSM and runs knowledge
//! fusion off the change events. Examples, integration tests and the
//! benchmark harness all drive this one harness.

use mpros_chiller::fault::FaultSeed;
use mpros_chiller::plant::PlantConfig;
use mpros_chiller::ChillerPlant;
use mpros_core::{DcId, MachineId, Result, SimClock, SimDuration, SimTime};
use mpros_dc::{DataConcentrator, DcConfig};
use mpros_network::{Endpoint, NetMessage, NetworkConfig, ShipNetwork};
use mpros_pdme::PdmeExecutive;
use mpros_telemetry::Telemetry;

/// Configuration of a shipboard simulation.
#[derive(Debug, Clone)]
pub struct ShipboardSimConfig {
    /// Number of chiller plants / Data Concentrators.
    pub dc_count: usize,
    /// Master seed (plants and network derive theirs from it).
    pub seed: u64,
    /// Network behaviour.
    pub network: NetworkConfig,
    /// Vibration-survey period per DC.
    pub survey_period: SimDuration,
    /// DC heartbeat period.
    pub heartbeat_period: SimDuration,
}

impl Default for ShipboardSimConfig {
    fn default() -> Self {
        ShipboardSimConfig {
            dc_count: 1,
            seed: 7,
            network: NetworkConfig::default(),
            survey_period: SimDuration::from_secs(30.0),
            heartbeat_period: SimDuration::from_secs(10.0),
        }
    }
}

/// The running simulation.
pub struct ShipboardSim {
    plants: Vec<ChillerPlant>,
    dcs: Vec<DataConcentrator>,
    network: ShipNetwork,
    pdme: PdmeExecutive,
    clock: SimClock,
    heartbeat_period: SimDuration,
    last_heartbeat: Vec<SimTime>,
    telemetry: Telemetry,
}

impl ShipboardSim {
    /// Build the ship: `dc_count` chillers with their DCs, the network,
    /// and the PDME with every machine registered in its ship model.
    pub fn new(config: ShipboardSimConfig) -> Result<Self> {
        // One shared observability domain for the whole ship: every
        // component joins it at wiring time, before any traffic flows.
        let telemetry = Telemetry::new();
        let mut network = ShipNetwork::new(config.network.clone());
        network.set_telemetry(&telemetry);
        network.register(Endpoint::Pdme);
        let mut pdme = PdmeExecutive::new();
        pdme.set_telemetry(&telemetry);
        let mut plants = Vec::with_capacity(config.dc_count);
        let mut dcs = Vec::with_capacity(config.dc_count);
        for i in 0..config.dc_count {
            let machine = MachineId::new(i as u64 + 1);
            let dc_id = DcId::new(i as u64 + 1);
            plants.push(ChillerPlant::new(PlantConfig::new(
                machine,
                config.seed.wrapping_add(i as u64 * 7919),
            )));
            let mut dc_cfg = DcConfig::new(dc_id, machine);
            dc_cfg.survey_period = config.survey_period;
            let mut dc = DataConcentrator::new(dc_cfg)?;
            dc.set_telemetry(&telemetry);
            dcs.push(dc);
            network.register(Endpoint::Dc(dc_id));
            pdme.register_machine(machine, &format!("A/C Plant {} Chiller", i + 1));
        }
        Ok(ShipboardSim {
            last_heartbeat: vec![SimTime::ZERO - config.heartbeat_period; config.dc_count],
            plants,
            dcs,
            network,
            pdme,
            clock: SimClock::new(),
            heartbeat_period: config.heartbeat_period,
            telemetry,
        })
    }

    /// The ship-wide telemetry domain (metrics, spans, journal,
    /// dashboard).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// The plants (fault seeding, ground truth).
    pub fn plant_mut(&mut self, idx: usize) -> &mut ChillerPlant {
        &mut self.plants[idx]
    }

    /// The plants, immutably.
    pub fn plant(&self, idx: usize) -> &ChillerPlant {
        &self.plants[idx]
    }

    /// The PDME.
    pub fn pdme(&self) -> &PdmeExecutive {
        &self.pdme
    }

    /// Mutable PDME access (resident algorithms, ship-model edits).
    pub fn pdme_mut(&mut self) -> &mut PdmeExecutive {
        &mut self.pdme
    }

    /// The network (stats, partitions).
    pub fn network_mut(&mut self) -> &mut ShipNetwork {
        &mut self.network
    }

    /// One DC, for configuration (ablation switches, WNN attachment).
    pub fn dc_mut(&mut self, idx: usize) -> &mut DataConcentrator {
        &mut self.dcs[idx]
    }

    /// Seed a fault on plant `idx`.
    pub fn seed_fault(&mut self, idx: usize, seed: FaultSeed) {
        self.plants[idx].seed_fault(seed);
    }

    /// Send a PDME-side command to a DC over the network.
    pub fn send_command(&mut self, dc_idx: usize, msg: &NetMessage) -> Result<()> {
        let to = Endpoint::Dc(self.dcs[dc_idx].id());
        self.network.send(self.clock.now(), Endpoint::Pdme, to, msg)
    }

    /// Advance the whole ship by `dt`: tick every DC against its plant,
    /// carry reports and heartbeats over the network, deliver commands,
    /// and run the PDME's event-driven fusion. Returns the number of
    /// reports the PDME fused this step.
    pub fn step(&mut self, dt: SimDuration) -> Result<usize> {
        self.clock.advance(dt);
        let now = self.clock.now();
        self.telemetry.set_sim_now(now);
        for (i, dc) in self.dcs.iter_mut().enumerate() {
            let ep = Endpoint::Dc(dc.id());
            // Deliver pending commands first.
            for cmd in self.network.recv(ep, now) {
                dc.handle_command(&cmd)?;
            }
            for report in dc.tick(&self.plants[i], now)? {
                self.network
                    .send(now, ep, Endpoint::Pdme, &NetMessage::Report(report))?;
            }
            if now.since(self.last_heartbeat[i]) >= self.heartbeat_period {
                self.last_heartbeat[i] = now;
                self.network.send(
                    now,
                    ep,
                    Endpoint::Pdme,
                    &NetMessage::Heartbeat {
                        dc: dc.id(),
                        at_secs: now.as_secs(),
                    },
                )?;
            }
        }
        for msg in self.network.recv(Endpoint::Pdme, now) {
            self.pdme.handle_message(&msg, now)?;
        }
        self.pdme.process_events()
    }

    /// Run for `duration` in steps of `dt`; returns total reports fused.
    pub fn run_for(&mut self, duration: SimDuration, dt: SimDuration) -> Result<usize> {
        let steps = (duration.as_secs() / dt.as_secs()).ceil() as usize;
        let mut fused = 0;
        for _ in 0..steps {
            fused += self.step(dt)?;
        }
        Ok(fused)
    }
}

//! The assembled shipboard simulation (Fig. 1).
//!
//! Wires the full MPROS stack together the way the paper's diagram does:
//! one [`ChillerPlant`] per Data Concentrator, each DC hosting the four
//! algorithm suites; condition reports travel over the simulated ship
//! network to the PDME, which posts them to the OOSM and runs knowledge
//! fusion off the change events. Examples, integration tests and the
//! benchmark harness all drive this one harness.
//!
//! # Execution model
//!
//! Every tick runs the same four phases regardless of [`ExecMode`]:
//!
//! 1. **Deliver** — each DC's command inbox is drained, in ascending
//!    DC-index order.
//! 2. **Execute** — each DC applies its commands and runs everything
//!    due at `now` against its plant ([`DataConcentrator::step`]).
//!    Sequentially this happens inline; in parallel mode it is
//!    scattered across the [`WorkerPool`].
//! 3. **Merge** — each DC's report buffer is sent to the PDME as one
//!    batched frame, followed by its heartbeat if due, again in
//!    ascending DC-index order. Frames sent at `now` deliver strictly
//!    after `now` (the network's base latency is positive), so nothing
//!    a DC sends this tick can be received this tick — phase 2's
//!    outputs cannot feed back into phase 2.
//! 4. **Fuse** — the PDME drains its inbox and runs one fusion pass.
//!
//! The only cross-DC coupling is the ship network's RNG (jitter and
//! drop draws, consumed in `send` order); phase 3 pins that order to
//! the DC index, so the simulation state — PDME, fusion, OOSM, ICAS
//! exports — is byte-for-byte identical under any worker count.

use crate::exec::{StepJob, WorkerPool};
use mpros_chiller::fault::FaultSeed;
use mpros_chiller::plant::PlantConfig;
use mpros_chiller::ChillerPlant;
use mpros_core::{
    derive_stream_seed, ConditionReport, DcId, MachineId, Result, SimClock, SimDuration, SimTime,
};
use mpros_dc::{DataConcentrator, DcConfig};
use mpros_network::{Endpoint, NetMessage, NetworkConfig, ShipNetwork};
use mpros_pdme::PdmeExecutive;
use mpros_telemetry::{Stage, Telemetry, WallTimer};
use parking_lot::{Mutex, MutexGuard};
use std::sync::Arc;

pub use crate::exec::ExecMode;

/// Configuration of a shipboard simulation.
#[derive(Debug, Clone)]
pub struct ShipboardSimConfig {
    /// Number of chiller plants / Data Concentrators.
    pub dc_count: usize,
    /// Master seed. Every per-DC stream (plant noise, fault evolution)
    /// derives its own seed from `(seed, dc_id)` via
    /// [`derive_stream_seed`], so streams are statistically independent
    /// and adding a DC never perturbs the others.
    pub seed: u64,
    /// Network behaviour.
    pub network: NetworkConfig,
    /// Vibration-survey period per DC.
    pub survey_period: SimDuration,
    /// DC heartbeat period.
    pub heartbeat_period: SimDuration,
    /// How per-DC work is executed each tick.
    pub exec: ExecMode,
}

impl Default for ShipboardSimConfig {
    fn default() -> Self {
        ShipboardSimConfig {
            dc_count: 1,
            seed: 7,
            network: NetworkConfig::default(),
            survey_period: SimDuration::from_secs(30.0),
            heartbeat_period: SimDuration::from_secs(10.0),
            exec: ExecMode::Sequential,
        }
    }
}

/// The running simulation.
pub struct ShipboardSim {
    plants: Vec<Arc<Mutex<ChillerPlant>>>,
    dcs: Vec<Arc<Mutex<DataConcentrator>>>,
    dc_ids: Vec<DcId>,
    network: ShipNetwork,
    pdme: PdmeExecutive,
    clock: SimClock,
    heartbeat_period: SimDuration,
    last_heartbeat: Vec<SimTime>,
    telemetry: Telemetry,
    pool: Option<WorkerPool>,
}

impl ShipboardSim {
    /// Build the ship: `dc_count` chillers with their DCs, the network,
    /// and the PDME with every machine registered in its ship model.
    /// In [`ExecMode::Parallel`] the worker pool is spawned here and
    /// lives as long as the simulation.
    pub fn new(config: ShipboardSimConfig) -> Result<Self> {
        // One shared observability domain for the whole ship: every
        // component joins it at wiring time, before any traffic flows.
        let telemetry = Telemetry::new();
        let mut network = ShipNetwork::new(config.network.clone());
        network.set_telemetry(&telemetry);
        network.register(Endpoint::Pdme);
        let mut pdme = PdmeExecutive::new();
        pdme.set_telemetry(&telemetry);
        let mut plants = Vec::with_capacity(config.dc_count);
        let mut dcs = Vec::with_capacity(config.dc_count);
        let mut dc_ids = Vec::with_capacity(config.dc_count);
        for i in 0..config.dc_count {
            let machine = MachineId::new(i as u64 + 1);
            let dc_id = DcId::new(i as u64 + 1);
            plants.push(Arc::new(Mutex::new(ChillerPlant::new(PlantConfig::new(
                machine,
                derive_stream_seed(config.seed, dc_id.raw()),
            )))));
            let mut dc_cfg = DcConfig::new(dc_id, machine);
            dc_cfg.survey_period = config.survey_period;
            let mut dc = DataConcentrator::new(dc_cfg)?;
            dc.set_telemetry(&telemetry);
            dcs.push(Arc::new(Mutex::new(dc)));
            dc_ids.push(dc_id);
            network.register(Endpoint::Dc(dc_id));
            pdme.register_machine(machine, &format!("A/C Plant {} Chiller", i + 1));
        }
        let pool = match config.exec {
            ExecMode::Sequential => None,
            ExecMode::Parallel { .. } => Some(WorkerPool::new(
                config.exec.worker_count(),
                dcs.clone(),
                plants.clone(),
                telemetry.clone(),
            )),
        };
        Ok(ShipboardSim {
            last_heartbeat: vec![SimTime::ZERO - config.heartbeat_period; config.dc_count],
            plants,
            dcs,
            dc_ids,
            network,
            pdme,
            clock: SimClock::new(),
            heartbeat_period: config.heartbeat_period,
            telemetry,
            pool,
        })
    }

    /// The ship-wide telemetry domain (metrics, spans, journal,
    /// dashboard).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Worker threads stepping DCs (0 in sequential mode).
    pub fn workers(&self) -> usize {
        self.pool.as_ref().map(|p| p.workers()).unwrap_or(0)
    }

    /// The plants (fault seeding, ground truth).
    pub fn plant_mut(&mut self, idx: usize) -> MutexGuard<'_, ChillerPlant> {
        self.plants[idx].lock()
    }

    /// The plants, immutably. (Still a lock guard: the worker pool
    /// shares the cells, though it only touches them inside `step`.)
    pub fn plant(&self, idx: usize) -> MutexGuard<'_, ChillerPlant> {
        self.plants[idx].lock()
    }

    /// The PDME.
    pub fn pdme(&self) -> &PdmeExecutive {
        &self.pdme
    }

    /// Mutable PDME access (resident algorithms, ship-model edits).
    pub fn pdme_mut(&mut self) -> &mut PdmeExecutive {
        &mut self.pdme
    }

    /// The network (stats, partitions).
    pub fn network_mut(&mut self) -> &mut ShipNetwork {
        &mut self.network
    }

    /// One DC, for configuration (ablation switches, WNN attachment).
    pub fn dc_mut(&mut self, idx: usize) -> MutexGuard<'_, DataConcentrator> {
        self.dcs[idx].lock()
    }

    /// Seed a fault on plant `idx`.
    pub fn seed_fault(&mut self, idx: usize, seed: FaultSeed) {
        self.plants[idx].lock().seed_fault(seed);
    }

    /// Send a PDME-side command to a DC over the network.
    pub fn send_command(&mut self, dc_idx: usize, msg: &NetMessage) -> Result<()> {
        let to = Endpoint::Dc(self.dc_ids[dc_idx]);
        self.network.send(self.clock.now(), Endpoint::Pdme, to, msg)
    }

    /// Advance the whole ship by `dt` through the four execution-model
    /// phases (see the module docs): deliver commands, execute every
    /// DC's step (inline or scattered across the pool), merge reports
    /// and heartbeats onto the network in DC-index order, and run the
    /// PDME's event-driven fusion. Returns the number of reports the
    /// PDME fused this step.
    pub fn step(&mut self, dt: SimDuration) -> Result<usize> {
        self.clock.advance(dt);
        let now = self.clock.now();
        self.telemetry.set_sim_now(now);

        // Phase 1: deliver pending commands, in DC-index order.
        let commands: Vec<Vec<NetMessage>> = self
            .dc_ids
            .iter()
            .map(|&id| self.network.recv(Endpoint::Dc(id), now))
            .collect();

        // Phase 2: execute per-DC steps.
        let outputs: Vec<(usize, Result<Vec<ConditionReport>>)> = match &self.pool {
            Some(pool) => {
                let jobs = commands
                    .into_iter()
                    .enumerate()
                    .map(|(dc_index, commands)| StepJob {
                        dc_index,
                        now,
                        commands,
                    })
                    .collect();
                pool.step_all(jobs)
            }
            None => commands
                .into_iter()
                .enumerate()
                .map(|(i, commands)| {
                    let timer = WallTimer::start();
                    let result = {
                        let mut dc = self.dcs[i].lock();
                        let plant = self.plants[i].lock();
                        dc.step(&plant, now, &commands)
                    };
                    self.telemetry
                        .record_span_wall(Stage::DcStep, timer.elapsed());
                    (i, result)
                })
                .collect(),
        };

        // Phase 3: merge into the network in DC-index order — reports
        // first (one batched frame per DC), then the heartbeat if due.
        // This fixes the network RNG's draw order independently of
        // which worker finished first.
        for (i, reports) in outputs {
            let reports = reports?;
            self.network
                .send_report_batch(now, self.dc_ids[i], reports)?;
            if now.since(self.last_heartbeat[i]) >= self.heartbeat_period {
                self.last_heartbeat[i] = now;
                self.network.send(
                    now,
                    Endpoint::Dc(self.dc_ids[i]),
                    Endpoint::Pdme,
                    &NetMessage::Heartbeat {
                        dc: self.dc_ids[i],
                        at_secs: now.as_secs(),
                    },
                )?;
            }
        }

        // Phase 4: one PDME ingest + fusion pass over everything due.
        let msgs = self.network.recv(Endpoint::Pdme, now);
        self.pdme.handle_batch(&msgs, now)
    }

    /// Run for `duration` in steps of `dt`; returns total reports fused.
    pub fn run_for(&mut self, duration: SimDuration, dt: SimDuration) -> Result<usize> {
        let steps = (duration.as_secs() / dt.as_secs()).ceil() as usize;
        let mut fused = 0;
        for _ in 0..steps {
            fused += self.step(dt)?;
        }
        Ok(fused)
    }
}

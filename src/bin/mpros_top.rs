//! `mpros-top` — a live console dashboard over the fleet wire.
//!
//! Runs a faulted multi-ship fleet scenario on its own thread and
//! watches it the way a remote fleet console would: every refresh
//! issues `ListShips` + `GetFleetRollup` for the fleet-overview pane,
//! then routes `GetMetrics`, `StreamJournal` and `ListIncidents` to the
//! focused ship through `ForShip` (rendered with the same `dashboard`
//! code the in-process monitoring example uses). Nothing here reads
//! engine state directly — every byte crosses the framed wire-v6
//! protocol, so this binary doubles as an end-to-end smoke test of the
//! fleet observability plane.
//!
//! Usage:
//!   mpros-top [--ships N] [--ship ID] [--dcs N] [--minutes M]
//!             [--refresh-ms MS] [--frames N]
//!
//! `--ship ID` picks which ship's dashboard fills the lower pane (the
//! fleet overview always shows every shard). `--frames N` exits after
//! N renders (for CI / scripted runs); the default 0 keeps rendering
//! until the scenario finishes.

use mpros::chiller::fault::{FaultProfile, FaultSeed};
use mpros::prelude::*;
use mpros::telemetry::dashboard;
use mpros::telemetry::{TelemetrySnapshot, TELEMETRY_SCHEMA_VERSION};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn arg_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<T>().ok())
        .unwrap_or(default)
}

/// The faulted scenario under observation: every ship carries a bearing
/// defect progressing on two plants (independent dynamics per ship —
/// each shard sails its own derived seed), and ship 0 additionally
/// takes a mid-run DC crash window, so the shards visibly diverge, the
/// rollup has degradation to report, and ship 0's flight recorder seals
/// at least one incident for the console to list.
fn build_fleet(ships: usize, dcs: usize, minutes: f64) -> Fleet {
    let crash_from = SimTime::from_secs(minutes * 60.0 * 0.3);
    let crash_until = SimTime::from_secs(minutes * 60.0 * 0.5);
    let mut fleet = Fleet::new(
        FleetConfig::new()
            .with_ship_count(ships)
            .with_seed(11)
            .with_ship(
                ShipboardSimConfig::new()
                    .with_dc_count(dcs)
                    .with_survey_period(SimDuration::from_secs(30.0)),
            )
            .with_ship_fault_plan(
                0,
                FaultPlan::none().with_dc_crash(DcId::new(2), crash_from, crash_until),
            ),
    )
    .expect("fleet builds");
    for ship in 0..ships {
        for idx in [0usize, dcs / 2] {
            fleet.ship_mut(ship).seed_fault(
                idx,
                FaultSeed {
                    condition: MachineCondition::MotorBearingDefect,
                    onset: SimTime::ZERO,
                    time_to_failure: SimDuration::from_minutes(minutes * 0.8),
                    profile: FaultProfile::EarlyOnset,
                },
            );
        }
    }
    fleet
}

/// Rebuild a `TelemetrySnapshot` from the wire-served metrics and
/// journal page so the remote view can reuse the in-process dashboard
/// renderer verbatim.
fn snapshot_from_wire(metrics: &MetricsReport, journal: &JournalPage) -> TelemetrySnapshot {
    TelemetrySnapshot {
        schema_version: TELEMETRY_SCHEMA_VERSION,
        at_secs: metrics.at_secs,
        counters: metrics.counters.clone(),
        gauges: metrics.gauges.clone(),
        histograms: metrics.histograms.clone(),
        events: journal.events.clone(),
        events_dropped: journal.dropped,
    }
}

/// The fleet-overview pane: one line per shard plus the rollup verdict,
/// all taken from `ListShips`/`GetFleetRollup` responses.
fn render_fleet_pane(ships: &[ShipInfo], rollup: &RollupReport, focused: u64) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fleet: {} ships, rollup v{} t+{:.1}s",
        ships.len(),
        rollup.fleet_version,
        rollup.at_secs
    );
    for ship in ships {
        let marker = if ship.ship_id == focused { '>' } else { ' ' };
        let state = if !ship.available {
            "UNAVAILABLE".to_string()
        } else {
            match ship.slo_pass {
                Some(true) => "slo PASS".to_string(),
                Some(false) => "slo FAIL".to_string(),
                None => "slo --".to_string(),
            }
        };
        let _ = writeln!(
            out,
            " {marker}ship {:>2}  snap v{:<5} t+{:>8.1}s  {:>2} machines  {state}",
            ship.ship_id, ship.snapshot_version, ship.at_secs, ship.machines
        );
    }
    let r = &rollup.rollup;
    let degraded = r.machines.iter().filter(|m| m.status == "degraded").count();
    let verdict = if !r.slo.pass {
        format!("FAIL (ships {:?})", r.slo.failing_ships)
    } else if !r.unavailable_ships.is_empty() {
        format!("PASS* (unavailable {:?})", r.unavailable_ships)
    } else {
        "PASS".to_string()
    };
    let _ = writeln!(
        out,
        "rollup: {}/{} machine classes degraded, {} fused curves, fleet SLO {verdict}",
        degraded,
        r.machines.len(),
        r.prognostics.len()
    );
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let ships = arg_value(&args, "--ships", 2usize).max(1);
    let ship = arg_value(&args, "--ship", 0u64).min(ships as u64 - 1);
    let dcs = arg_value(&args, "--dcs", 4usize).max(1);
    let minutes = arg_value(&args, "--minutes", 10.0f64).max(1.0);
    let refresh_ms = arg_value(&args, "--refresh-ms", 250u64).max(10);
    let frames = arg_value(&args, "--frames", 0u64);

    let mut fleet = build_fleet(ships, dcs, minutes);
    let gateway = fleet.gateway().clone();
    let done = Arc::new(AtomicBool::new(false));

    let fleet_done = done.clone();
    let stepper = std::thread::spawn(move || {
        let dt = SimDuration::from_secs(5.0);
        let steps = (minutes * 60.0 / dt.as_secs()).ceil() as u64;
        for _ in 0..steps {
            fleet.step(dt).expect("scenario step");
            // Pace the scenario so a human watching the dashboard sees
            // it evolve rather than finish in one refresh.
            std::thread::sleep(Duration::from_millis(20));
        }
        fleet_done.store(true, Ordering::Relaxed);
    });

    let client = FleetClient::connect(gateway, 1);
    let mut cursor = 0u64;
    let mut rendered = 0u64;
    let interactive = frames == 0;

    loop {
        let ship_rows = match client.ships() {
            Ok(s) => s,
            Err(e) => {
                eprintln!("mpros-top: ListShips failed: {e}");
                std::process::exit(1);
            }
        };
        let rollup = match client.rollup() {
            Ok(r) => r,
            Err(e) => {
                eprintln!("mpros-top: GetFleetRollup failed: {e}");
                std::process::exit(1);
            }
        };
        let metrics = match client.ship_metrics(ship) {
            Ok(GatewayResponse::Metrics {
                snapshot_version,
                at_secs,
                counters,
                gauges,
                histograms,
                exposition,
            }) => MetricsReport {
                snapshot_version,
                at_secs,
                counters,
                gauges,
                histograms,
                exposition,
            },
            Ok(other) => {
                eprintln!(
                    "mpros-top: unexpected GetMetrics reply tag {}",
                    other.type_tag()
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("mpros-top: GetMetrics for ship {ship} failed: {e}");
                std::process::exit(1);
            }
        };
        let journal = match client.ship_journal(ship, cursor, 64) {
            Ok(GatewayResponse::Journal {
                snapshot_version,
                next_cursor,
                dropped,
                events,
            }) => JournalPage {
                snapshot_version,
                next_cursor,
                dropped,
                events,
            },
            Ok(other) => {
                eprintln!(
                    "mpros-top: unexpected StreamJournal reply tag {}",
                    other.type_tag()
                );
                std::process::exit(1);
            }
            Err(e) => {
                eprintln!("mpros-top: StreamJournal for ship {ship} failed: {e}");
                std::process::exit(1);
            }
        };
        cursor = journal.next_cursor;
        let incidents = match client.for_ship(ship, GatewayRequest::ListIncidents) {
            Ok(GatewayResponse::Incidents { incidents, .. }) => incidents,
            _ => Vec::new(),
        };

        let snap = snapshot_from_wire(&metrics, &journal);
        let mut out = render_fleet_pane(&ship_rows, &rollup, ship);
        let _ = writeln!(out, "\n-- ship {ship} --");
        out.push_str(&dashboard::render(&snap));
        let _ = writeln!(
            out,
            "\nship {ship} incidents ({} sealed, snapshot v{})",
            incidents.len(),
            metrics.snapshot_version
        );
        for inc in incidents.iter().rev().take(6).rev() {
            let _ = writeln!(
                out,
                "  {:016x} step {:>5} t+{:.1}s {} ({} records)",
                inc.id,
                inc.step,
                inc.at_secs,
                inc.trigger.kind(),
                inc.records
            );
        }
        let _ = writeln!(
            out,
            "exposition: {} bytes served over wire v6 (fleet v{})",
            metrics.exposition.len(),
            rollup.fleet_version
        );

        if interactive {
            // Clear and home between frames for a stable live view.
            print!("\x1b[2J\x1b[H{out}");
        } else {
            println!("--- frame {rendered} ---\n{out}");
        }

        rendered += 1;
        if frames > 0 && rendered >= frames {
            break;
        }
        if done.load(Ordering::Relaxed) {
            break;
        }
        std::thread::sleep(Duration::from_millis(refresh_ms));
    }

    // In frame-limited mode the scenario thread may still be stepping;
    // let it finish so the process exits cleanly either way.
    stepper.join().expect("scenario thread joins");
    println!("mpros-top: {rendered} frames rendered, exiting");
}

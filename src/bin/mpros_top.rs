//! `mpros-top` — a live console dashboard over the gateway wire.
//!
//! Runs a faulted shipboard scenario on its own thread and watches it
//! the way a remote ICAS console would: every refresh issues
//! `GetMetrics` for the sim-domain telemetry view (rendered with the
//! same `dashboard` code the in-process monitoring example uses),
//! `StreamJournal` to tail the event journal from a cursor, and
//! `ListIncidents` for the flight recorder's sealed captures. Nothing
//! here reads engine state directly — every byte crosses the framed
//! wire-v5 protocol, so this binary doubles as an end-to-end smoke
//! test of the observability plane.
//!
//! Usage:
//!   mpros-top [--dcs N] [--minutes M] [--refresh-ms MS] [--frames N]
//!
//! `--frames N` exits after N renders (for CI / scripted runs); the
//! default 0 keeps rendering until the scenario finishes.

use mpros::chiller::fault::{FaultProfile, FaultSeed};
use mpros::prelude::*;
use mpros::telemetry::dashboard;
use mpros::telemetry::{TelemetrySnapshot, TELEMETRY_SCHEMA_VERSION};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

fn arg_value<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> T {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<T>().ok())
        .unwrap_or(default)
}

/// The faulted scenario under observation: a bearing defect progressing
/// on two plants plus a mid-run DC crash window, so the journal churns,
/// the SLO watchdog has something to judge, and the flight recorder
/// seals at least one incident for the console to list.
fn build_sim(dcs: usize, minutes: f64) -> ShipboardSim {
    let crash_from = SimTime::from_secs(minutes * 60.0 * 0.3);
    let crash_until = SimTime::from_secs(minutes * 60.0 * 0.5);
    let mut sim = ShipboardSim::new(
        ShipboardSimConfig::new()
            .with_dc_count(dcs)
            .with_seed(11)
            .with_survey_period(SimDuration::from_secs(30.0))
            .with_fault_plan(FaultPlan::none().with_dc_crash(
                DcId::new(2),
                crash_from,
                crash_until,
            )),
    )
    .expect("sim builds");
    for idx in [0usize, dcs / 2] {
        sim.seed_fault(
            idx,
            FaultSeed {
                condition: MachineCondition::MotorBearingDefect,
                onset: SimTime::ZERO,
                time_to_failure: SimDuration::from_minutes(minutes * 0.8),
                profile: FaultProfile::EarlyOnset,
            },
        );
    }
    sim
}

/// Rebuild a `TelemetrySnapshot` from the wire-served metrics and
/// journal page so the remote view can reuse the in-process dashboard
/// renderer verbatim.
fn snapshot_from_wire(metrics: &MetricsReport, journal: &JournalPage) -> TelemetrySnapshot {
    TelemetrySnapshot {
        schema_version: TELEMETRY_SCHEMA_VERSION,
        at_secs: metrics.at_secs,
        counters: metrics.counters.clone(),
        gauges: metrics.gauges.clone(),
        histograms: metrics.histograms.clone(),
        events: journal.events.clone(),
        events_dropped: journal.dropped,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let dcs = arg_value(&args, "--dcs", 4usize).max(1);
    let minutes = arg_value(&args, "--minutes", 10.0f64).max(1.0);
    let refresh_ms = arg_value(&args, "--refresh-ms", 250u64).max(10);
    let frames = arg_value(&args, "--frames", 0u64);

    let mut sim = build_sim(dcs, minutes);
    let gateway = sim.attach_gateway(GatewayConfig::new());
    let done = Arc::new(AtomicBool::new(false));

    let sim_done = done.clone();
    let stepper = std::thread::spawn(move || {
        let dt = SimDuration::from_secs(5.0);
        let steps = (minutes * 60.0 / dt.as_secs()).ceil() as u64;
        for _ in 0..steps {
            sim.step(dt).expect("scenario step");
            // Pace the scenario so a human watching the dashboard sees
            // it evolve rather than finish in one refresh.
            std::thread::sleep(Duration::from_millis(20));
        }
        sim_done.store(true, Ordering::Relaxed);
    });

    let client = GatewayClient::connect(gateway, 1);
    let mut cursor = 0u64;
    let mut rendered = 0u64;
    let interactive = frames == 0;

    loop {
        let metrics = match client.metrics() {
            Ok(m) => m,
            Err(e) => {
                eprintln!("mpros-top: GetMetrics failed: {e}");
                std::process::exit(1);
            }
        };
        let journal = match client.stream_journal(cursor, 64) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("mpros-top: StreamJournal failed: {e}");
                std::process::exit(1);
            }
        };
        cursor = journal.next_cursor;
        let incidents = client.incidents().unwrap_or_default();

        let snap = snapshot_from_wire(&metrics, &journal);
        let mut out = dashboard::render(&snap);
        let _ = writeln!(
            out,
            "\nincidents ({} sealed, snapshot v{})",
            incidents.len(),
            metrics.snapshot_version
        );
        for inc in incidents.iter().rev().take(6).rev() {
            let _ = writeln!(
                out,
                "  {:016x} step {:>5} t+{:.1}s {} ({} records)",
                inc.id,
                inc.step,
                inc.at_secs,
                inc.trigger.kind(),
                inc.records
            );
        }
        let _ = writeln!(
            out,
            "exposition: {} bytes served over wire v5",
            metrics.exposition.len()
        );

        if interactive {
            // Clear and home between frames for a stable live view.
            print!("\x1b[2J\x1b[H{out}");
        } else {
            println!("--- frame {rendered} ---\n{out}");
        }

        rendered += 1;
        if frames > 0 && rendered >= frames {
            break;
        }
        if done.load(Ordering::Relaxed) {
            break;
        }
        std::thread::sleep(Duration::from_millis(refresh_ms));
    }

    // In frame-limited mode the scenario thread may still be stepping;
    // let it finish so the process exits cleanly either way.
    stepper.join().expect("scenario thread joins");
    println!("mpros-top: {rendered} frames rendered, exiting");
}

//! # MPROS — Machinery Prognostics and Diagnostics System
//!
//! Facade crate for the MPROS workspace, a Rust reproduction of
//! *"Condition-Based Maintenance: Algorithms and Applications for Embedded
//! High Performance Computing"* (Bennett & Hadden, IPPS 1999).
//!
//! Each subsystem lives in its own crate; this crate re-exports them under
//! stable module names and hosts the runnable examples and cross-crate
//! integration tests.
//!
//! ```
//! use mpros::core::{MachineCondition, SimDuration, SimTime};
//! use mpros::chiller::fault::{FaultProfile, FaultSeed};
//! use mpros::sim::{ShipboardSim, ShipboardSimConfig};
//!
//! // One chiller + DC + PDME; seed a bearing defect and watch the
//! // prioritized maintenance list.
//! let mut sim = ShipboardSim::new(ShipboardSimConfig {
//!     survey_period: SimDuration::from_secs(30.0),
//!     ..Default::default()
//! }).unwrap();
//! sim.seed_fault(0, FaultSeed {
//!     condition: MachineCondition::MotorBearingDefect,
//!     onset: SimTime::ZERO,
//!     time_to_failure: SimDuration::from_minutes(10.0),
//!     profile: FaultProfile::EarlyOnset,
//! });
//! sim.run_for(SimDuration::from_minutes(4.0), SimDuration::from_secs(0.25)).unwrap();
//! let list = sim.pdme().maintenance_list();
//! assert_eq!(list[0].condition, MachineCondition::MotorBearingDefect);
//! ```

#![forbid(unsafe_code)]

pub mod exec;
pub mod sim;

pub use mpros_chiller as chiller;
pub use mpros_core as core;
pub use mpros_dc as dc;
pub use mpros_dli as dli;
pub use mpros_fusion as fusion;
pub use mpros_fuzzy as fuzzy;
pub use mpros_network as network;
pub use mpros_oosm as oosm;
pub use mpros_pdme as pdme;
pub use mpros_sbfr as sbfr;
pub use mpros_signal as signal;
pub use mpros_store as store;
pub use mpros_telemetry as telemetry;
pub use mpros_wnn as wnn;

//! # MPROS — Machinery Prognostics and Diagnostics System
//!
//! Facade crate for the MPROS workspace, a Rust reproduction of
//! *"Condition-Based Maintenance: Algorithms and Applications for Embedded
//! High Performance Computing"* (Bennett & Hadden, IPPS 1999).
//!
//! Each subsystem lives in its own crate; this crate re-exports them under
//! stable module names and hosts the runnable examples and cross-crate
//! integration tests.
//!
//! ```
//! use mpros::prelude::*;
//! use mpros::chiller::fault::{FaultProfile, FaultSeed};
//!
//! // One chiller + DC + PDME; seed a bearing defect and watch the
//! // prioritized maintenance list.
//! let mut sim = ShipboardSim::new(
//!     ShipboardSimConfig::new().with_survey_period(SimDuration::from_secs(30.0)),
//! ).unwrap();
//! sim.seed_fault(0, FaultSeed {
//!     condition: MachineCondition::MotorBearingDefect,
//!     onset: SimTime::ZERO,
//!     time_to_failure: SimDuration::from_minutes(10.0),
//!     profile: FaultProfile::EarlyOnset,
//! });
//! sim.run_for(SimDuration::from_minutes(4.0), SimDuration::from_secs(0.25)).unwrap();
//! let list = sim.pdme().maintenance_list();
//! assert_eq!(list[0].condition, MachineCondition::MotorBearingDefect);
//!
//! // Serve the fused state to concurrent clients over the framed
//! // gateway protocol (see `mpros::gateway`).
//! let handle = sim.attach_gateway(GatewayConfig::new());
//! let client = GatewayClient::connect(handle, 1);
//! assert!(!client.icas().unwrap().machines.is_empty());
//! ```

#![forbid(unsafe_code)]

pub mod prelude;

// The single-ship simulation (plant → DC → network → PDME loop) lives
// in `mpros-ship` so the fleet plane can shard it; the historical
// `mpros::sim` spelling is preserved here.
pub use mpros_ship::sim;

pub use mpros_chiller as chiller;
pub use mpros_core as core;
pub use mpros_dc as dc;
pub use mpros_dli as dli;
pub use mpros_fleet as fleet;
pub use mpros_fusion as fusion;
pub use mpros_fuzzy as fuzzy;
pub use mpros_gateway as gateway;
pub use mpros_network as network;
pub use mpros_oosm as oosm;
pub use mpros_pdme as pdme;
pub use mpros_sbfr as sbfr;
pub use mpros_ship as ship;
pub use mpros_signal as signal;
pub use mpros_store as store;
pub use mpros_telemetry as telemetry;
pub use mpros_wnn as wnn;
